//! Tiled 2D heat stencil with local memory and barriers — the feature
//! combination (§IV-F, §V-B) that broke both commercial frameworks in
//! Table II. Demonstrates work-group barriers inside a time loop, banked
//! local-memory tiles, and multi-launch host control.
//!
//! ```text
//! cargo run --release -p soff --example tiled_stencil
//! ```

use soff::prelude::*;

const KERNEL: &str = r#"
#define TILE 8
__kernel void heat(__global const float* in, __global float* out, int n, float k) {
    __local float t[TILE * TILE];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int x = get_global_id(0);
    int y = get_global_id(1);
    t[ly * TILE + lx] = in[y * n + x];
    barrier(CLK_LOCAL_MEM_FENCE);
    float c = t[ly * TILE + lx];
    float n_ = (ly > 0) ? t[(ly - 1) * TILE + lx] : ((y > 0) ? in[(y - 1) * n + x] : c);
    float s_ = (ly < TILE - 1) ? t[(ly + 1) * TILE + lx] : ((y < n - 1) ? in[(y + 1) * n + x] : c);
    float w_ = (lx > 0) ? t[ly * TILE + lx - 1] : ((x > 0) ? in[y * n + x - 1] : c);
    float e_ = (lx < TILE - 1) ? t[ly * TILE + lx + 1] : ((x < n - 1) ? in[y * n + x + 1] : c);
    out[y * n + x] = c + k * (n_ + s_ + w_ + e_ - 4.0f * c);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let steps = 4;
    let k = 0.2f32;

    let device = Device::system_a();
    let program = Program::build(KERNEL, &[], &device)?;
    let ck = &program.kernels()[0];
    println!(
        "synthesized `heat`: L_Datapath = {}, {} local work-group slot(s), {} instance(s)",
        ck.datapath.l_datapath, ck.datapath.wg_slots, ck.replication.num_datapaths
    );

    let mut ctx = Context::new(device);
    let a = ctx.create_buffer(n * n * 4);
    let b = ctx.create_buffer(n * n * 4);
    // A hot square in the middle of a cold plate.
    let mut grid = vec![0.0f32; n * n];
    for y in n / 2 - 4..n / 2 + 4 {
        for x in n / 2 - 4..n / 2 + 4 {
            grid[y * n + x] = 100.0;
        }
    }
    ctx.write_buffer_f32(a, &grid)?;

    // Host time loop, ping-ponging the two buffers (each launch is one
    // trigger/completion round trip, §III-C1).
    let (mut src, mut dst) = (a, b);
    let mut total_cycles = 0;
    for _ in 0..steps {
        let mut kernel = program.kernel("heat").expect("kernel exists");
        kernel
            .set_arg_buffer(0, src)
            .set_arg_buffer(1, dst)
            .set_arg_i32(2, n as i32)
            .set_arg_f32(3, k);
        let stats = ctx.enqueue_ndrange(&kernel, NdRange::dim2([n as u64, n as u64], [8, 8]))?;
        total_cycles += stats.sim.cycles;
        std::mem::swap(&mut src, &mut dst);
    }

    let out = ctx.read_buffer_f32(src)?;
    let total_heat: f32 = out.iter().sum();
    let peak = out.iter().cloned().fold(f32::MIN, f32::max);
    println!(
        "{steps} time steps over a {n}x{n} plate: {total_cycles} cycles total"
    );
    println!("total heat {total_heat:.1} (conserved: {}), peak {peak:.2}", {
        let initial: f32 = grid.iter().sum();
        (total_heat - initial).abs() < initial * 0.05
    });
    Ok(())
}
