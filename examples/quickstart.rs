//! Quickstart: compile a kernel, run it on the simulated FPGA, read the
//! results — the complete §III-C flow in thirty lines.
//!
//! ```text
//! cargo run --release -p soff --example quickstart
//! ```

use soff::prelude::*;

const KERNEL: &str = r#"
__kernel void saxpy(__global const float* x, __global float* y, float a) {
    int i = get_global_id(0);
    y[i] = a * x[i] + y[i];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Synthesize the bitstream": frontend → SSA → datapath → resource
    //    model (offline compilation, §III-C).
    let device = Device::system_a();
    let program = Program::build(KERNEL, &[], &device)?;
    let ck = &program.kernels()[0];
    println!(
        "synthesized `{}`: {} functional units, {} datapath instance(s) fit the {}",
        ck.kernel.name,
        ck.datapath.num_units(),
        ck.replication.num_datapaths,
        device.system.fpga,
    );

    // 2. Host program: buffers, arguments, launch.
    let n = 1024usize;
    let mut ctx = Context::new(device);
    let x = ctx.create_buffer(n * 4);
    let y = ctx.create_buffer(n * 4);
    ctx.write_buffer_f32(x, &(0..n).map(|i| i as f32).collect::<Vec<_>>())?;
    ctx.write_buffer_f32(y, &vec![1.0; n])?;

    let mut kernel = program.kernel("saxpy").expect("kernel exists");
    kernel.set_arg_buffer(0, x).set_arg_buffer(1, y).set_arg_f32(2, 2.0);
    let stats = ctx.enqueue_ndrange(&kernel, NdRange::dim1(n as u64, 64))?;

    // 3. Results and the §III-B counters.
    let out = ctx.read_buffer_f32(y)?;
    assert_eq!(out[10], 2.0 * 10.0 + 1.0);
    println!(
        "ran {} work-items in {} cycles ({:.2} µs at {} MHz): {} cache accesses, {:.1}% hits",
        stats.sim.retired,
        stats.sim.cycles,
        stats.seconds * 1e6,
        ctx.device().system.clock_soff_mhz,
        stats.sim.cache.accesses,
        100.0 * stats.sim.cache.hits as f64 / stats.sim.cache.accesses.max(1) as f64,
    );
    println!("y[10] = {}", out[10]);
    Ok(())
}
