//! Regular streams vs. irregular gathers — the two regimes of Fig. 11.
//!
//! Runs two kernels on SOFF and on the Intel-SDK-like baseline:
//!
//! * `stream`: sequential access. The static compiler's burst inference
//!   covers it and its higher clock wins — this is where Intel beats SOFF
//!   in Fig. 11.
//! * `gather`: a pseudo-random gather over a >64 KB region. Misses
//!   dominate; SOFF's run-time pipelining keeps up to 64 of them in
//!   flight while the static schedule stalls — Fig. 11's winners.
//!
//! ```text
//! cargo run --release -p soff --example sparse_matvec
//! ```

use soff::baseline::{self, Framework};
use soff::runtime::Context;
use soff::NdRange;

const KERNELS: &str = r#"
__kernel void stream(__global const float* a, __global float* o) {
    int i = get_global_id(0);
    o[i] = a[i] * 2.0f + 1.0f;
}

__kernel void gather(__global const float* a, __global const int* idx,
                     __global float* o, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < 8; j++) acc += a[idx[(i * 8 + j) % n]];
    o[i] = acc;
}
"#;

const N: usize = 4096;
const TABLE: usize = 32768; // 128 KB table: twice the cache

fn run_on(fw: Framework, kernel_name: &str) -> Result<(u64, f64, Vec<f32>), Box<dyn std::error::Error>> {
    let (program, device) = baseline::build(fw, KERNELS, &[])
        .map_err(|o| format!("{fw} failed to build: {}", o.code()))?;
    let replication = program.kernels()[0].replication.num_datapaths;
    let mut ctx = Context::new(device.clone());
    baseline::configure_context(fw, &mut ctx, replication);

    // Deterministic data (xorshift).
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let table: Vec<f32> = (0..TABLE).map(|i| (i as f32).sin()).collect();
    let idx: Vec<i32> = (0..N * 8).map(|_| (rnd() % TABLE as u64) as i32).collect();

    let ba = ctx.create_buffer(TABLE * 4);
    let bidx = ctx.create_buffer(idx.len() * 4);
    let bo = ctx.create_buffer(N.max(TABLE) * 4);
    ctx.write_buffer_f32(ba, &table)?;
    ctx.write_buffer_i32(bidx, &idx)?;

    let mut k = program.kernel(kernel_name).expect("kernel exists");
    let nd = match kernel_name {
        "stream" => {
            k.set_arg_buffer(0, ba).set_arg_buffer(1, bo);
            NdRange::dim1(TABLE as u64, 64)
        }
        _ => {
            k.set_arg_buffer(0, ba)
                .set_arg_buffer(1, bidx)
                .set_arg_buffer(2, bo)
                .set_arg_i32(3, (N * 8) as i32);
            NdRange::dim1(N as u64, 64)
        }
    };
    let stats = ctx.enqueue_ndrange(&k, nd)?;
    let secs = baseline::cycles_to_seconds(fw, &device, stats.sim.cycles);
    Ok((stats.sim.cycles, secs, ctx.read_buffer_f32(bo)?))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, label) in [("stream", "regular stream"), ("gather", "irregular gather")] {
        let (sc, ss, r1) = run_on(Framework::Soff, name)?;
        let (ic, is, r2) = run_on(Framework::IntelLike, name)?;
        assert_eq!(r1, r2, "{name}: frameworks must agree on results");
        println!("{label} (`{name}`):");
        println!("  SOFF        : {sc:>9} cycles  ({:.1} µs)", ss * 1e6);
        println!("  Intel-like  : {ic:>9} cycles  ({:.1} µs)", is * 1e6);
        println!("  SOFF speedup: {:.2}x", is / ss);
        println!();
    }
    println!(
        "The split mirrors Fig. 11: static pipelining wins regular streams on \
         clock speed; run-time pipelining wins once misses must overlap."
    );
    Ok(())
}
