//! Emit the Verilog RTL for a kernel — what SOFF hands to Quartus/Vivado
//! (§III-C, Fig. 3) — together with the SOFF IP-core library.
//!
//! ```text
//! cargo run --release -p soff --example emit_verilog [out_dir]
//! ```

use soff::compiler::compile;
use std::fs;
use std::path::PathBuf;

const KERNEL: &str = r#"
__kernel void dot_block(__global const float* a, __global const float* b,
                        __global float* partial, int n) {
    __local float acc[64];
    int l = get_local_id(0);
    int g = get_global_id(0);
    float s = 0.0f;
    for (int i = g; i < n; i += (int)get_global_size(0)) {
        s += a[i] * b[i];
    }
    acc[l] = s;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (l == 0) {
        float total = 0.0f;
        for (int i = 0; i < 64; i++) total += acc[i];
        partial[get_group_id(0)] = total;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "target/rtl".to_string()),
    );
    fs::create_dir_all(&out_dir)?;

    let compiled = compile(KERNEL, 4)?;
    let dp = &compiled.datapaths[0];
    println!(
        "kernel `dot_block`: {} blocks, {} functional units, L_Datapath = {}",
        dp.basics.len(),
        dp.num_units(),
        dp.l_datapath
    );

    let lib_path = out_dir.join("soff_ip_cores.v");
    fs::write(&lib_path, &compiled.ip_library)?;
    for m in &compiled.rtl {
        let path = out_dir.join(format!("{}.v", m.name));
        fs::write(&path, &m.source)?;
        println!(
            "wrote {} ({} lines, {} IP-core instantiations)",
            path.display(),
            m.source.lines().count(),
            m.num_instances
        );
    }
    println!("wrote {} ({} lines)", lib_path.display(), compiled.ip_library.lines().count());
    println!("hand these to a logic synthesis tool to produce the bitstream (§III-C).");
    Ok(())
}
