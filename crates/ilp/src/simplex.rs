//! Two-phase primal simplex for linear programs in the form
//! `minimize c·x  subject to  A·x {≤,=,≥} b,  x ≥ 0`.
//!
//! Uses dense tableaus with Bland's rule (no cycling) — the LPs SOFF
//! solves (FIFO sizing, §IV-C) have at most a few hundred variables, so
//! simplicity beats sparsity here.

use std::fmt;

/// Relation of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `≤ rhs`
    Le,
    /// `= rhs`
    Eq,
    /// `≥ rhs`
    Ge,
}

/// One linear constraint: `Σ coeffs[i].1 · x[coeffs[i].0]  rel  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficient list `(variable, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: f64,
}

/// Why an LP could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

const EPS: f64 = 1e-9;

/// Solves `minimize c·x  s.t.  constraints, x ≥ 0`.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`].
pub fn solve_lp(c: &[f64], constraints: &[Constraint]) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = constraints.len();

    // Standard form: every row becomes an equation with a slack (Le),
    // surplus (Ge), and artificial variables as needed; rhs made ≥ 0.
    // Column layout: [x(n) | slack/surplus(s) | artificial(a)].
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut rels: Vec<Rel> = Vec::with_capacity(m);
    for con in constraints {
        let mut row = vec![0.0; n];
        for &(i, v) in &con.coeffs {
            assert!(i < n, "constraint references variable {i} out of {n}");
            row[i] += v;
        }
        let (row, r, rel) = if con.rhs < 0.0 {
            // Negate so rhs ≥ 0.
            let flipped = match con.rel {
                Rel::Le => Rel::Ge,
                Rel::Ge => Rel::Le,
                Rel::Eq => Rel::Eq,
            };
            (row.iter().map(|v| -v).collect::<Vec<_>>(), -con.rhs, flipped)
        } else {
            (row, con.rhs, con.rel)
        };
        rows.push(row);
        rhs.push(r);
        rels.push(rel);
    }

    let n_slack = rels.iter().filter(|r| **r != Rel::Eq).count();
    let n_art = rels.iter().filter(|r| **r != Rel::Le).count();
    let total = n + n_slack + n_art;

    // Build the tableau.
    let mut t = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][total] = rhs[i];
        match rels[i] {
            Rel::Le => {
                t[i][s_idx] = 1.0;
                basis[i] = s_idx;
                s_idx += 1;
            }
            Rel::Ge => {
                t[i][s_idx] = -1.0;
                s_idx += 1;
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                a_idx += 1;
            }
            Rel::Eq => {
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                a_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificial variables.
    if n_art > 0 {
        let mut obj = vec![0.0; total + 1];
        for o in &mut obj[(n + n_slack)..total] {
            *o = 1.0;
        }
        // Price out basic artificials.
        for i in 0..m {
            if basis[i] >= n + n_slack {
                for j in 0..=total {
                    obj[j] -= t[i][j];
                }
            }
        }
        run_simplex(&mut t, &mut obj, &mut basis, total)?;
        if -obj[total] > EPS {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables out of the basis.
        for i in 0..m {
            if basis[i] >= n + n_slack {
                // Find a non-artificial column to pivot in.
                if let Some(j) = (0..n + n_slack).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut vec![0.0; total + 1], &mut basis, i, j, total);
                }
                // If none, the row is redundant; leave it (rhs must be ~0).
            }
        }
    }

    // Phase 2: minimize the real objective (artificials pinned at 0 by
    // giving them prohibitive cost and never selecting them).
    let mut obj = vec![0.0; total + 1];
    obj[..n].copy_from_slice(c);
    for i in 0..m {
        let b = basis[i];
        if obj[b].abs() > EPS {
            let f = obj[b];
            for j in 0..=total {
                obj[j] -= f * t[i][j];
            }
        }
    }
    // Forbid artificial columns from entering.
    run_simplex_restricted(&mut t, &mut obj, &mut basis, total, n + n_slack)?;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][total];
        }
    }
    let objective = c.iter().zip(&x).map(|(a, b)| a * b).sum();
    Ok(LpSolution { x, objective })
}

fn run_simplex(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
) -> Result<(), LpError> {
    run_simplex_restricted(t, obj, basis, total, total)
}

/// Simplex iterations where only columns `< allowed` may enter the basis.
fn run_simplex_restricted(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
    allowed: usize,
) -> Result<(), LpError> {
    let m = t.len();
    loop {
        // Bland's rule: smallest index with negative reduced cost.
        let enter = (0..allowed).find(|&j| obj[j] < -EPS);
        let enter = match enter {
            Some(j) => j,
            None => return Ok(()),
        };
        // Ratio test (Bland: smallest basis index on ties).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][total] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS
                        && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let leave = leave.ok_or(LpError::Unbounded)?;
        pivot_full(t, obj, basis, leave, enter, total);
    }
}

// Index loops stay: `t[i][j] -= f * t[row][j]` reads one row while
// mutating another, which slice iterators cannot express without splits.
#[allow(clippy::needless_range_loop)]
fn pivot_full(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    let m = t.len();
    let p = t[row][col];
    for x in &mut t[row][..=total] {
        *x /= p;
    }
    for i in 0..m {
        if i != row && t[i][col].abs() > EPS {
            let f = t[i][col];
            for j in 0..=total {
                t[i][j] -= f * t[row][j];
            }
        }
    }
    if obj[col].abs() > EPS {
        let f = obj[col];
        for j in 0..=total {
            obj[j] -= f * t[row][j];
        }
    }
    basis[row] = col;
}

fn pivot(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
) {
    pivot_full(t, obj, basis, row, col, total);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn con(coeffs: &[(usize, f64)], rel: Rel, rhs: f64) -> Constraint {
        Constraint { coeffs: coeffs.to_vec(), rel, rhs }
    }

    #[test]
    fn simple_minimization() {
        // min x0 + x1 s.t. x0 + x1 >= 2, x0 >= 0.5
        let sol = solve_lp(
            &[1.0, 1.0],
            &[
                con(&[(0, 1.0), (1, 1.0)], Rel::Ge, 2.0),
                con(&[(0, 1.0)], Rel::Ge, 0.5),
            ],
        )
        .unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn maximization_via_negation() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2  → min -3x - 2y; optimum (2,2)=10
        let sol = solve_lp(
            &[-3.0, -2.0],
            &[
                con(&[(0, 1.0), (1, 1.0)], Rel::Le, 4.0),
                con(&[(0, 1.0)], Rel::Le, 2.0),
            ],
        )
        .unwrap();
        assert!((sol.objective + 10.0).abs() < 1e-6);
        assert!((sol.x[0] - 2.0).abs() < 1e-6);
        assert!((sol.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 3, y >= 1 → x=2, y=1, obj=4
        let sol = solve_lp(
            &[1.0, 2.0],
            &[
                con(&[(0, 1.0), (1, 1.0)], Rel::Eq, 3.0),
                con(&[(1, 1.0)], Rel::Ge, 1.0),
            ],
        )
        .unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-6, "obj = {}", sol.objective);
    }

    #[test]
    fn infeasible_detected() {
        let r = solve_lp(
            &[1.0],
            &[con(&[(0, 1.0)], Rel::Ge, 5.0), con(&[(0, 1.0)], Rel::Le, 1.0)],
        );
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x >= 0 (implicit) → unbounded
        let r = solve_lp(&[-1.0], &[con(&[(0, 1.0)], Rel::Ge, 0.0)]);
        assert_eq!(r.unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let sol = solve_lp(&[1.0], &[con(&[(0, -1.0)], Rel::Le, -3.0)]).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classic degenerate instance; Bland's rule must terminate.
        let sol = solve_lp(
            &[-0.75, 150.0, -0.02, 6.0],
            &[
                con(&[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Rel::Le, 0.0),
                con(&[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Rel::Le, 0.0),
                con(&[(2, 1.0)], Rel::Le, 1.0),
            ],
        )
        .unwrap();
        assert!((sol.objective + 0.05).abs() < 1e-6, "obj = {}", sol.objective);
    }
}
