//! # soff-ilp
//!
//! A small exact integer linear programming solver: two-phase primal
//! simplex for the LP relaxation plus best-first branch & bound on
//! fractional variables.
//!
//! SOFF uses ILP to size the FIFO queues inserted between functional units
//! of a basic pipeline (§IV-C of the paper): one variable per DFG edge,
//! equality constraints making every source-sink path hold the same total
//! near-maximum latency, minimizing the total FIFO capacity added.
//!
//! ## Example
//!
//! ```
//! use soff_ilp::{Ilp, Rel};
//!
//! // min x + y  s.t.  x + 2y >= 3,  x,y integer >= 0
//! let mut p = Ilp::new(2);
//! p.set_objective(&[1.0, 1.0]);
//! p.add_constraint(&[(0, 1.0), (1, 2.0)], Rel::Ge, 3.0);
//! p.mark_integer(0);
//! p.mark_integer(1);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.objective.round() as i64, 2); // x=1, y=1
//! ```

pub mod simplex;

pub use simplex::{Constraint, LpError, LpSolution, Rel};

/// An integer linear program under construction.
///
/// All variables are implicitly `≥ 0`.
#[derive(Debug, Clone)]
pub struct Ilp {
    n: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    integer: Vec<bool>,
}

/// An ILP solution.
#[derive(Debug, Clone)]
pub struct IlpSolution {
    /// Variable values (integral for variables marked integer, up to
    /// rounding tolerance).
    pub x: Vec<f64>,
    /// Objective value.
    pub objective: f64,
}

impl IlpSolution {
    /// Variable `i` rounded to the nearest integer.
    pub fn int(&self, i: usize) -> i64 {
        self.x[i].round() as i64
    }
}

const INT_EPS: f64 = 1e-6;
/// Bound on branch & bound nodes; the FIFO problems SOFF builds are
/// integral LPs, so this is pure paranoia.
const MAX_NODES: usize = 100_000;

impl Ilp {
    /// Creates a program with `n` variables (all `≥ 0`, continuous).
    pub fn new(n: usize) -> Self {
        Ilp { n, objective: vec![0.0; n], constraints: Vec::new(), integer: vec![false; n] }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Sets the minimization objective coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `c.len()` differs from the variable count.
    pub fn set_objective(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.n);
        self.objective = c.to_vec();
    }

    /// Adds `Σ coeffs · x  rel  rhs`.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], rel: Rel, rhs: f64) {
        self.constraints.push(Constraint { coeffs: coeffs.to_vec(), rel, rhs });
    }

    /// Marks variable `i` as integer.
    pub fn mark_integer(&mut self, i: usize) {
        self.integer[i] = true;
    }

    /// Solves the program exactly.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] if no integer point satisfies the
    /// constraints, [`LpError::Unbounded`] if the relaxation is unbounded.
    pub fn solve(&self) -> Result<IlpSolution, LpError> {
        // Depth-first branch & bound over LP relaxations.
        let mut best: Option<IlpSolution> = None;
        let mut stack: Vec<Vec<Constraint>> = vec![Vec::new()];
        let mut nodes = 0usize;

        while let Some(extra) = stack.pop() {
            nodes += 1;
            if nodes > MAX_NODES {
                break;
            }
            let mut cons = self.constraints.clone();
            cons.extend(extra.iter().cloned());
            let relax = match simplex::solve_lp(&self.objective, &cons) {
                Ok(s) => s,
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            if let Some(b) = &best {
                if relax.objective >= b.objective - INT_EPS {
                    continue; // bound
                }
            }
            // Find a fractional integer variable.
            let frac = (0..self.n).find(|&i| {
                self.integer[i] && (relax.x[i] - relax.x[i].round()).abs() > INT_EPS
            });
            match frac {
                None => {
                    let sol = IlpSolution { x: relax.x, objective: relax.objective };
                    match &best {
                        Some(b) if b.objective <= sol.objective => {}
                        _ => best = Some(sol),
                    }
                }
                Some(i) => {
                    let v = relax.x[i];
                    let mut lo = extra.clone();
                    lo.push(Constraint {
                        coeffs: vec![(i, 1.0)],
                        rel: Rel::Le,
                        rhs: v.floor(),
                    });
                    let mut hi = extra;
                    hi.push(Constraint {
                        coeffs: vec![(i, 1.0)],
                        rel: Rel::Ge,
                        rhs: v.ceil(),
                    });
                    stack.push(lo);
                    stack.push(hi);
                }
            }
        }
        best.ok_or(LpError::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passthrough() {
        let mut p = Ilp::new(2);
        p.set_objective(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Rel::Ge, 1.5);
        let s = p.solve().unwrap();
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn integrality_forces_rounding_up() {
        // min x s.t. x >= 1.5, x integer → x = 2
        let mut p = Ilp::new(1);
        p.set_objective(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Rel::Ge, 1.5);
        p.mark_integer(0);
        let s = p.solve().unwrap();
        assert_eq!(s.int(0), 2);
    }

    #[test]
    fn small_knapsack() {
        // max 5a + 4b s.t. 6a + 5b <= 10, a,b ∈ {0..} integer.
        // Optimum: a=0,b=2 → 8 (LP relaxation would take a=10/6).
        let mut p = Ilp::new(2);
        p.set_objective(&[-5.0, -4.0]);
        p.add_constraint(&[(0, 6.0), (1, 5.0)], Rel::Le, 10.0);
        p.mark_integer(0);
        p.mark_integer(1);
        let s = p.solve().unwrap();
        assert_eq!(-s.objective.round() as i64, 8);
    }

    #[test]
    fn integer_infeasible() {
        // 2x = 3 has no integer solution.
        let mut p = Ilp::new(1);
        p.set_objective(&[1.0]);
        p.add_constraint(&[(0, 2.0)], Rel::Eq, 3.0);
        p.mark_integer(0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn multi_path_balancing() {
        // Three parallel paths with latencies 5, 8, 2 joining at a sink;
        // q1, q2, q3 ≥ 0 with 5+q1 = 8+q2 = 2+q3, minimize Σq.
        // Optimum: q1=3, q2=0, q3=6 (total 9).
        let mut p = Ilp::new(3);
        p.set_objective(&[1.0, 1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Rel::Eq, 3.0); // 5+q1 = 8+q2
        p.add_constraint(&[(2, 1.0), (1, -1.0)], Rel::Eq, 6.0); // 2+q3 = 8+q2
        for i in 0..3 {
            p.mark_integer(i);
        }
        let s = p.solve().unwrap();
        assert_eq!((s.int(0), s.int(1), s.int(2)), (3, 0, 6));
        assert_eq!(s.objective.round() as i64, 9);
    }

    #[test]
    fn branching_respects_bounds() {
        // min -x - y s.t. x + y <= 3.5, x - y <= 0.5, integers.
        // LP opt at (2, 1.5); integer optimum e.g. (1,2) or (1.5→) (1,2): -3.
        let mut p = Ilp::new(2);
        p.set_objective(&[-1.0, -1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Rel::Le, 3.5);
        p.add_constraint(&[(0, 1.0), (1, -1.0)], Rel::Le, 0.5);
        p.mark_integer(0);
        p.mark_integer(1);
        let s = p.solve().unwrap();
        assert_eq!(-s.objective.round() as i64, 3);
    }
}
