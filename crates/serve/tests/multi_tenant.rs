//! Multi-tenant determinism and fairness.
//!
//! The serve layer's core promise: slices cut at deterministic cycle
//! numbers and snapshots resume bit-identically, so a tenant's results
//! (final cycle count AND device memory bytes) are byte-identical whether
//! it runs alone on a bare [`Context`] or interleaved with other tenants
//! on a shared server — including when neighbours panic, get cancelled,
//! or hit injected hardware faults.

use rand::{Rng, SeedableRng};
use soff_runtime::{Context, Device, Program};
use soff_serve::{NdRange, Server, ServerConfig, TenantQuota};
use std::time::Duration;

const SRC: &str = r#"
__kernel void crunch(__global float* a, int iters, float bias) {
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {
        x = x * 0.999f + bias;
    }
    a[i] = x;
}
"#;

/// One tenant's workload: a buffer of `n` floats iterated `iters` times.
#[derive(Clone, Copy)]
struct Work {
    n: usize,
    iters: i32,
    bias: f32,
    seed: u64,
}

fn input(w: &Work) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(w.seed);
    (0..w.n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn as_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Ground truth: the same workload on a bare single-tenant context with
/// no slicing at all.
fn solo(w: &Work) -> (u64, Vec<u8>) {
    let device = Device::system_a();
    let program = Program::build(SRC, &[], &device).expect("solo build");
    let mut ctx = Context::new(device);
    let buf = ctx.create_buffer(w.n * 4);
    ctx.write_buffer(buf, &as_bytes(&input(w))).unwrap();
    let mut k = program.kernel("crunch").unwrap();
    k.set_arg_buffer(0, buf).set_arg_i32(1, w.iters).set_arg_f32(2, w.bias);
    let stats = ctx.enqueue_ndrange(&k, NdRange::dim1(w.n as u64, 4)).unwrap();
    (stats.sim.cycles, ctx.read_buffer(buf).unwrap())
}

/// The same workload as one tenant of `server`; returns what solo()
/// returns so the two can be compared bit-for-bit.
fn serve_tenant(server: &Server, name: &str, w: &Work) -> (u64, Vec<u8>) {
    let sess = server.connect(name).expect("connect");
    let program = sess.build_program(SRC, &[]).expect("build");
    let buf = sess.create_buffer(w.n * 4).unwrap();
    sess.write_buffer(buf, &as_bytes(&input(w))).unwrap();
    let mut k = sess.kernel(&program, "crunch").unwrap();
    k.set_arg_buffer(0, buf).set_arg_i32(1, w.iters).set_arg_f32(2, w.bias);
    let job = sess.enqueue(&k, NdRange::dim1(w.n as u64, 4)).expect("enqueue");
    let out = sess.wait(job).expect("job result");
    (out.cycles, sess.read_buffer(buf).unwrap())
}

#[test]
fn shared_results_match_solo_runs() {
    let works = [
        Work { n: 32, iters: 400, bias: 0.125, seed: 1 },
        Work { n: 48, iters: 250, bias: -0.5, seed: 2 },
        Work { n: 16, iters: 900, bias: 0.25, seed: 3 },
    ];
    let expected: Vec<(u64, Vec<u8>)> = works.iter().map(solo).collect();

    // Small slices over fewer slots than tenants forces real preemption
    // and interleaving.
    let server = Server::new(ServerConfig {
        device_slots: 2,
        slice_cycles: 1_000,
        ..ServerConfig::default()
    })
    .unwrap();

    let got: Vec<(u64, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let server = &server;
                s.spawn(move || serve_tenant(server, &format!("t{i}"), w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (exp, got)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(exp.0, got.0, "tenant {i}: cycle count diverged from solo run");
        assert_eq!(exp.1, got.1, "tenant {i}: memory bytes diverged from solo run");
    }
    let stats = server.stats();
    assert!(stats.preemptions > 0, "slices too big: nothing was preempted");
    assert!(stats.slices as usize > works.len(), "no time-slicing happened");
}

/// The server's scheduler knob reaches the simulator (it used to be
/// silently ignored) and every backend — including Compiled, whose
/// hot-state mirror is rebuilt at each slice's snapshot restore — slices
/// to the same bit-identical results as a solo unsliced run.
#[test]
fn sliced_results_are_backend_invariant() {
    let works = [
        Work { n: 32, iters: 400, bias: 0.125, seed: 21 },
        Work { n: 16, iters: 900, bias: 0.25, seed: 22 },
    ];
    let expected: Vec<(u64, Vec<u8>)> = works.iter().map(solo).collect();

    for scheduler in [
        soff_sim::Scheduler::Dense,
        soff_sim::Scheduler::EventDriven,
        soff_sim::Scheduler::Compiled,
    ] {
        let server = Server::new(ServerConfig {
            device_slots: 1,
            slice_cycles: 1_000,
            scheduler,
            ..ServerConfig::default()
        })
        .unwrap();
        let got: Vec<(u64, Vec<u8>)> = works
            .iter()
            .enumerate()
            .map(|(i, w)| serve_tenant(&server, &format!("t{i}"), w))
            .collect();
        for (i, (exp, got)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(exp, got, "tenant {i} diverged from solo under {scheduler:?}");
        }
        let stats = server.stats();
        assert!(stats.preemptions > 0, "{scheduler:?}: slices too big, nothing preempted");
        server.shutdown();
    }
}

#[test]
fn disruptive_neighbours_do_not_perturb_results() {
    let victim = Work { n: 24, iters: 600, bias: 0.0625, seed: 7 };
    let expected = solo(&victim);

    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 800,
        ..ServerConfig::default()
    })
    .unwrap();

    let got = std::thread::scope(|s| {
        // The victim: a clean tenant whose results we check.
        let h = {
            let server = &server;
            s.spawn(move || serve_tenant(server, "victim", &victim))
        };

        // A panicking neighbour: every odd job sabotaged.
        let server2 = &server;
        s.spawn(move || {
            let sess = server2.connect("panicky").unwrap();
            let program = sess.build_program(SRC, &[]).unwrap();
            let buf = sess.create_buffer(16 * 4).unwrap();
            sess.write_buffer(buf, &as_bytes(&[1.0; 16])).unwrap();
            let mut k = sess.kernel(&program, "crunch").unwrap();
            k.set_arg_buffer(0, buf).set_arg_i32(1, 300).set_arg_f32(2, 0.5);
            for j in 0..4u32 {
                if j % 2 == 1 {
                    sess.inject_panic_next();
                }
                let job = sess.enqueue(&k, NdRange::dim1(16, 4)).unwrap();
                // Sabotaged jobs are retried with the sabotage cleared
                // (transient-fault model), so every job still completes.
                let out = sess.wait(job).expect("retried job completes");
                assert_eq!(out.attempts, if j % 2 == 1 { 2 } else { 1 });
            }
        });

        // A flaky neighbour: cancels half its own jobs mid-queue.
        let server3 = &server;
        s.spawn(move || {
            let sess = server3.connect("flaky").unwrap();
            let program = sess.build_program(SRC, &[]).unwrap();
            let buf = sess.create_buffer(16 * 4).unwrap();
            sess.write_buffer(buf, &as_bytes(&[2.0; 16])).unwrap();
            let mut k = sess.kernel(&program, "crunch").unwrap();
            k.set_arg_buffer(0, buf).set_arg_i32(1, 500).set_arg_f32(2, -0.25);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            for _ in 0..4 {
                let job = sess.enqueue(&k, NdRange::dim1(16, 4)).unwrap();
                if rng.gen_bool(0.5) {
                    sess.cancel(job);
                    match sess.wait(job) {
                        Err(soff_serve::ServeError::Cancelled) | Ok(_) => {}
                        Err(e) => panic!("cancelled job failed oddly: {e}"),
                    }
                } else {
                    sess.wait(job).expect("uncancelled job completes");
                }
            }
        });

        h.join().unwrap()
    });

    assert_eq!(expected.0, got.0, "victim cycle count perturbed by neighbours");
    assert_eq!(expected.1, got.1, "victim memory bytes perturbed by neighbours");
}

#[test]
fn no_tenant_starves_under_overload() {
    // 4 tenants contend for 1 slot, each submitting more work than the
    // slot can absorb promptly. Least-attained-service slicing must let
    // every tenant finish, with completed work perfectly balanced.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        ..ServerConfig::default()
    })
    .unwrap();

    let per_tenant_jobs = 3;
    std::thread::scope(|s| {
        for t in 0..4 {
            let server = &server;
            s.spawn(move || {
                let sess = server.connect(&format!("tenant{t}")).unwrap();
                let program = sess.build_program(SRC, &[]).unwrap();
                let buf = sess.create_buffer(16 * 4).unwrap();
                sess.write_buffer(buf, &as_bytes(&[0.5; 16])).unwrap();
                let mut k = sess.kernel(&program, "crunch").unwrap();
                k.set_arg_buffer(0, buf).set_arg_i32(1, 400).set_arg_f32(2, 0.125);
                let jobs: Vec<_> = (0..per_tenant_jobs)
                    .map(|_| sess.enqueue(&k, NdRange::dim1(16, 4)).unwrap())
                    .collect();
                for job in jobs {
                    sess.wait(job).expect("job completes under overload");
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.tenants.len(), 4);
    for t in &stats.tenants {
        assert_eq!(t.completed, per_tenant_jobs, "tenant {} starved", t.name);
    }
    assert_eq!(stats.completion_fairness(), 1.0);
    assert!(stats.preemptions > 0, "overload never preempted anyone");
}

#[test]
fn light_tenant_is_not_stuck_behind_heavy_tenant() {
    // A heavy tenant's single huge job must not starve a light tenant's
    // small jobs: least-attained-service preempts the hog every slice.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 400,
        ..ServerConfig::default()
    })
    .unwrap();

    // Heavy = many work-items (steady retirement keeps the livelock
    // watchdog quiet), not one enormous loop (which trips it by design,
    // serve or no serve).
    let heavy = server.connect("heavy").unwrap();
    let program = heavy.build_program(SRC, &[]).unwrap();
    let hbuf = heavy.create_buffer(1024 * 4).unwrap();
    heavy.write_buffer(hbuf, &as_bytes(&[1.0; 1024])).unwrap();
    let mut hk = heavy.kernel(&program, "crunch").unwrap();
    hk.set_arg_buffer(0, hbuf).set_arg_i32(1, 400).set_arg_f32(2, 0.25);
    let heavy_job = heavy.enqueue(&hk, NdRange::dim1(1024, 4)).unwrap();

    let light = server.connect("light").unwrap();
    let lbuf = light.create_buffer(8 * 4).unwrap();
    light.write_buffer(lbuf, &as_bytes(&[0.5; 8])).unwrap();
    let mut lk = light.kernel(&program, "crunch").unwrap();
    lk.set_arg_buffer(0, lbuf).set_arg_i32(1, 50).set_arg_f32(2, 0.5);
    for _ in 0..3 {
        let job = light.enqueue(&lk, NdRange::dim1(8, 4)).unwrap();
        light.wait(job).expect("light job completes while heavy runs");
    }

    // The light tenant finished all its jobs; the heavy job's total cost
    // dwarfs the light tenant's, so it cannot have finished first unless
    // the light tenant was starved behind it.
    let light_stats = light.stats();
    assert_eq!(light_stats.completed, 3);
    assert!(heavy.stats().cycles > 0, "heavy tenant made no progress at all");
    heavy.wait(heavy_job).expect("heavy job eventually completes");
}

#[test]
fn randomized_tenant_mix_is_deterministic() {
    // Seeded random workloads across tenants; every tenant's serve-side
    // results must equal its solo results no matter the interleaving.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let works: Vec<Work> = (0..4)
        .map(|i| Work {
            n: rng.gen_range(8usize..40) & !3,
            iters: rng.gen_range(100..800),
            bias: rng.gen_range(-0.5f32..0.5),
            seed: 100 + i,
        })
        .collect();
    let expected: Vec<(u64, Vec<u8>)> = works.iter().map(solo).collect();

    let server = Server::new(ServerConfig {
        device_slots: 3,
        slice_cycles: 700,
        quota: TenantQuota { max_job_wall: Some(Duration::from_secs(120)), ..TenantQuota::default() },
        ..ServerConfig::default()
    })
    .unwrap();

    let got: Vec<(u64, Vec<u8>)> = std::thread::scope(|s| {
        let handles: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let server = &server;
                s.spawn(move || serve_tenant(server, &format!("r{i}"), w))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (exp, got)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(exp, got, "tenant {i} diverged from its solo run");
    }
}
