//! Admission control, quotas, load shedding, and fault containment.
//!
//! Overload and misbehaviour must surface as *typed* [`ServeError`]s —
//! never panics, never unbounded queues — and in-flight work must drain
//! cleanly through every degradation mode.
//!
//! Admission tests use `device_slots: 0` (an admission-only server): jobs
//! are validated and queued but never dispatched, so queue occupancy is
//! deterministic and the assertions cannot race a worker.

use soff_serve::{
    NdRange, QueueScope, QuotaKind, ServeError, Server, ServerConfig, Session, TenantQuota,
};
use soff_sim::{Fault, FaultPlan};
use std::time::Duration;

const SRC: &str = r#"
__kernel void bump(__global float* a, int iters, float bias) {
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {
        x = x * 0.999f + bias;
    }
    a[i] = x;
}
"#;

/// Builds the kernel and a ready-to-enqueue handle on `sess`.
fn prep(sess: &Session, n: usize, iters: i32) -> soff_serve::KernelHandle {
    let program = sess.build_program(SRC, &[]).unwrap();
    let buf = sess.create_buffer(n * 4).unwrap();
    let bytes: Vec<u8> = std::iter::repeat_n(1.0f32.to_le_bytes(), n).flatten().collect();
    sess.write_buffer(buf, &bytes).unwrap();
    let mut k = sess.kernel(&program, "bump").unwrap();
    k.set_arg_buffer(0, buf).set_arg_i32(1, iters).set_arg_f32(2, 0.5);
    k
}

fn admission_only(cfg: ServerConfig) -> Server {
    Server::new(ServerConfig { device_slots: 0, ..cfg }).unwrap()
}

#[test]
fn tenant_queue_bound_rejects_typed() {
    let server = admission_only(ServerConfig {
        quota: TenantQuota { queue_depth: 3, ..TenantQuota::default() },
        ..ServerConfig::default()
    });
    let sess = server.connect("bounded").unwrap();
    let k = prep(&sess, 8, 10);
    for _ in 0..3 {
        sess.enqueue(&k, NdRange::dim1(8, 4)).expect("within queue depth");
    }
    match sess.enqueue(&k, NdRange::dim1(8, 4)) {
        Err(ServeError::QueueFull { scope: QueueScope::Tenant, limit: 3 }) => {}
        other => panic!("expected tenant QueueFull, got {other:?}"),
    }
    assert_eq!(sess.stats().rejected_queue_full, 1);
}

#[test]
fn global_queue_bound_rejects_typed() {
    let server = admission_only(ServerConfig {
        global_queue_cap: 4,
        ..ServerConfig::default()
    });
    let a = server.connect("a").unwrap();
    let b = server.connect("b").unwrap();
    let ka = prep(&a, 8, 10);
    let kb = prep(&b, 8, 10);
    for _ in 0..2 {
        a.enqueue(&ka, NdRange::dim1(8, 4)).unwrap();
        b.enqueue(&kb, NdRange::dim1(8, 4)).unwrap();
    }
    match a.enqueue(&ka, NdRange::dim1(8, 4)) {
        Err(ServeError::QueueFull { scope: QueueScope::Global, limit: 4 }) => {}
        other => panic!("expected global QueueFull, got {other:?}"),
    }
}

#[test]
fn in_flight_quota_rejects_typed() {
    let server = admission_only(ServerConfig {
        quota: TenantQuota { queue_depth: 10, max_in_flight: 2, ..TenantQuota::default() },
        ..ServerConfig::default()
    });
    let sess = server.connect("capped").unwrap();
    let k = prep(&sess, 8, 10);
    sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    match sess.enqueue(&k, NdRange::dim1(8, 4)) {
        Err(ServeError::QuotaExceeded { what: QuotaKind::InFlight, used: 2, limit: 2 }) => {}
        other => panic!("expected InFlight quota, got {other:?}"),
    }
    assert_eq!(sess.stats().rejected_quota, 1);
}

#[test]
fn invalid_launch_is_rejected_at_admission() {
    // A kernel pointed at another tenant's buffer must be rejected at
    // enqueue time (typed Launch error), never queued or executed.
    let server = admission_only(ServerConfig::default());
    let owner = server.connect("owner").unwrap();
    let thief = server.connect("thief").unwrap();
    let foreign = owner.create_buffer(8 * 4).unwrap();
    let program = thief.build_program(SRC, &[]).unwrap();
    let mut k = thief.kernel(&program, "bump").unwrap();
    k.set_arg_buffer(0, foreign).set_arg_i32(1, 10).set_arg_f32(2, 0.5);
    match thief.enqueue(&k, NdRange::dim1(8, 4)) {
        Err(ServeError::Launch(_)) => {}
        other => panic!("expected Launch validation error, got {other:?}"),
    }
    let st = thief.stats();
    assert_eq!(st.completed + st.failed, 0, "invalid launch must never queue");
}

#[test]
fn shedding_rejects_new_work_and_drains_old() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 2_000,
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("steady").unwrap();
    let k = prep(&sess, 32, 200);
    let admitted = sess.enqueue(&k, NdRange::dim1(32, 4)).unwrap();

    server.shed();
    match sess.enqueue(&k, NdRange::dim1(32, 4)) {
        Err(ServeError::Shedding) => {}
        other => panic!("expected Shedding, got {other:?}"),
    }
    match sess.build_program("__kernel void x(__global int* a) { a[0] = 1; }", &[]) {
        Err(ServeError::Shedding) => {}
        other => panic!("expected Shedding on build, got {:?}", other.map(|_| ())),
    }
    match server.connect("latecomer") {
        Err(ServeError::Shedding) => {}
        other => panic!("expected Shedding on connect, got {:?}", other.map(|_| ())),
    }
    assert_eq!(sess.stats().rejected_shedding, 1);

    // Degradation is graceful: the admitted job still completes.
    sess.wait(admitted).expect("admitted work drains during shedding");

    server.resume();
    let job = sess.enqueue(&k, NdRange::dim1(32, 4)).expect("admission resumes");
    sess.wait(job).unwrap();
}

#[test]
fn total_cycles_quota_caps_a_tenant() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        quota: TenantQuota { max_total_cycles: Some(1), ..TenantQuota::default() },
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("metered").unwrap();
    let k = prep(&sess, 8, 10);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    sess.wait(job).expect("first job runs (quota checked at admission and slice ends)");
    match sess.enqueue(&k, NdRange::dim1(8, 4)) {
        Err(ServeError::QuotaExceeded { what: QuotaKind::TotalCycles, .. }) => {}
        other => panic!("expected TotalCycles quota, got {other:?}"),
    }
}

#[test]
fn job_cycles_quota_kills_a_hog_mid_run() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        quota: TenantQuota { max_job_cycles: 1_000, ..TenantQuota::default() },
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("hog").unwrap();
    // Big enough to be preempted past the 1 000-cycle job quota.
    let k = prep(&sess, 256, 300);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    match sess.wait(job) {
        Err(ServeError::QuotaExceeded { what: QuotaKind::JobCycles, limit: 1_000, .. }) => {}
        other => panic!("expected JobCycles quota, got {other:?}"),
    }
    assert_eq!(sess.stats().failed, 1);
}

#[test]
fn wall_quota_kills_a_job_at_a_slice_boundary() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        quota: TenantQuota {
            max_job_wall: Some(Duration::ZERO),
            ..TenantQuota::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("slow").unwrap();
    let k = prep(&sess, 256, 300);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    match sess.wait(job) {
        Err(ServeError::QuotaExceeded { what: QuotaKind::Wall, .. }) => {}
        other => panic!("expected Wall quota, got {other:?}"),
    }
}

#[test]
fn hung_kernel_is_caught_by_the_watchdog_and_typed() {
    // max_cycles far below the job's needs: the simulator times out, the
    // serve layer types it as Hung, retries once (transient model), then
    // fails it — without disturbing the sibling tenant.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        max_cycles: 300,
        slice_cycles: 50_000,
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("hanger").unwrap();
    let k = prep(&sess, 256, 500);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    match sess.wait(job) {
        Err(ServeError::Hung { .. }) => {}
        other => panic!("expected Hung, got {other:?}"),
    }
    let st = sess.stats();
    assert_eq!(st.failed, 1);
    assert_eq!(st.retries, 1, "one bounded retry before giving up");
}

#[test]
fn panicking_tenant_is_contained_and_memory_rolled_back() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        retry: soff_serve::RetryPolicy { max_attempts: 1, ..Default::default() },
        ..ServerConfig::default()
    })
    .unwrap();

    let victim = server.connect("victim").unwrap();
    let vk = prep(&victim, 8, 50);

    let panicky = server.connect("panicky").unwrap();
    let pk = prep(&panicky, 8, 50);
    let before = {
        // Read the panicky tenant's buffer before the poisoned launch.
        let b = panicky.create_buffer(4).unwrap();
        panicky.write_buffer(b, &7i32.to_le_bytes()).unwrap();
        panicky.read_buffer(b).unwrap()
    };
    assert_eq!(before, 7i32.to_le_bytes());

    panicky.inject_panic_next();
    let poisoned = panicky.enqueue(&pk, NdRange::dim1(8, 4)).unwrap();
    match panicky.wait(poisoned) {
        Err(ServeError::Panicked { message }) => {
            assert!(message.contains("injected tenant panic"), "got: {message}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }

    // The victim tenant is untouched and still fully functional.
    let vjob = victim.enqueue(&vk, NdRange::dim1(8, 4)).unwrap();
    victim.wait(vjob).expect("sibling tenant unaffected by the panic");

    // So is the panicking tenant's own session: memory was rolled back
    // and new launches work.
    let retry_job = panicky.enqueue(&pk, NdRange::dim1(8, 4)).unwrap();
    let out = panicky.wait(retry_job).expect("session usable after contained panic");
    assert_eq!(out.attempts, 1);
}

#[test]
fn injected_hardware_fault_is_retried_then_succeeds() {
    // A forever-stalled channel deadlocks the simulation. The retry path
    // clears the (transient) fault plan and rolls memory back, so the
    // second attempt must produce the exact clean-run result.
    let clean_server = Server::new(ServerConfig { device_slots: 1, ..ServerConfig::default() })
        .unwrap();
    let clean = clean_server.connect("clean").unwrap();
    let ck = prep(&clean, 16, 100);
    let cjob = clean.enqueue(&ck, NdRange::dim1(16, 4)).unwrap();
    let expected = clean.wait(cjob).unwrap();

    // Channel roles depend on the datapath, so probe the channel count
    // on a bare machine and wedge every channel — guaranteed starvation.
    let nchans = {
        let device = soff_serve::Device::system_a();
        let program = soff_runtime::Program::build(SRC, &[], &device).unwrap();
        let mut probe = soff_runtime::Context::new(device);
        let buf = probe.create_buffer(16 * 4);
        let mut k = program.kernel("bump").unwrap();
        k.set_arg_buffer(0, buf).set_arg_i32(1, 100).set_arg_f32(2, 0.5);
        let nd = NdRange::dim1(16, 4);
        let args = probe.prepare_launch(&k, nd).unwrap();
        let ck = k.compiled();
        let cfg = probe.launch_config(ck);
        soff_sim::Machine::new(&ck.kernel, &ck.datapath, &cfg, nd, &args)
            .unwrap()
            .num_channels()
    };
    let mut plan = FaultPlan::none();
    for chan in 0..nchans {
        plan = plan.with(Fault::ChannelStuckStall { chan, from: 0, cycles: u64::MAX });
    }

    let server = Server::new(ServerConfig { device_slots: 1, ..ServerConfig::default() }).unwrap();
    let sess = server.connect("faulty").unwrap();
    let k = prep(&sess, 16, 100);
    sess.inject_faults_next(plan);
    let job = sess.enqueue(&k, NdRange::dim1(16, 4)).unwrap();
    let out = sess.wait(job).expect("fault is transient: retry succeeds");
    assert_eq!(out.attempts, 2, "first attempt faulted, second succeeded");
    assert_eq!(out.cycles, expected.cycles, "retry result identical to clean run");
    assert_eq!(sess.stats().retries, 1);
}

#[test]
fn queued_and_running_jobs_can_be_cancelled() {
    // Queued: admission-only server, cancellation is immediate.
    let parked = admission_only(ServerConfig::default());
    let sess = parked.connect("parked").unwrap();
    let k = prep(&sess, 8, 10);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    assert!(sess.cancel(job));
    match sess.wait(job) {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(sess.stats().cancelled, 1);
    // A consumed job id is gone.
    match sess.wait(job) {
        Err(ServeError::UnknownJob) => {}
        other => panic!("expected UnknownJob, got {other:?}"),
    }

    // Running: cancel stops the slice at the simulator's poll point.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 1 << 40,
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("runner").unwrap();
    let k = prep(&sess, 1024, 400);
    let job = sess.enqueue(&k, NdRange::dim1(1024, 4)).unwrap();
    // Wait (bounded) until the slice is actually running, then cancel.
    for _ in 0..500 {
        if server.stats().slices > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    sess.cancel(job);
    match sess.wait(job) {
        Err(ServeError::Cancelled) => {}
        // Tiny race: the job may have finished before the cancel landed.
        Ok(_) => {}
        Err(e) => panic!("expected Cancelled or completion, got {e:?}"),
    }
}

#[test]
fn cancelling_queued_jobs_releases_quota_and_queue_slots() {
    // Regression guard for the admission counters: cancelling a queued
    // job must release its in-flight quota, its tenant queue slot, AND
    // the global queue slot — otherwise a tenant that cancels a burst is
    // wedged at QuotaExceeded/QueueFull forever even though nothing of
    // theirs is queued or running. Admission-only server so occupancy is
    // deterministic.
    let server = admission_only(ServerConfig {
        global_queue_cap: 3,
        quota: TenantQuota { queue_depth: 3, max_in_flight: 3, ..TenantQuota::default() },
        ..ServerConfig::default()
    });
    let sess = server.connect("burster").unwrap();
    let k = prep(&sess, 8, 10);

    // Fill every bound at once (tenant queue == in-flight == global cap).
    for round in 0..3 {
        let jobs: Vec<_> =
            (0..3).map(|_| sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap()).collect();
        assert!(
            sess.enqueue(&k, NdRange::dim1(8, 4)).is_err(),
            "round {round}: all bounds are saturated"
        );
        for job in jobs {
            assert!(sess.cancel(job), "round {round}: queued job cancels immediately");
            match sess.wait(job) {
                Err(ServeError::Cancelled) => {}
                other => panic!("round {round}: expected Cancelled, got {other:?}"),
            }
        }
    }
    assert_eq!(sess.stats().cancelled, 9);

    // A sibling tenant sees a fully released global queue too.
    let sib = server.connect("sibling").unwrap();
    let sk = prep(&sib, 8, 10);
    for _ in 0..3 {
        sib.enqueue(&sk, NdRange::dim1(8, 4)).expect("global slots were released");
    }
}

#[test]
fn closed_session_and_shutdown_reject_typed() {
    let server = Server::new(ServerConfig { device_slots: 1, ..ServerConfig::default() }).unwrap();
    let sess = server.connect("leaver").unwrap();
    let k = prep(&sess, 8, 10);
    sess.close();
    match sess.enqueue(&k, NdRange::dim1(8, 4)) {
        Err(ServeError::Closed) => {}
        other => panic!("expected Closed after close, got {other:?}"),
    }

    let sess2 = server.connect("other").unwrap();
    let k2 = prep(&sess2, 8, 10);
    server.shutdown();
    match sess2.enqueue(&k2, NdRange::dim1(8, 4)) {
        Err(ServeError::Closed) => {}
        other => panic!("expected Closed after shutdown, got {other:?}"),
    }
    match server.connect("too-late") {
        Err(ServeError::Closed) => {}
        other => panic!("expected Closed connect, got {:?}", other.map(|_| ())),
    }
}
