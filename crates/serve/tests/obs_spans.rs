//! Observability contract of the serve layer.
//!
//! Three properties, each against a *private* registry and trace buffer
//! (so the assertions cannot see another test's global-registry noise):
//!
//! 1. **Span balance.** Every admitted job emits balanced begin/end
//!    spans with matching correlation IDs — across completion, multi-
//!    slice preemption, cancellation (queued and running), retry after a
//!    contained panic, and shutdown drain. An unbalanced trace means a
//!    code path skipped its bookkeeping.
//! 2. **Metric series.** Per-tenant queue-wait / slice-duration
//!    histograms, per-class rejection counters, and per-outcome job
//!    counters appear in the exposition with the expected values, and
//!    the per-class breakdown on [`soff_serve::TenantStats`] stays in
//!    lockstep with the legacy coarse counters.
//! 3. **Sampled profiling is observational.** A profiled run returns
//!    the same cycle counts as an unprofiled one and yields reports via
//!    `take_profiles`.

use soff_obs::{pair_spans, Registry, TraceBuf};
use soff_serve::{
    NdRange, ProfileSampling, ServeError, Server, ServerConfig, Session, TenantQuota,
};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = r#"
__kernel void bump(__global float* a, int iters, float bias) {
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {
        x = x * 0.999f + bias;
    }
    a[i] = x;
}
"#;

fn prep(sess: &Session, n: usize, iters: i32) -> soff_serve::KernelHandle {
    let program = sess.build_program(SRC, &[]).unwrap();
    let buf = sess.create_buffer(n * 4).unwrap();
    let bytes: Vec<u8> = std::iter::repeat_n(1.0f32.to_le_bytes(), n).flatten().collect();
    sess.write_buffer(buf, &bytes).unwrap();
    let mut k = sess.kernel(&program, "bump").unwrap();
    k.set_arg_buffer(0, buf).set_arg_i32(1, iters).set_arg_f32(2, 0.5);
    k
}

fn obs_config() -> (ServerConfig, Arc<Registry>, Arc<TraceBuf>) {
    let registry = Arc::new(Registry::new());
    let trace = Arc::new(TraceBuf::new(4096));
    let cfg = ServerConfig {
        device_slots: 2,
        slice_cycles: 2_000,
        registry: Some(Arc::clone(&registry)),
        trace: Some(Arc::clone(&trace)),
        ..ServerConfig::default()
    };
    (cfg, registry, trace)
}

#[test]
fn spans_balance_across_all_job_fates() {
    let (cfg, _registry, trace) = obs_config();
    let server = Server::new(cfg).unwrap();
    let sess = server.connect("fates").unwrap();
    let k = prep(&sess, 32, 4_000); // long enough to be preempted

    // Fate 1: plain completion (multi-slice).
    let done = sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
    sess.wait(done).unwrap();

    // Fate 2: contained panic, retried (injected panics are transient),
    // second attempt completes — the retry path re-queues, so it must
    // re-open and re-close the queue span.
    sess.inject_panic_next();
    let shaky = sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
    let out = sess.wait(shaky).expect("panic contained and retried");
    assert_eq!(out.attempts, 2);

    // Fate 3: a burst where one job is cancelled while queued.
    let a = sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
    let b = sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
    sess.cancel(b);
    sess.wait(a).unwrap();
    assert!(matches!(sess.wait(b), Err(ServeError::Cancelled)));

    // Fate 4: jobs still queued when the server shuts down (drained).
    for _ in 0..3 {
        sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
    }
    server.shutdown();

    let events = trace.snapshot();
    assert_eq!(trace.dropped(), 0, "test buffer must not wrap");
    let paired = pair_spans(&events);
    assert!(
        paired.balanced(),
        "unbalanced spans: {} open begins, {} orphan ends",
        paired.unmatched_begins.len(),
        paired.unmatched_ends.len()
    );
    // Every completed job ran at least one queue span and one slice span,
    // and preemption means strictly more slice spans than jobs.
    let queue_spans = paired.complete.iter().filter(|s| s.name == "queue").count();
    let slice_spans = paired.complete.iter().filter(|s| s.name == "slice").count();
    assert!(queue_spans >= 6, "one queue span per admission, got {queue_spans}");
    assert!(slice_spans > 6, "preemption multiplies slice spans, got {slice_spans}");
    // Correlation: every slice span's corr was admitted (has an "admit"
    // instant), and all events of one corr share the tenant label.
    for span in &paired.complete {
        assert!(
            events.iter().any(|e| e.name == "admit" && e.corr == span.corr),
            "span {:?} has no admit event",
            span.corr
        );
        assert_eq!(&*span.tenant, "fates");
    }
}

#[test]
fn per_tenant_series_and_rejection_classes_appear() {
    let (cfg, registry, _trace) = obs_config();
    let cfg = ServerConfig {
        quota: TenantQuota { queue_depth: 2, ..TenantQuota::default() },
        ..cfg
    };
    let server = Server::new(cfg).unwrap();
    let alpha = server.connect("alpha").unwrap();
    let beta = server.connect("beta").unwrap();
    let ka = prep(&alpha, 16, 500);
    let kb = prep(&beta, 16, 500);

    let mut alpha_queue_full = 0u64;
    for _ in 0..6 {
        match alpha.enqueue(&ka, NdRange::dim1(16, 8)) {
            Ok(id) => {
                alpha.wait(id).unwrap();
            }
            Err(ServeError::QueueFull { .. }) => alpha_queue_full += 1,
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    let id = beta.enqueue(&kb, NdRange::dim1(16, 8)).unwrap();
    beta.wait(id).unwrap();
    server.shed();
    assert!(matches!(
        beta.enqueue(&kb, NdRange::dim1(16, 8)),
        Err(ServeError::Shedding)
    ));
    server.resume();
    server.shutdown();

    let text = registry.expose();
    // Histograms materialize per tenant.
    for tenant in ["alpha", "beta"] {
        for series in ["soff_serve_queue_wait_us", "soff_serve_slice_us"] {
            let needle = format!("{series}_count{{tenant=\"{tenant}\"}}");
            assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        }
    }
    // Outcome counters.
    assert!(text.contains("soff_serve_jobs_total{outcome=\"completed\",tenant=\"alpha\"}"));
    // Rejections carry their class label; breakdown matches the error we saw.
    assert!(
        text.contains("soff_serve_rejections_total{class=\"shedding\",tenant=\"beta\"} 1"),
        "missing beta shedding rejection in:\n{text}"
    );
    let stats = beta.stats();
    assert_eq!(stats.rejections.shedding, 1);
    assert_eq!(stats.rejections.total(), stats.rejected_shedding + stats.rejected_queue_full + stats.rejected_quota);
    let astats = alpha.stats();
    assert_eq!(
        astats.rejections.queue_full_tenant + astats.rejections.queue_full_global,
        alpha_queue_full,
        "breakdown must be in lockstep with observed rejections"
    );
    assert_eq!(astats.rejected_queue_full, alpha_queue_full);
    // Server-wide series exist.
    assert!(text.contains("soff_serve_slices_total "));
    assert!(text.contains("soff_serve_queue_depth 0"));
}

#[test]
fn sampled_profiling_is_observational_and_reports_arrive() {
    let run = |profile: Option<ProfileSampling>| {
        let registry = Arc::new(Registry::new());
        let server = Server::new(ServerConfig {
            device_slots: 1,
            slice_cycles: 1_500,
            registry: Some(registry),
            profile,
            ..ServerConfig::default()
        })
        .unwrap();
        let sess = server.connect("prof").unwrap();
        let k = prep(&sess, 32, 2_000);
        let mut cycles = Vec::new();
        for _ in 0..3 {
            let id = sess.enqueue(&k, NdRange::dim1(32, 8)).unwrap();
            cycles.push(sess.wait(id).unwrap().cycles);
        }
        let (profiles, dropped) = server.take_profiles();
        server.shutdown();
        (cycles, profiles, dropped)
    };

    let (plain_cycles, plain_profiles, _) = run(None);
    assert!(plain_profiles.is_empty());

    let sampling = ProfileSampling { every: 2, max_reports: 8, ..ProfileSampling::default() };
    let (prof_cycles, profiles, dropped) = run(Some(sampling));
    // The profiler only observes: identical deterministic cycle counts.
    assert_eq!(plain_cycles, prof_cycles);
    assert_eq!(dropped, 0);
    // every=2 over seqs 0,1,2 → jobs 0 and 2 sampled.
    assert_eq!(profiles.len(), 2);
    assert_eq!(profiles.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![0, 2]);
    for p in &profiles {
        assert_eq!(p.tenant, "prof");
        assert_eq!(p.report.total_cycles, prof_cycles[p.seq as usize]);
    }

    // A job preempted across slices still yields one whole-job report.
    assert!(prof_cycles[0] > 1_500, "test wants a multi-slice job");
}

#[test]
fn queue_wait_is_measured_per_dispatch() {
    let (cfg, registry, _trace) = obs_config();
    let server = Server::new(ServerConfig { device_slots: 1, ..cfg }).unwrap();
    let sess = server.connect("waity").unwrap();
    let k = prep(&sess, 16, 3_000);
    let id = sess.enqueue(&k, NdRange::dim1(16, 8)).unwrap();
    let out = sess.wait(id).unwrap();
    server.shutdown();
    std::thread::sleep(Duration::from_millis(1));

    let snap = registry.snapshot_json();
    soff_obs::jsonlint::validate(&snap).expect("snapshot is well-formed JSON");
    let text = registry.expose();
    // One queue-wait sample per dispatch: a preempted job re-queues, so
    // samples == slices for a single-tenant single-job run.
    let needle = format!("soff_serve_queue_wait_us_count{{tenant=\"waity\"}} {}", out.slices);
    assert!(text.contains(&needle), "expected {needle} in:\n{text}");
}
