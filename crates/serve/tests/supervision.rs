//! Crash-only supervision: poison-job quarantine, per-tenant circuit
//! breakers, checkpoint-based slot recovery, wait deadlines, and the
//! readiness snapshot.
//!
//! Everything here is deterministic: breakers advance on caller
//! pressure (not wall time), slot deaths are injected at exact global
//! slice indices, and recovery correctness is asserted bit-for-bit
//! against chaos-free reference runs.

use proptest::prelude::*;
use soff_obs::Registry;
use soff_serve::{
    chaos::{ChaosConfig, ChaosSchedule},
    BreakerConfig, HealthCause, HealthState, NdRange, RetryPolicy, ServeError, Server,
    ServerConfig, Session, Supervision,
};
use soff_sim::{Fault, FaultPlan};
use std::sync::Arc;
use std::time::Duration;

const SRC: &str = r#"
__kernel void bump(__global float* a, int iters, float bias) {
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {
        x = x * 0.999f + bias;
    }
    a[i] = x;
}
"#;

/// Builds the kernel and returns the handle plus its output buffer (so
/// recovery tests can compare final memory bit-for-bit).
fn prep(sess: &Session, n: usize, iters: i32) -> (soff_serve::KernelHandle, soff_serve::Buffer) {
    let program = sess.build_program(SRC, &[]).unwrap();
    let buf = sess.create_buffer(n * 4).unwrap();
    let bytes: Vec<u8> = std::iter::repeat_n(1.0f32.to_le_bytes(), n).flatten().collect();
    sess.write_buffer(buf, &bytes).unwrap();
    let mut k = sess.kernel(&program, "bump").unwrap();
    k.set_arg_buffer(0, buf).set_arg_i32(1, iters).set_arg_f32(2, 0.5);
    (k, buf)
}

#[test]
fn poison_job_is_quarantined_without_penalizing_the_tenant() {
    // quarantine_after < max_attempts: the poison job must stop at the
    // quarantine bound, not burn the whole retry budget.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        retry: RetryPolicy { max_attempts: 5, ..Default::default() },
        supervision: Supervision { quarantine_after: 2, ..Supervision::default() },
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("poisoned").unwrap();
    let (k, _) = prep(&sess, 8, 50);

    sess.inject_sticky_panics_next(5);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    match sess.wait(job) {
        Err(ServeError::Quarantined { attempts: 2, last }) => {
            assert!(matches!(*last, ServeError::Panicked { .. }), "last: {last:?}");
        }
        other => panic!("expected Quarantined after 2 attempts, got {other:?}"),
    }
    let st = sess.stats();
    assert_eq!(st.quarantined, 1);
    assert_eq!(st.retries, 1, "exactly one retry before quarantine kicked in");
    assert_eq!(st.failed, 1);

    // "Without penalizing the tenant": the same session's next job runs
    // normally — quarantine is per-job, not per-tenant.
    let (k2, _) = prep(&sess, 8, 50);
    let job2 = sess.enqueue(&k2, NdRange::dim1(8, 4)).unwrap();
    let out = sess.wait(job2).expect("tenant unaffected by its quarantined job");
    assert_eq!(out.attempts, 1);
}

#[test]
fn quarantine_disabled_by_default_burns_the_retry_budget() {
    let server = Server::new(ServerConfig { device_slots: 1, ..ServerConfig::default() }).unwrap();
    let sess = server.connect("default").unwrap();
    let (k, _) = prep(&sess, 8, 50);
    sess.inject_sticky_panics_next(5);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    match sess.wait(job) {
        // Default quarantine_after == 0: the error keeps its own type.
        Err(ServeError::Panicked { .. }) => {}
        other => panic!("expected plain Panicked, got {other:?}"),
    }
    assert_eq!(sess.stats().quarantined, 0);
}

#[test]
fn breaker_opens_sheds_probes_and_recloses() {
    let registry = Arc::new(Registry::new());
    let server = Server::new(ServerConfig {
        device_slots: 1,
        retry: RetryPolicy { max_attempts: 1, ..Default::default() },
        supervision: Supervision {
            breaker: BreakerConfig { failure_threshold: 2, open_budget: 2, probe_budget: 1 },
            ..Supervision::default()
        },
        registry: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("flappy").unwrap();
    let (k, _) = prep(&sess, 8, 50);

    // Two consecutive settled failures trip the breaker.
    for _ in 0..2 {
        sess.inject_panic_next();
        let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
        assert!(matches!(sess.wait(job), Err(ServeError::Panicked { .. })));
    }
    match server.health().state {
        HealthState::Degraded => {}
        other => panic!("expected Degraded with the breaker open, got {other:?}"),
    }
    assert!(server
        .health()
        .causes
        .iter()
        .any(|c| matches!(c, HealthCause::BreakerOpen { tenant } if tenant == "flappy")));

    // Open: the next open_budget enqueues are shed with a typed error —
    // caller pressure, not wall time, advances the breaker.
    for _ in 0..2 {
        match sess.enqueue(&k, NdRange::dim1(8, 4)) {
            Err(ServeError::CircuitOpen) => {}
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
    }
    assert_eq!(sess.stats().rejections.circuit_open, 2);
    assert!(server
        .health()
        .causes
        .iter()
        .any(|c| matches!(c, HealthCause::BreakerHalfOpen { tenant } if tenant == "flappy")));

    // Half-open: one clean probe re-closes it (probe_budget == 1)...
    let probe = sess.enqueue(&k, NdRange::dim1(8, 4)).expect("half-open admits a probe");
    sess.wait(probe).expect("probe succeeds");
    assert_eq!(server.health().state, HealthState::Ok);
    assert_eq!(
        registry.counter("soff_serve_recoveries_total", &[("kind", "breaker")]).get(),
        1,
        "re-close is a recovery"
    );
    assert_eq!(registry.gauge("soff_serve_breaker_state", &[("tenant", "flappy")]).get(), 0.0);

    // ...and normal service resumes.
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    sess.wait(job).unwrap();
}

#[test]
fn breaker_failures_are_per_tenant() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        retry: RetryPolicy { max_attempts: 1, ..Default::default() },
        supervision: Supervision {
            breaker: BreakerConfig { failure_threshold: 1, open_budget: 2, probe_budget: 1 },
            ..Supervision::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let bad = server.connect("bad").unwrap();
    let good = server.connect("good").unwrap();
    let (bk, _) = prep(&bad, 8, 50);
    let (gk, _) = prep(&good, 8, 50);

    bad.inject_panic_next();
    let job = bad.enqueue(&bk, NdRange::dim1(8, 4)).unwrap();
    assert!(bad.wait(job).is_err());
    assert!(matches!(bad.enqueue(&bk, NdRange::dim1(8, 4)), Err(ServeError::CircuitOpen)));

    // The sibling tenant's breaker is untouched.
    let job = good.enqueue(&gk, NdRange::dim1(8, 4)).expect("sibling breaker closed");
    good.wait(job).unwrap();
}

#[test]
fn slot_death_recovers_from_checkpoint_bit_identically() {
    // Reference: the same job on an undisturbed server.
    let reference = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        ..ServerConfig::default()
    })
    .unwrap();
    let rsess = reference.connect("ref").unwrap();
    let (rk, rbuf) = prep(&rsess, 256, 300);
    let rjob = rsess.enqueue(&rk, NdRange::dim1(256, 4)).unwrap();
    let expected = rsess.wait(rjob).unwrap();
    let expected_bytes = rsess.read_buffer(rbuf).unwrap();
    assert!(expected.slices > 3, "need a multi-slice job for a mid-run death");

    let registry = Arc::new(Registry::new());
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        registry: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("survivor").unwrap();
    let (k, buf) = prep(&sess, 256, 300);
    // Global slice 2 dies: the job already has a checkpoint from its
    // earlier preemptions and must resume from it, not from scratch.
    server.inject_slot_deaths(&[2]);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    let out = sess.wait(job).expect("job survives the slot death");

    assert_eq!(out.cycles, expected.cycles, "checkpoint recovery must not change the result");
    assert_eq!(out.attempts, 1, "re-admission is not a retry");
    assert_eq!(sess.read_buffer(buf).unwrap(), expected_bytes, "memory bit-identical");
    assert_eq!(sess.stats().slot_recoveries, 1);
    assert_eq!(registry.counter("soff_serve_recoveries_total", &[("kind", "slot")]).get(), 1);
}

#[test]
fn slot_death_before_any_checkpoint_restarts_cleanly() {
    let reference = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        ..ServerConfig::default()
    })
    .unwrap();
    let rsess = reference.connect("ref").unwrap();
    let (rk, rbuf) = prep(&rsess, 256, 300);
    let rjob = rsess.enqueue(&rk, NdRange::dim1(256, 4)).unwrap();
    let expected = rsess.wait(rjob).unwrap();
    let expected_bytes = rsess.read_buffer(rbuf).unwrap();

    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("early-death").unwrap();
    let (k, buf) = prep(&sess, 256, 300);
    // The very first slice dies: no checkpoint exists, so recovery rolls
    // back to the pre-launch image and starts over.
    server.inject_slot_deaths(&[0]);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    let out = sess.wait(job).expect("job survives a first-slice death");
    assert_eq!(out.cycles, expected.cycles);
    assert_eq!(sess.read_buffer(buf).unwrap(), expected_bytes);
}

#[test]
fn repeated_slot_deaths_exhaust_the_recovery_budget() {
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 500,
        supervision: Supervision { max_slot_recoveries: 1, ..Supervision::default() },
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("doomed").unwrap();
    let (k, _) = prep(&sess, 256, 300);
    // Every early slice dies; after max_slot_recoveries the job fails
    // with a typed error instead of re-admitting forever.
    server.inject_slot_deaths(&[0, 1, 2, 3]);
    let job = sess.enqueue(&k, NdRange::dim1(256, 4)).unwrap();
    match sess.wait(job) {
        Err(ServeError::Faulted { what, .. }) => {
            assert!(what.contains("slot died"), "got: {what}");
        }
        other => panic!("expected Faulted after recovery budget, got {other:?}"),
    }
    assert_eq!(sess.stats().slot_recoveries, 1, "one recovery granted, second death is fatal");
}

#[test]
fn health_tracks_shedding() {
    let server = Server::new(ServerConfig { device_slots: 0, ..ServerConfig::default() }).unwrap();
    assert_eq!(server.health().state, HealthState::Ok);
    assert!(server.health().causes.is_empty());
    server.shed();
    let h = server.health();
    assert_eq!(h.state, HealthState::Shedding);
    assert!(h.causes.iter().any(|c| matches!(c, HealthCause::Shedding)));
    server.resume();
    assert_eq!(server.health().state, HealthState::Ok);
}

#[test]
fn wait_deadline_times_out_without_consuming_the_job() {
    // Admission-only server: the job is queued forever, which is the
    // most extreme "hung" case.
    let server = Server::new(ServerConfig { device_slots: 0, ..ServerConfig::default() }).unwrap();
    let sess = server.connect("waiter").unwrap();
    let (k, _) = prep(&sess, 8, 10);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    match sess.wait_deadline(job, Duration::from_millis(30)) {
        Err(ServeError::WaitTimeout { waited }) => {
            assert!(waited >= Duration::from_millis(30), "waited {waited:?}");
        }
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
    // The job is still alive: it can be cancelled and then consumed.
    assert!(sess.cancel(job), "timed-out wait must not consume the job");
    match sess.wait(job) {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn wait_deadline_frees_the_caller_from_a_glacial_job() {
    // A DRAM latency spike makes the job glacial but *live*: it keeps
    // progressing and never trips the deadlock detector, so only a wall
    // deadline gets the caller unstuck.
    let server = Server::new(ServerConfig {
        device_slots: 1,
        slice_cycles: 2_000,
        ..ServerConfig::default()
    })
    .unwrap();
    let sess = server.connect("glacial").unwrap();
    let (k, _) = prep(&sess, 1024, 400);
    sess.inject_faults_next(FaultPlan::none().with(Fault::DramLatencySpike {
        from: 0,
        cycles: u64::MAX,
        extra_latency: 2_000,
    }));
    let job = sess.enqueue(&k, NdRange::dim1(1024, 4)).unwrap();
    match sess.wait_deadline(job, Duration::from_millis(50)) {
        Err(ServeError::WaitTimeout { .. }) => {}
        // On a very fast host the job may still finish inside the
        // budget; that is not a failure of the deadline mechanism.
        Ok(_) => return,
        other => panic!("expected WaitTimeout, got {other:?}"),
    }
    sess.cancel(job);
    match sess.wait(job) {
        Err(ServeError::Cancelled) | Ok(_) => {}
        Err(e) => panic!("expected Cancelled or completion, got {e:?}"),
    }
    // Drop of `server` must join workers promptly (the cancel landed).
}

#[test]
fn wait_deadline_returns_a_finished_job_immediately() {
    let server = Server::new(ServerConfig { device_slots: 1, ..ServerConfig::default() }).unwrap();
    let sess = server.connect("prompt").unwrap();
    let (k, _) = prep(&sess, 8, 10);
    let job = sess.enqueue(&k, NdRange::dim1(8, 4)).unwrap();
    let out = sess
        .wait_deadline(job, Duration::from_secs(60))
        .expect("plenty of budget: behaves like wait()");
    assert_eq!(out.attempts, 1);
    // Consumed now, like wait().
    assert!(matches!(sess.wait(job), Err(ServeError::UnknownJob)));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The chaos determinism contract: a schedule is a pure function of
    /// its config, for any config.
    #[test]
    fn same_seed_chaos_schedules_are_identical(
        seed in any::<u64>(),
        tenants in 1u32..6,
        jobs_per_tenant in 1u32..12,
        events in 0u32..48,
    ) {
        let cfg = ChaosConfig { seed, tenants, jobs_per_tenant, events };
        let a = ChaosSchedule::generate(cfg);
        let b = ChaosSchedule::generate(cfg);
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(a.digest(), b.digest());
    }
}
