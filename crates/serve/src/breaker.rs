//! Per-tenant circuit breaker: a pure, deterministic state machine with
//! **no wall-clock** anywhere in it.
//!
//! Classic breakers re-close on a timer; under a deterministic simulator
//! a timer would make scheduling (and tests) racy, so this one advances
//! on *counts* instead:
//!
//! ```text
//!            failure_threshold consecutive job failures
//!   Closed ──────────────────────────────────────────────▶ Open
//!     ▲                                                      │
//!     │ probe_budget consecutive probe successes             │ open_budget
//!     │                                                      │ rejected
//!     │                 any failure                          │ enqueues
//!   HalfOpen ◀───────────────────────────────────────────────┘
//!     │  └──────────────────────────▶ Open
//!     └ admits one probe job at a time
//! ```
//!
//! - **Closed**: everything admitted; consecutive job failures counted
//!   (any success resets the streak).
//! - **Open**: enqueues are rejected (shed early, before they consume
//!   queue space or device time). After `open_budget` rejections the
//!   breaker half-opens — the *caller's own retry pressure* is the
//!   clock, so a tenant that stops sending stays shed and costs nothing.
//! - **HalfOpen**: admits one probe job at a time. `probe_budget`
//!   consecutive probe successes close the breaker; any failure (probe
//!   or a late straggler from before the trip) re-opens it with a fresh
//!   rejection budget. Cancelled probes return their slot without a
//!   verdict.
//!
//! `failure_threshold == 0` disables the breaker entirely (it reports
//! `Closed` forever), which is the default: breakers are opt-in via
//! [`crate::Supervision`].

/// Breaker tuning ([`crate::Supervision::breaker`]).
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive job failures that trip Closed → Open. `0` disables
    /// the breaker.
    pub failure_threshold: u32,
    /// Enqueue rejections absorbed while Open before half-opening
    /// (minimum 1: at least one request is always shed).
    pub open_budget: u32,
    /// Consecutive probe successes that close a half-open breaker
    /// (minimum 1).
    pub probe_budget: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 0, open_budget: 4, probe_budget: 2 }
    }
}

/// Where the breaker currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Traffic is shed with [`crate::ServeError::CircuitOpen`].
    Open,
    /// One probe at a time is admitted to test recovery.
    HalfOpen,
}

/// A state transition worth reporting (gauges, recovery counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// → [`BreakerState::Open`].
    Opened,
    /// → [`BreakerState::HalfOpen`].
    HalfOpened,
    /// → [`BreakerState::Closed`] (a recovery).
    Closed,
}

/// One tenant's breaker.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_rejections: u32,
    probes_in_flight: u32,
    probe_successes: u32,
}

impl Breaker {
    /// A closed breaker under `cfg`.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_rejections: 0,
            probes_in_flight: 0,
            probe_successes: 0,
        }
    }

    fn enabled(&self) -> bool {
        self.cfg.failure_threshold > 0
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gauge encoding: Closed = 0, HalfOpen = 1, Open = 2.
    pub fn gauge_value(&self) -> f64 {
        match self.state {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }

    /// Admission check for one enqueue. `false` means shed this request.
    /// Counting a rejection may half-open the breaker — the transition
    /// is reported so the caller can update its gauge; the *admission
    /// verdict* for the triggering request is still `false` (it was the
    /// last shed one; the next request becomes the probe).
    pub fn admit(&mut self) -> (bool, Option<BreakerEvent>) {
        if !self.enabled() {
            return (true, None);
        }
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::HalfOpen => (self.probes_in_flight == 0, None),
            BreakerState::Open => {
                self.open_rejections += 1;
                if self.open_rejections >= self.cfg.open_budget.max(1) {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 0;
                    self.probe_successes = 0;
                    (false, Some(BreakerEvent::HalfOpened))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records that a job cleared *full* admission (all other checks
    /// passed too). Returns whether that job is a probe — callers tag
    /// the job so its settle routes back through the probe paths.
    /// Separate from [`Breaker::admit`] so a request the breaker allowed
    /// but a quota rejected never consumes the probe slot.
    pub fn on_admitted(&mut self) -> bool {
        if self.enabled() && self.state == BreakerState::HalfOpen {
            self.probes_in_flight += 1;
            true
        } else {
            false
        }
    }

    /// A job settled successfully.
    pub fn on_success(&mut self, probe: bool) -> Option<BreakerEvent> {
        if !self.enabled() {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen if probe => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.probe_budget.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    Some(BreakerEvent::Closed)
                } else {
                    None
                }
            }
            // A pre-trip straggler succeeding says nothing about whether
            // the tenant's traffic has recovered; only probes count.
            BreakerState::HalfOpen | BreakerState::Open => None,
        }
    }

    /// A job settled with a (terminal) failure.
    pub fn on_failure(&mut self, probe: bool) -> Option<BreakerEvent> {
        if !self.enabled() {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.open_rejections = 0;
                    Some(BreakerEvent::Opened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                // Probe or straggler: either way the tenant is still
                // failing — re-open with a fresh rejection budget.
                if probe {
                    self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                }
                self.state = BreakerState::Open;
                self.open_rejections = 0;
                Some(BreakerEvent::Opened)
            }
            BreakerState::Open => None,
        }
    }

    /// A job was cancelled: no verdict either way, but a cancelled probe
    /// must return its slot or the half-open breaker wedges.
    pub fn on_abandoned(&mut self, probe: bool) {
        if self.enabled() && probe {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_budget: u32, probe_budget: u32) -> Breaker {
        Breaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_budget,
            probe_budget,
        })
    }

    #[test]
    fn disabled_breaker_never_leaves_closed() {
        let mut b = breaker(0, 1, 1);
        for _ in 0..100 {
            assert_eq!(b.admit(), (true, None));
            assert!(!b.on_admitted());
            assert_eq!(b.on_failure(false), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn closed_counts_consecutive_failures_and_success_resets() {
        let mut b = breaker(3, 1, 1);
        assert_eq!(b.on_failure(false), None);
        assert_eq!(b.on_failure(false), None);
        assert_eq!(b.on_success(false), None); // streak broken
        assert_eq!(b.on_failure(false), None);
        assert_eq!(b.on_failure(false), None);
        assert_eq!(b.on_failure(false), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_sheds_exactly_open_budget_then_half_opens() {
        let mut b = breaker(1, 3, 1);
        assert_eq!(b.on_failure(false), Some(BreakerEvent::Opened));
        assert_eq!(b.admit(), (false, None));
        assert_eq!(b.admit(), (false, None));
        // The open_budget-th rejection half-opens; itself still shed.
        assert_eq!(b.admit(), (false, Some(BreakerEvent::HalfOpened)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The next request is the probe.
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
    }

    #[test]
    fn half_open_admits_one_probe_at_a_time() {
        let mut b = breaker(1, 1, 2);
        b.on_failure(false);
        b.admit(); // half-opens
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
        // Probe outstanding: everything else shed, with no state churn.
        assert_eq!(b.admit(), (false, None));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe succeeds (1 of 2): slot freed, next probe admitted.
        assert_eq!(b.on_success(true), None);
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
        assert_eq!(b.on_success(true), Some(BreakerEvent::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_with_fresh_budget() {
        let mut b = breaker(1, 2, 1);
        b.on_failure(false);
        b.admit();
        assert_eq!(b.admit(), (false, Some(BreakerEvent::HalfOpened)));
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
        assert_eq!(b.on_failure(true), Some(BreakerEvent::Opened));
        // Fresh rejection budget: two sheds before the next half-open.
        assert_eq!(b.admit(), (false, None));
        assert_eq!(b.admit(), (false, Some(BreakerEvent::HalfOpened)));
    }

    #[test]
    fn straggler_failure_in_half_open_reopens() {
        let mut b = breaker(1, 1, 1);
        b.on_failure(false);
        b.admit(); // half-opens
        // A job admitted before the trip fails now (probe = false).
        assert_eq!(b.on_failure(false), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn straggler_success_in_half_open_or_open_is_ignored() {
        let mut b = breaker(1, 2, 1);
        b.on_failure(false);
        assert_eq!(b.on_success(false), None);
        assert_eq!(b.state(), BreakerState::Open);
        b.admit();
        b.admit(); // half-opens
        assert_eq!(b.on_success(false), None);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn cancelled_probe_returns_its_slot_without_a_verdict() {
        let mut b = breaker(1, 1, 1);
        b.on_failure(false);
        b.admit(); // half-opens
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
        b.on_abandoned(true);
        // Slot free again, state unchanged: the next probe decides.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), (true, None));
        assert!(b.on_admitted());
        assert_eq!(b.on_success(true), Some(BreakerEvent::Closed));
    }

    #[test]
    fn cancelled_non_probe_changes_nothing() {
        let mut b = breaker(2, 1, 1);
        b.on_failure(false);
        b.on_abandoned(false);
        assert_eq!(b.state(), BreakerState::Closed);
        // The failure streak is intact (cancellation is not a success).
        assert_eq!(b.on_failure(false), Some(BreakerEvent::Opened));
    }

    #[test]
    fn gauge_values_track_state() {
        let mut b = breaker(1, 1, 1);
        assert_eq!(b.gauge_value(), 0.0);
        b.on_failure(false);
        assert_eq!(b.gauge_value(), 2.0);
        b.admit();
        assert_eq!(b.gauge_value(), 1.0);
        b.admit();
        b.on_admitted();
        b.on_success(true);
        assert_eq!(b.gauge_value(), 0.0);
    }
}
