//! Seeded, deterministic cross-layer chaos schedules.
//!
//! A [`ChaosSchedule`] is a pure function of its [`ChaosConfig`]: the
//! same seed always yields the same events, in the same order, with the
//! same targets — which is what lets `chaos_soak` assert that a chaotic
//! run's *surviving* jobs are bit-identical to a chaos-free run, and
//! that two runs of the same seed agree on the whole event list
//! ([`ChaosSchedule::digest`]).
//!
//! The schedule spans every failure domain the serve stack owns:
//!
//! | event                      | layer    | injected via                        |
//! |----------------------------|----------|-------------------------------------|
//! | [`ChaosEvent::SimFault`]   | device   | [`crate::Session::inject_faults_next`] |
//! | [`ChaosEvent::JobPanic`]   | host     | [`crate::Session::inject_panic_next`] |
//! | [`ChaosEvent::StickyPanic`]| host     | [`crate::Session::inject_sticky_panics_next`] |
//! | [`ChaosEvent::SlotDeath`]  | scheduler| [`crate::Server::inject_slot_deaths`] |
//! | disk events                | store    | `soff_runtime::store::set_io_faults` |
//! | [`ChaosEvent::JournalTear`]| journal  | `soff_workloads::journal::set_journal_faults` |
//!
//! Job-targeted events are confined to the first three quarters of each
//! tenant's jobs, so every run ends with a chaos-free tail — the window
//! in which breakers re-close, the store heals, and
//! [`crate::Server::health`] must return to `Ok`.

use soff_sim::{Fault, FaultPlan};

/// Parameters a schedule is generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the splitmix64 stream.
    pub seed: u64,
    /// Tenants in the soak (events target `0..tenants`).
    pub tenants: u32,
    /// Jobs each tenant enqueues.
    pub jobs_per_tenant: u32,
    /// Events to generate (duplicate job targets are skipped, so the
    /// schedule may hold slightly fewer).
    pub events: u32,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Stall-everything hardware fault on one job's first attempt: the
    /// deadlock detector fires, the retry runs clean and must reproduce
    /// the chaos-free result bit-for-bit.
    SimFault {
        /// Target tenant index.
        tenant: u32,
        /// Target job index within the tenant.
        job: u32,
    },
    /// Host-side panic on one job's first attempt (contained + retried).
    JobPanic {
        /// Target tenant index.
        tenant: u32,
        /// Target job index within the tenant.
        job: u32,
    },
    /// A poison job: panics on `attempts` consecutive attempts, which
    /// drives it through quarantine when `attempts >=`
    /// [`crate::Supervision::quarantine_after`].
    StickyPanic {
        /// Target tenant index.
        tenant: u32,
        /// Target job index within the tenant.
        job: u32,
        /// Consecutive panicking attempts.
        attempts: u32,
    },
    /// A device slot dies mid-slice (global slice index); the job on it
    /// recovers from its last checkpoint.
    SlotDeath {
        /// Global slice index at which the slot dies.
        slice: u64,
    },
    /// The Nth disk-store read fails with EIO.
    DiskReadError {
        /// Store read-op index.
        op: u64,
    },
    /// The Nth disk-store write fails with ENOSPC.
    DiskWriteError {
        /// Store put-op index.
        op: u64,
    },
    /// The Nth disk-store write lands torn on the final path.
    DiskTornWrite {
        /// Store put-op index.
        op: u64,
    },
    /// The Nth disk-store write lands with a flipped payload byte.
    DiskBitFlip {
        /// Store put-op index.
        op: u64,
    },
    /// The Nth journal append tears mid-line.
    JournalTear {
        /// Journal append-op index.
        append: u64,
    },
}

/// The generated event list (see module docs for the determinism
/// contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    cfg: ChaosConfig,
    events: Vec<ChaosEvent>,
}

/// splitmix64 (the project-standard seedable stream; matches the bench
/// bins' generator).
#[derive(Clone)]
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

impl ChaosSchedule {
    /// Generates the schedule for `cfg`. Deterministic: same config ⇒
    /// same events.
    pub fn generate(cfg: ChaosConfig) -> ChaosSchedule {
        let mut rng = Splitmix(cfg.seed);
        let tenants = cfg.tenants.max(1);
        let jobs = cfg.jobs_per_tenant.max(1);
        // Job-targeted chaos stays out of the final quarter (min 2 jobs)
        // of each tenant's stream: the clean tail closes breakers and
        // proves self-healing.
        let job_ceiling = (jobs * 3 / 4).max(1).min(jobs.saturating_sub(2).max(1));
        let mut taken = std::collections::HashSet::new();
        let mut sticky_used = false;
        let mut events = Vec::new();
        for _ in 0..cfg.events {
            let roll = rng.below(10);
            match roll {
                // Job-targeted events (one per (tenant, job): a job holds
                // a single pending-fault slot).
                0..=4 => {
                    let tenant = rng.below(u64::from(tenants)) as u32;
                    let job = rng.below(u64::from(job_ceiling)) as u32;
                    if !taken.insert((tenant, job)) {
                        continue;
                    }
                    events.push(match roll {
                        0 | 1 => ChaosEvent::SimFault { tenant, job },
                        2 | 3 => ChaosEvent::JobPanic { tenant, job },
                        _ if !sticky_used => {
                            sticky_used = true;
                            ChaosEvent::StickyPanic { tenant, job, attempts: 3 }
                        }
                        _ => ChaosEvent::JobPanic { tenant, job },
                    });
                }
                5 => {
                    // Slices are plentiful (every job runs several); the
                    // range is a heuristic and a miss only means the
                    // death never fires, which the soak reports.
                    let range = u64::from(tenants) * u64::from(jobs) * 3;
                    events.push(ChaosEvent::SlotDeath { slice: rng.below(range) });
                }
                6 => events.push(ChaosEvent::DiskReadError { op: rng.below(6) }),
                7 => {
                    let op = rng.below(6);
                    events.push(match rng.below(3) {
                        0 => ChaosEvent::DiskWriteError { op },
                        1 => ChaosEvent::DiskTornWrite { op },
                        _ => ChaosEvent::DiskBitFlip { op },
                    });
                }
                _ => events.push(ChaosEvent::JournalTear { append: rng.below(8) }),
            }
        }
        ChaosSchedule { cfg, events }
    }

    /// The configuration this schedule was generated from.
    pub fn config(&self) -> ChaosConfig {
        self.cfg
    }

    /// The events, in generation order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// FNV-1a digest over the rendered event list: the "same seed ⇒
    /// same schedule" witness two runs compare.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for event in &self.events {
            for b in format!("{event:?};").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// The transient hardware fault [`ChaosEvent::SimFault`] renders to: a
/// forever stuck-stall on every one of the machine's `nchans` channels,
/// which the deadlock detector reliably converts into a typed, retryable
/// [`crate::ServeError::Faulted`] (the retry then runs fault-free).
pub fn stall_all_channels(nchans: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for chan in 0..nchans.max(1) {
        plan = plan.with(Fault::ChannelStuckStall { chan, from: 0, cycles: u64::MAX });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ChaosConfig {
        ChaosConfig { seed, tenants: 3, jobs_per_tenant: 8, events: 16 }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosSchedule::generate(cfg(42));
        let b = ChaosSchedule::generate(cfg(42));
        assert_eq!(a.events(), b.events());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let digests: std::collections::HashSet<u64> =
            (0..32).map(|s| ChaosSchedule::generate(cfg(s)).digest()).collect();
        assert!(digests.len() > 16, "seeds should spread: {} distinct", digests.len());
    }

    #[test]
    fn job_targets_leave_a_clean_tail_and_never_collide() {
        let s = ChaosSchedule::generate(ChaosConfig {
            seed: 7,
            tenants: 4,
            jobs_per_tenant: 8,
            events: 64,
        });
        let mut seen = std::collections::HashSet::new();
        for e in s.events() {
            let target = match e {
                ChaosEvent::SimFault { tenant, job }
                | ChaosEvent::JobPanic { tenant, job }
                | ChaosEvent::StickyPanic { tenant, job, .. } => Some((*tenant, *job)),
                _ => None,
            };
            if let Some((tenant, job)) = target {
                assert!(tenant < 4);
                assert!(job < 6, "job {job} inside the protected clean tail");
                assert!(seen.insert((tenant, job)), "duplicate target {tenant}/{job}");
            }
        }
    }

    #[test]
    fn at_most_one_sticky_panic_per_schedule() {
        for seed in 0..64 {
            let s = ChaosSchedule::generate(cfg(seed));
            let stickies = s
                .events()
                .iter()
                .filter(|e| matches!(e, ChaosEvent::StickyPanic { .. }))
                .count();
            assert!(stickies <= 1, "seed {seed} scheduled {stickies} poison jobs");
        }
    }

    #[test]
    fn stall_plan_covers_every_channel() {
        let plan = stall_all_channels(5);
        assert_eq!(plan.faults.len(), 5);
        assert!(plan.validate(5, 0, 0).is_ok());
    }
}
