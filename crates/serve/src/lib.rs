//! # soff-serve
//!
//! An in-process multi-tenant compile-and-simulate service layered on the
//! SOFF runtime: many concurrent client [`Session`]s — each with its own
//! context, buffers, and in-order job queue — multiplexed over a bounded
//! pool of simulated devices. The SOFF paper's runtime serves one process
//! talking to real boards; this layer is the reproduction's step toward
//! the production-scale system the roadmap targets, and robustness is its
//! whole job:
//!
//! - **Preemptive time-slicing.** Kernel launches run in bounded cycle
//!   slices using the simulator's deterministic cycle deadlines and
//!   checkpoint/restore: after each slice the machine state is
//!   snapshotted and the device slot is handed to the neediest tenant
//!   (least attained service — the tenant with the fewest consumed
//!   cycles runs next). Slices cut at deterministic cycle numbers, and
//!   snapshots resume bit-identically, so a tenant's results are
//!   byte-identical whether it runs alone or interleaved with others.
//! - **Admission control and graceful degradation.** Per-tenant and
//!   global queue bounds, per-tenant quotas (cycles per job, total
//!   cycles, wall time, in-flight launches), and a load-shedding mode
//!   reject work with typed [`ServeError`]s instead of queueing without
//!   bound or panicking. In-flight work always drains cleanly.
//! - **Crash-safe shared compiles.** When configured with a cache
//!   directory, compiles go through the runtime's on-disk
//!   content-addressed store ([`soff_runtime::cache::set_disk_store`]):
//!   fsync'd, checksummed, torn-write-tolerant, shared across processes,
//!   and reused after a crash or restart.
//! - **Fault containment.** A tenant whose kernel panics, hangs the
//!   watchdog, or hits injected hardware faults gets a typed per-session
//!   error and a bounded retry (via [`soff_exec::RetryPolicy`] backoff);
//!   its device memory is rolled back to the pre-launch state, and no
//!   other tenant observes anything but scheduling latency.
//! - **First-class observability.** Every server instruments the full
//!   request path on a `soff-obs` registry ([`ServerConfig::registry`];
//!   the process-global one by default): per-tenant queue-wait and
//!   slice-duration histograms, per-class rejection counters, slice /
//!   preemption counters, a queue-depth gauge, and a completion-fairness
//!   gauge. With [`ServerConfig::trace`] set, the admit → queue → slice
//!   → settle path additionally records begin/end spans with
//!   tenant/session/job correlation IDs into a bounded ring buffer, and
//!   [`ServerConfig::profile`] samples jobs through the simulator's
//!   cycle profiler so serve-level spans and in-kernel timelines export
//!   into one merged Chrome trace ([`Server::take_profiles`]).

pub mod breaker;
pub mod chaos;

use breaker::{Breaker, BreakerEvent, BreakerState};
use soff_obs::{CorrId, Counter, Gauge, Histogram, Registry, TraceBuf};
use soff_runtime::{CompiledKernel, Context};
use soff_sim::{CancelToken, FaultPlan, RunControl, Scheduler, SimError, Snapshot};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use breaker::BreakerConfig;
pub use soff_exec::RetryPolicy;
pub use soff_ir::ir::NdRange;
// The client-facing runtime vocabulary, so `soff_serve` callers need no
// direct `soff_runtime` import for the common path.
pub use soff_runtime::{Buffer, BuildError, Device, KernelHandle, LaunchError, Program};

/// Per-tenant resource quotas, enforced at admission and at every slice
/// boundary.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Maximum queued jobs (the per-tenant queue bound).
    pub queue_depth: usize,
    /// Maximum jobs admitted but not yet completed (queued + running).
    pub max_in_flight: usize,
    /// Maximum simulated cycles a single job may consume before it is
    /// failed with [`QuotaKind::JobCycles`].
    pub max_job_cycles: u64,
    /// Cap on the tenant's *total* consumed cycles; once reached, the
    /// running job fails and new work is rejected
    /// ([`QuotaKind::TotalCycles`]).
    pub max_total_cycles: Option<u64>,
    /// Cap on a single job's host wall time across its slices
    /// ([`QuotaKind::Wall`]). Checked at slice boundaries, so it is a
    /// watchdog, not a precise meter.
    pub max_job_wall: Option<Duration>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            queue_depth: 16,
            max_in_flight: 32,
            max_job_cycles: 1 << 40,
            max_total_cycles: None,
            max_job_wall: None,
        }
    }
}

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated device slots = worker threads executing slices.
    pub device_slots: usize,
    /// Cycles per preemption slice. Slices cut at deterministic absolute
    /// cycle numbers (multiples of this from each job's start), which is
    /// what makes interleaved results bit-identical to solo runs.
    pub slice_cycles: u64,
    /// Bound on jobs queued across all tenants.
    pub global_queue_cap: usize,
    /// Default quota for new sessions.
    pub quota: TenantQuota,
    /// The simulated device every slot models.
    pub device: Device,
    /// Simulator scheduler strategy (results are bit-identical either
    /// way).
    pub scheduler: Scheduler,
    /// Absolute simulated-cycle watchdog per launch (maps to
    /// [`ServeError::Hung`] when exhausted).
    pub max_cycles: u64,
    /// Bounded-retry policy for contained faults (panic / hang /
    /// injected fault). `max_attempts: 1` disables retry.
    pub retry: RetryPolicy,
    /// Directory for the crash-safe shared compile store; `None` keeps
    /// compiles in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Metrics registry to instrument on. `None` (the default) uses the
    /// process-global [`soff_obs::global`] registry; tests pass their own
    /// for isolation.
    pub registry: Option<Arc<Registry>>,
    /// Span ring buffer for request-path tracing (admit → queue → slice
    /// → settle). `None` (the default) disables span recording entirely.
    pub trace: Option<Arc<TraceBuf>>,
    /// Sampled simulator profiling: every N-th job per session runs with
    /// the cycle profiler attached. `None` (the default) disables it.
    /// Profiling is observational — job results and cycle counts stay
    /// bit-identical (see [`soff_sim`]'s profiler contract).
    pub profile: Option<ProfileSampling>,
    /// Crash-only supervision: poison-job quarantine, per-tenant circuit
    /// breakers, and checkpoint-based slot recovery. The default leaves
    /// quarantine and breakers disabled (pure retry semantics).
    pub supervision: Supervision,
}

/// Supervision policy ([`ServerConfig::supervision`]).
#[derive(Debug, Clone)]
pub struct Supervision {
    /// Quarantine a job after this many consecutive *retryable* failed
    /// attempts, even if retry budget remains — the job is poison, not
    /// unlucky. `0` (the default) disables quarantine; when enabled it
    /// only ever fires earlier than retry exhaustion, never later.
    pub quarantine_after: u32,
    /// Per-tenant circuit breaker tuning; the default
    /// (`failure_threshold: 0`) disables breakers.
    pub breaker: BreakerConfig,
    /// How many device-slot deaths a single job may survive (resuming
    /// from its checkpoint each time) before it is failed as
    /// [`ServeError::Faulted`].
    pub max_slot_recoveries: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            quarantine_after: 0,
            breaker: BreakerConfig::default(),
            max_slot_recoveries: 3,
        }
    }
}

/// Sampled-profiling policy ([`ServerConfig::profile`]).
#[derive(Debug, Clone)]
pub struct ProfileSampling {
    /// Profiler configuration for sampled jobs.
    pub config: soff_sim::ProfileConfig,
    /// Sample every N-th job per session (1 = every job; 0 behaves as 1).
    /// The decision is made at admission and fixed for the job's whole
    /// life, so slice snapshots stay self-consistent.
    pub every: u64,
    /// Bound on retained [`JobProfile`] reports (oldest kept; further
    /// reports are dropped). Collect with [`Server::take_profiles`].
    pub max_reports: usize,
}

impl Default for ProfileSampling {
    fn default() -> Self {
        ProfileSampling {
            config: soff_sim::ProfileConfig::default(),
            every: 1,
            max_reports: 64,
        }
    }
}

/// A sampled job's simulator profile, tagged with its origin.
#[derive(Debug)]
pub struct JobProfile {
    /// Tenant name.
    pub tenant: String,
    /// Session id the job ran under.
    pub session: u32,
    /// Job sequence number within the session.
    pub seq: u64,
    /// When the job settled, in µs on the server's trace clock (0 when
    /// no trace buffer is configured).
    pub settled_us: u64,
    /// The simulator's cycle-level report for the whole job.
    pub report: Box<soff_sim::ProfileReport>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            device_slots: 2,
            slice_cycles: 50_000,
            global_queue_cap: 64,
            quota: TenantQuota::default(),
            device: Device::system_a(),
            scheduler: Scheduler::default(),
            max_cycles: 500_000_000,
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            cache_dir: None,
            registry: None,
            trace: None,
            profile: None,
            supervision: Supervision::default(),
        }
    }
}

/// Readiness snapshot ([`Server::health`]).
#[derive(Debug, Clone)]
pub struct Health {
    /// The rolled-up verdict.
    pub state: HealthState,
    /// Every contributing cause (empty iff `state == Ok`).
    pub causes: Vec<HealthCause>,
}

/// Rolled-up readiness (`soff_serve_health`: Ok = 0, Degraded = 1,
/// Shedding = 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Fully serving.
    Ok,
    /// Serving with a subsystem impaired (see the causes).
    Degraded,
    /// Deliberately rejecting new work ([`Server::shed`]).
    Shedding,
}

/// One subsystem's contribution to a non-Ok [`Health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthCause {
    /// The operator enabled load shedding.
    Shedding,
    /// The disk compile store is browning out (falling back to memory);
    /// heals on its next successful write.
    StoreDegraded {
        /// The last I/O error observed.
        error: String,
    },
    /// A tenant's circuit breaker is open (traffic shed).
    BreakerOpen {
        /// Tenant name.
        tenant: String,
    },
    /// A tenant's circuit breaker is half-open (probing recovery).
    BreakerHalfOpen {
        /// Tenant name.
        tenant: String,
    },
}

/// Which queue rejected an enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueScope {
    /// The tenant's own queue hit [`TenantQuota::queue_depth`].
    Tenant,
    /// The server-wide queue hit [`ServerConfig::global_queue_cap`].
    Global,
}

/// Which quota a job or enqueue exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// [`TenantQuota::max_in_flight`].
    InFlight,
    /// [`TenantQuota::max_job_cycles`].
    JobCycles,
    /// [`TenantQuota::max_total_cycles`].
    TotalCycles,
    /// [`TenantQuota::max_job_wall`].
    Wall,
}

/// Typed service errors. Overload and faults surface here, per session —
/// never as panics, and never affecting other sessions.
#[derive(Debug)]
pub enum ServeError {
    /// The server is load-shedding: draining in-flight work, rejecting
    /// new work.
    Shedding,
    /// The server (or this session) is shut down / closed.
    Closed,
    /// A bounded queue was full; retry later (backpressure).
    QueueFull {
        /// Which queue.
        scope: QueueScope,
        /// Its configured bound.
        limit: usize,
    },
    /// A per-tenant quota was exceeded.
    QuotaExceeded {
        /// Which quota.
        what: QuotaKind,
        /// Amount consumed when the quota tripped.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Compilation failed.
    Build(BuildError),
    /// The launch was rejected before running (bad geometry, missing or
    /// mismatched arguments, foreign buffer handle).
    Launch(LaunchError),
    /// No kernel with this name in the program.
    UnknownKernel {
        /// The requested name.
        name: String,
    },
    /// The watchdog fired: the job exhausted the server's cycle budget.
    Hung {
        /// Simulated cycle at cut-off.
        cycle: u64,
    },
    /// The simulated hardware faulted (deadlock, invariant violation —
    /// including injected faults).
    Faulted {
        /// Simulated cycle of the fault.
        cycle: u64,
        /// Forensic one-liner.
        what: String,
    },
    /// The job's host code panicked; the panic was contained to this
    /// session.
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// The job was cancelled by its session.
    Cancelled,
    /// The job id is unknown (never existed, or its result was already
    /// consumed by `wait`).
    UnknownJob,
    /// The job failed [`Supervision::quarantine_after`] consecutive
    /// attempts and was quarantined instead of burning further retry
    /// budget. Terminal for the job; the tenant's other jobs are
    /// unaffected.
    Quarantined {
        /// Attempts consumed before quarantine.
        attempts: u32,
        /// The final attempt's failure.
        last: Box<ServeError>,
    },
    /// The tenant's circuit breaker is open: its recent jobs kept
    /// failing, so new work is shed early. Deterministic backpressure —
    /// re-enqueueing drains the breaker's rejection budget toward a
    /// half-open probe.
    CircuitOpen,
    /// [`Session::wait_deadline`] gave up before the job settled. The
    /// job is still in flight and its result still consumable.
    WaitTimeout {
        /// How long the caller waited.
        waited: Duration,
    },
}

impl ServeError {
    /// Stable, low-cardinality class label for metrics (the `class`
    /// label on `soff_serve_rejections_total`). One label per variant —
    /// queue-full and quota variants split by scope/kind, since which
    /// bound trips is exactly what an operator tunes.
    pub fn class(&self) -> &'static str {
        match self {
            ServeError::Shedding => "shedding",
            ServeError::Closed => "closed",
            ServeError::QueueFull { scope: QueueScope::Tenant, .. } => "queue_full_tenant",
            ServeError::QueueFull { scope: QueueScope::Global, .. } => "queue_full_global",
            ServeError::QuotaExceeded { what: QuotaKind::InFlight, .. } => "quota_in_flight",
            ServeError::QuotaExceeded { what: QuotaKind::JobCycles, .. } => "quota_job_cycles",
            ServeError::QuotaExceeded { what: QuotaKind::TotalCycles, .. } => {
                "quota_total_cycles"
            }
            ServeError::QuotaExceeded { what: QuotaKind::Wall, .. } => "quota_wall",
            ServeError::Build(_) => "build",
            ServeError::Launch(_) => "launch",
            ServeError::UnknownKernel { .. } => "unknown_kernel",
            ServeError::Hung { .. } => "hung",
            ServeError::Faulted { .. } => "faulted",
            ServeError::Panicked { .. } => "panicked",
            ServeError::Cancelled => "cancelled",
            ServeError::UnknownJob => "unknown_job",
            ServeError::Quarantined { .. } => "quarantined",
            ServeError::CircuitOpen => "circuit_open",
            ServeError::WaitTimeout { .. } => "wait_timeout",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shedding => f.write_str("server is shedding load; retry later"),
            ServeError::Closed => f.write_str("server or session is closed"),
            ServeError::QueueFull { scope, limit } => {
                let which = match scope {
                    QueueScope::Tenant => "tenant",
                    QueueScope::Global => "global",
                };
                write!(f, "{which} queue full (limit {limit})")
            }
            ServeError::QuotaExceeded { what, used, limit } => {
                write!(f, "quota exceeded: {what:?} used {used} of {limit}")
            }
            ServeError::Build(e) => write!(f, "build failed: {e}"),
            ServeError::Launch(e) => write!(f, "launch rejected: {e}"),
            ServeError::UnknownKernel { name } => write!(f, "no kernel named `{name}`"),
            ServeError::Hung { cycle } => {
                write!(f, "job exceeded its cycle budget at cycle {cycle} (hang watchdog)")
            }
            ServeError::Faulted { cycle, what } => {
                write!(f, "simulated hardware fault at cycle {cycle}: {what}")
            }
            ServeError::Panicked { message } => write!(f, "job panicked: {message}"),
            ServeError::Cancelled => f.write_str("job cancelled"),
            ServeError::UnknownJob => f.write_str("unknown job id"),
            ServeError::Quarantined { attempts, last } => {
                write!(f, "job quarantined after {attempts} failed attempts (last: {last})")
            }
            ServeError::CircuitOpen => {
                f.write_str("tenant circuit breaker open; work shed until a probe succeeds")
            }
            ServeError::WaitTimeout { waited } => {
                write!(f, "wait deadline exceeded after {waited:?} (job still in flight)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BuildError> for ServeError {
    fn from(e: BuildError) -> Self {
        ServeError::Build(e)
    }
}

impl From<LaunchError> for ServeError {
    fn from(e: LaunchError) -> Self {
        ServeError::Launch(e)
    }
}

/// Handle to one enqueued job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId {
    session: u32,
    seq: u64,
}

/// What a completed job reports.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Total simulated cycles (deterministic: identical to a solo run).
    pub cycles: u64,
    /// Work-items retired (deterministic).
    pub retired: u64,
    /// Wall-clock estimate at the device clock (deterministic).
    pub seconds: f64,
    /// Preemption slices the job ran in (scheduling-dependent).
    pub slices: u32,
    /// Execution attempts (1 = no retry).
    pub attempts: u32,
}

/// Per-tenant accounting snapshot.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Session name (as passed to [`Server::connect`]).
    pub name: String,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed (fault, quota, hang, panic).
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Simulated cycles consumed across all slices (including failed
    /// attempts — consumed device time is consumed).
    pub cycles: u64,
    /// Enqueues rejected by queue bounds.
    pub rejected_queue_full: u64,
    /// Enqueues rejected by quotas.
    pub rejected_quota: u64,
    /// Enqueues rejected while shedding.
    pub rejected_shedding: u64,
    /// Admission rejections by [`ServeError::class`]. The legacy
    /// `rejected_*` fields above are coarse sums over this breakdown and
    /// stay in sync with it.
    pub rejections: RejectionBreakdown,
    /// Retry attempts performed for this tenant's jobs.
    pub retries: u64,
    /// Jobs quarantined as poison (a subset of `failed`).
    pub quarantined: u64,
    /// Checkpoint recoveries after a device-slot death (per recovery,
    /// not per job).
    pub slot_recoveries: u64,
}

/// Per-class admission-rejection counts (one field per class the
/// admission path can emit; execution-time failures are not rejections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionBreakdown {
    /// Rejected while load-shedding (`shedding`).
    pub shedding: u64,
    /// Tenant queue bound hit (`queue_full_tenant`).
    pub queue_full_tenant: u64,
    /// Global queue bound hit (`queue_full_global`).
    pub queue_full_global: u64,
    /// In-flight quota hit (`quota_in_flight`).
    pub quota_in_flight: u64,
    /// Total-cycles quota already exhausted (`quota_total_cycles`).
    pub quota_total_cycles: u64,
    /// Shed by the tenant's circuit breaker (`circuit_open`); coarsely
    /// counted under `rejected_shedding` (breaker sheds ARE load
    /// shedding, scoped to one tenant).
    pub circuit_open: u64,
}

impl RejectionBreakdown {
    /// Sum across all classes.
    pub fn total(&self) -> u64 {
        self.shedding
            + self.queue_full_tenant
            + self.queue_full_global
            + self.quota_in_flight
            + self.quota_total_cycles
            + self.circuit_open
    }
}

/// Server-wide accounting snapshot.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Per-tenant rows, in session-id order.
    pub tenants: Vec<TenantStats>,
    /// Execution slices run.
    pub slices: u64,
    /// Slices that ended in preemption (job still unfinished).
    pub preemptions: u64,
}

impl ServerStats {
    /// Max/min ratio of completed jobs across tenants with at least one
    /// admission (the starvation metric; 1.0 = perfectly fair,
    /// `f64::INFINITY` = someone starved).
    pub fn completion_fairness(&self) -> f64 {
        let counts: Vec<u64> = self.tenants.iter().map(|t| t.completed).collect();
        match (counts.iter().max(), counts.iter().min()) {
            (Some(&max), Some(&min)) if max > 0 => {
                if min == 0 {
                    f64::INFINITY
                } else {
                    max as f64 / min as f64
                }
            }
            _ => 1.0,
        }
    }
}

// ------------------------------------------------------------------ jobs

/// A job's mutable execution state, owned by the scheduler.
struct Job {
    kernel: KernelHandle,
    args: Vec<soff_ir::mem::ArgValue>,
    nd: NdRange,
    /// Checkpoint from the last preempted slice (`None` before the first
    /// slice or after a retry reset).
    snapshot: Option<Box<Snapshot>>,
    /// Simulated cycles completed so far (= snapshot cycle).
    cycles_done: u64,
    /// Host wall time consumed across slices.
    wall_used: Duration,
    slices: u32,
    attempts: u32,
    cancel: CancelToken,
    /// Injected hardware faults for this job (cleared on retry: injected
    /// faults model transient events).
    faults: FaultPlan,
    /// Test hook: remaining slices that panic (decremented per retry, so
    /// `n > 1` models a *poison* job that defeats transient-fault retry).
    panics_left: u32,
    /// Whether this job is the half-open breaker's probe.
    probe: bool,
    /// Device-slot deaths this job already recovered from.
    slot_recoveries: u32,
    /// Earliest dispatch time (retry backoff).
    not_before: Option<Instant>,
    /// Device memory as it was before the job's first slice, for
    /// containment rollback on failure/retry. Taken lazily at first
    /// dispatch.
    gm_backup: Option<soff_ir::mem::GlobalMemory>,
    /// Profiler config when this job was sampled for profiling. Decided
    /// once at admission and constant for the job's life: slice snapshots
    /// fingerprint the profiling decision, so flipping it mid-job would
    /// invalidate resume.
    profile: Option<soff_sim::ProfileConfig>,
    /// When the job last entered a queue (admission or requeue), for the
    /// queue-wait histogram.
    queued_at: Instant,
}

enum JobState {
    Queued(Box<Job>),
    Running,
    Done(Result<JobOutput, ServeError>),
}

struct Tenant {
    /// `None` while a worker executes a slice for this tenant (the
    /// worker owns the context — and with it the device memory — for the
    /// slice's duration).
    ctx: Option<Context>,
    quota: TenantQuota,
    /// Pending job ids, front = next to run. In-order: only the front
    /// job ever runs, so one tenant occupies at most one device slot.
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    next_seq: u64,
    on_worker: bool,
    closed: bool,
    /// Cancel token of the job currently on a worker, so `cancel` can
    /// interrupt a running slice without waiting for its deadline.
    running_cancel: Option<CancelToken>,
    /// Faults to attach to the next enqueue (test hook).
    pending_faults: FaultPlan,
    /// Panicking attempts to attach to the next enqueue (test hook).
    pending_panics: u32,
    /// This tenant's circuit breaker (disabled under the default
    /// [`Supervision`]).
    breaker: Breaker,
    stats: TenantStats,
    obs: TenantObs,
}

/// Per-tenant observability handles, registered once at connect.
struct TenantObs {
    /// Tenant name as a shared label (also the span tenant tag).
    label: Arc<str>,
    /// `soff_serve_queue_wait_us{tenant}`: µs a job waited in queue
    /// before each dispatch (one sample per dispatch, including
    /// re-dispatch after preemption/retry).
    queue_wait_us: Histogram,
    /// `soff_serve_slice_us{tenant}`: host wall µs per execution slice.
    slice_us: Histogram,
    /// `soff_serve_breaker_state{tenant}`: 0 closed, 1 half-open, 2 open.
    breaker_state: Gauge,
}

impl Tenant {
    fn in_flight(&self) -> usize {
        self.jobs
            .values()
            .filter(|s| matches!(s, JobState::Queued(_) | JobState::Running))
            .count()
    }
}

struct State {
    tenants: HashMap<u32, Tenant>,
    session_order: Vec<u32>,
    next_session: u32,
    /// Jobs queued across all tenants (admission bound).
    global_queued: usize,
    shedding: bool,
    shutdown: bool,
    slices: u64,
    preemptions: u64,
    /// Retained sampled-profiling reports (bounded by
    /// [`ProfileSampling::max_reports`]; overflow counted in `profiles_dropped`).
    profiles: Vec<JobProfile>,
    profiles_dropped: u64,
    /// Global slice indices at which a device slot dies mid-slice (chaos
    /// hook, consumed as they trigger).
    slot_kills: std::collections::HashSet<u64>,
}

struct Inner {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Signalled when a job may be runnable (workers wait here).
    work_ready: Condvar,
    /// Signalled on any job completion / queue drain / context return
    /// (clients wait here).
    progress: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
    obs: ServeObs,
}

/// Server-wide observability handles, registered once at startup.
struct ServeObs {
    /// `None` → the process-global registry (resolved via
    /// [`ServeObs::registry`]; per-tenant and per-class series are
    /// registered lazily against the same resolution).
    registry: Option<Arc<Registry>>,
    trace: Option<Arc<TraceBuf>>,
    /// `soff_serve_slices_total`: execution slices run.
    slices: Counter,
    /// `soff_serve_preemptions_total`: slices ending in preemption.
    preemptions: Counter,
    /// `soff_serve_queue_depth`: jobs admitted and not yet settled
    /// (queued + running), across all tenants.
    queue_depth: Gauge,
    /// `soff_serve_completion_fairness`: live max/min completed-jobs
    /// ratio (see [`ServerStats::completion_fairness`]), recomputed at
    /// every job completion.
    fairness: Gauge,
    /// `soff_serve_health`: 0 ok, 1 degraded, 2 shedding (set on every
    /// [`Server::health`] call).
    health: Gauge,
}

impl ServeObs {
    fn new(registry: Option<Arc<Registry>>, trace: Option<Arc<TraceBuf>>) -> ServeObs {
        let r = match &registry {
            Some(r) => r.as_ref(),
            None => soff_obs::global(),
        };
        let slices = r.counter("soff_serve_slices_total", &[]);
        let preemptions = r.counter("soff_serve_preemptions_total", &[]);
        let queue_depth = r.gauge("soff_serve_queue_depth", &[]);
        let fairness = r.gauge("soff_serve_completion_fairness", &[]);
        let health = r.gauge("soff_serve_health", &[]);
        ServeObs { registry, trace, slices, preemptions, queue_depth, fairness, health }
    }

    fn registry(&self) -> &Registry {
        match &self.registry {
            Some(r) => r.as_ref(),
            None => soff_obs::global(),
        }
    }

    /// Lazily-registered per-tenant/per-class rejection counter. Lookup
    /// takes the registry mutex, which is fine on the rejection path —
    /// rejections are the rare case, and the handle cache inside the
    /// registry makes repeat lookups a map probe.
    fn rejection(&self, tenant: &str, class: &'static str) -> Counter {
        self.registry()
            .counter("soff_serve_rejections_total", &[("tenant", tenant), ("class", class)])
    }

    /// Lazily-registered per-tenant/per-outcome job counter.
    fn job_outcome(&self, tenant: &str, outcome: &'static str) -> Counter {
        self.registry()
            .counter("soff_serve_jobs_total", &[("tenant", tenant), ("outcome", outcome)])
    }

    /// Lazily-registered per-kind recovery counter. Kinds: `retry`
    /// (failed attempt retried), `slot` (checkpoint re-admit after a
    /// slot death), `breaker` (a breaker re-closed).
    fn recovery(&self, kind: &'static str) -> Counter {
        self.registry().counter("soff_serve_recoveries_total", &[("kind", kind)])
    }

    /// Lazily-registered per-tenant quarantine counter.
    fn quarantine(&self, tenant: &str) -> Counter {
        self.registry().counter("soff_serve_quarantines_total", &[("tenant", tenant)])
    }
}

/// How a slice ended (computed off-lock by a worker).
enum SliceOutcome {
    Done(soff_sim::SimResult),
    Preempted {
        cycle: u64,
        snapshot: Box<Snapshot>,
    },
    Cancelled {
        cycle: u64,
    },
    Failed {
        error: ServeError,
        /// Cycle the failure was observed at (None: unknown, e.g. panic).
        cycle: Option<u64>,
        retryable: bool,
    },
    /// The device slot died mid-slice (chaos hook): whatever the slice
    /// produced is lost and the job re-admits from its last checkpoint.
    SlotDied,
}

// ---------------------------------------------------------------- server

/// The multi-tenant service. Dropping it shuts down: stops admitting,
/// drains queued work, joins the workers.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Starts a server: spawns `device_slots` workers and, if configured,
    /// attaches the on-disk compile store.
    ///
    /// `device_slots == 0` is a valid "admission-only" configuration:
    /// jobs are validated and queued but never dispatched, which is how
    /// the admission-control tests pin queue occupancy deterministically.
    ///
    /// # Errors
    ///
    /// I/O errors creating the cache directory.
    pub fn new(cfg: ServerConfig) -> io::Result<Server> {
        if let Some(dir) = &cfg.cache_dir {
            soff_runtime::cache::set_disk_store(Some(dir))?;
        }
        let slots = cfg.device_slots;
        let obs = ServeObs::new(cfg.registry.clone(), cfg.trace.clone());
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State {
                tenants: HashMap::new(),
                session_order: Vec::new(),
                next_session: 0,
                global_queued: 0,
                shedding: false,
                shutdown: false,
                slices: 0,
                preemptions: 0,
                profiles: Vec::new(),
                profiles_dropped: 0,
                slot_kills: std::collections::HashSet::new(),
            }),
            work_ready: Condvar::new(),
            progress: Condvar::new(),
            workers: Mutex::new(Vec::new()),
            obs,
        });
        let mut handles = Vec::with_capacity(slots);
        for slot in 0..slots {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("soff-serve-slot-{slot}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn device-slot worker"),
            );
        }
        *inner.workers.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        Ok(Server { inner })
    }

    /// Opens a client session with the default quota.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shedding`] / [`ServeError::Closed`] under overload
    /// or shutdown.
    pub fn connect(&self, name: &str) -> Result<Session, ServeError> {
        let quota = self.inner.cfg.quota.clone();
        self.connect_with_quota(name, quota)
    }

    /// Opens a client session with an explicit quota.
    ///
    /// # Errors
    ///
    /// See [`Server::connect`].
    pub fn connect_with_quota(
        &self,
        name: &str,
        quota: TenantQuota,
    ) -> Result<Session, ServeError> {
        let mut st = lock(&self.inner.state);
        if st.shutdown {
            return Err(ServeError::Closed);
        }
        if st.shedding {
            return Err(ServeError::Shedding);
        }
        let id = st.next_session;
        st.next_session += 1;
        let obs = TenantObs {
            label: Arc::from(name),
            queue_wait_us: self
                .inner
                .obs
                .registry()
                .histogram("soff_serve_queue_wait_us", &[("tenant", name)]),
            slice_us: self
                .inner
                .obs
                .registry()
                .histogram("soff_serve_slice_us", &[("tenant", name)]),
            breaker_state: self
                .inner
                .obs
                .registry()
                .gauge("soff_serve_breaker_state", &[("tenant", name)]),
        };
        st.tenants.insert(
            id,
            Tenant {
                ctx: Some(Context::new(self.inner.cfg.device.clone())),
                quota,
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                next_seq: 0,
                on_worker: false,
                closed: false,
                running_cancel: None,
                pending_faults: FaultPlan::none(),
                pending_panics: 0,
                breaker: Breaker::new(self.inner.cfg.supervision.breaker),
                stats: TenantStats { name: name.to_string(), ..TenantStats::default() },
                obs,
            },
        );
        st.session_order.push(id);
        Ok(Session { inner: Arc::clone(&self.inner), id })
    }

    /// Enters load-shedding: new sessions and new jobs are rejected with
    /// [`ServeError::Shedding`]; everything in flight drains normally.
    pub fn shed(&self) {
        lock(&self.inner.state).shedding = true;
    }

    /// Leaves load-shedding.
    pub fn resume(&self) {
        lock(&self.inner.state).shedding = false;
    }

    /// Readiness snapshot: [`HealthState::Ok`] when nothing is wrong,
    /// [`HealthState::Degraded`] when a subsystem is impaired but the
    /// server still serves (store brownout, a tenant breaker open or
    /// probing), [`HealthState::Shedding`] under explicit load-shedding.
    /// Each call also publishes the state to the `soff_serve_health`
    /// gauge (0/1/2).
    pub fn health(&self) -> Health {
        let st = lock(&self.inner.state);
        let mut causes = Vec::new();
        if st.shedding {
            causes.push(HealthCause::Shedding);
        }
        if self.inner.cfg.cache_dir.is_some() {
            if let Some(error) = soff_runtime::cache::disk_health() {
                causes.push(HealthCause::StoreDegraded { error });
            }
        }
        for id in &st.session_order {
            let Some(t) = st.tenants.get(id) else { continue };
            match t.breaker.state() {
                BreakerState::Closed => {}
                BreakerState::Open => {
                    causes.push(HealthCause::BreakerOpen { tenant: t.stats.name.clone() });
                }
                BreakerState::HalfOpen => {
                    causes.push(HealthCause::BreakerHalfOpen { tenant: t.stats.name.clone() });
                }
            }
        }
        let state = if st.shedding {
            HealthState::Shedding
        } else if causes.is_empty() {
            HealthState::Ok
        } else {
            HealthState::Degraded
        };
        self.inner.obs.health.set(match state {
            HealthState::Ok => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Shedding => 2.0,
        });
        Health { state, causes }
    }

    /// Chaos hook: the listed *global* slice indices (the server-wide
    /// slice counter, visible as [`ServerStats::slices`]) die mid-slice —
    /// the slice's work is lost and the victim job re-admits from its
    /// last checkpoint.
    #[doc(hidden)]
    pub fn inject_slot_deaths(&self, slices: &[u64]) {
        let mut st = lock(&self.inner.state);
        st.slot_kills.extend(slices.iter().copied());
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> ServerStats {
        let st = lock(&self.inner.state);
        ServerStats {
            tenants: st
                .session_order
                .iter()
                .filter_map(|id| st.tenants.get(id))
                .map(|t| t.stats.clone())
                .collect(),
            slices: st.slices,
            preemptions: st.preemptions,
        }
    }

    /// Drains the retained sampled-profiling reports collected so far
    /// (oldest first). Empty unless [`ServerConfig::profile`] is set.
    /// Also returns how many reports were dropped to the
    /// [`ProfileSampling::max_reports`] bound since the last call.
    pub fn take_profiles(&self) -> (Vec<JobProfile>, u64) {
        let mut st = lock(&self.inner.state);
        let dropped = std::mem::take(&mut st.profiles_dropped);
        (std::mem::take(&mut st.profiles), dropped)
    }

    /// Stops admitting, drains every queued job, and joins the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.work_ready.notify_all();
            self.inner.progress.notify_all();
        }
        let handles = std::mem::take(&mut *self.inner.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock<'a>(m: &'a Mutex<State>) -> MutexGuard<'a, State> {
    // Worker slices run under `catch_unwind`, and state transitions never
    // hold the lock across user code, so a poisoned lock only means a
    // panicking *accounting* bug; recovering keeps unrelated tenants
    // alive, which is the containment contract.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// --------------------------------------------------------------- session

/// One tenant's connection: its own contexts/buffers/queue. All methods
/// are `&self`; a session can be shared across the tenant's threads.
pub struct Session {
    inner: Arc<Inner>,
    id: u32,
}

impl Session {
    /// The session's tenant name.
    pub fn server_session_id(&self) -> u32 {
        self.id
    }

    /// Runs `f` on this tenant's context once it is resident (not on a
    /// worker) and, if `drained` is set, once the job queue is empty —
    /// the OpenCL in-order-queue semantics for buffer reads/writes.
    fn with_ctx<T>(
        &self,
        drained: bool,
        f: impl FnOnce(&mut Context) -> T,
    ) -> Result<T, ServeError> {
        let mut st = lock(&self.inner.state);
        loop {
            let tenant = st.tenants.get_mut(&self.id).ok_or(ServeError::Closed)?;
            let ready = tenant.ctx.is_some() && (!drained || tenant.queue.is_empty());
            if ready {
                let ctx = tenant.ctx.as_mut().expect("checked resident");
                return Ok(f(ctx));
            }
            if st.shutdown
                && self.inner.workers.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
            {
                // Workers have exited: residency can no longer change, so
                // waiting would hang forever.
                return Err(ServeError::Closed);
            }
            st = self.inner.progress.wait(st).expect("progress condvar");
        }
    }

    /// Allocates a device buffer of `size` bytes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] after close/shutdown.
    pub fn create_buffer(&self, size: usize) -> Result<Buffer, ServeError> {
        self.with_ctx(false, |ctx| ctx.create_buffer(size))
    }

    /// Writes bytes to a buffer, after all previously enqueued jobs
    /// complete (in-order queue semantics).
    ///
    /// # Errors
    ///
    /// [`ServeError::Launch`] wrapping the API error for foreign handles
    /// or overruns.
    pub fn write_buffer(&self, b: Buffer, data: &[u8]) -> Result<(), ServeError> {
        self.with_ctx(true, |ctx| ctx.write_buffer(b, data))?
            .map_err(|e| ServeError::Launch(e.into()))
    }

    /// Reads a buffer back, after all previously enqueued jobs complete.
    ///
    /// # Errors
    ///
    /// See [`Session::write_buffer`].
    pub fn read_buffer(&self, b: Buffer) -> Result<Vec<u8>, ServeError> {
        self.with_ctx(true, |ctx| ctx.read_buffer(b))?
            .map_err(|e| ServeError::Launch(e.into()))
    }

    /// Compiles a program on the calling thread. Compiles are shared:
    /// identical sources hit the process-wide cache, and with a cache
    /// directory configured they are served from / persisted to disk.
    ///
    /// # Errors
    ///
    /// [`ServeError::Build`], [`ServeError::Shedding`],
    /// [`ServeError::Closed`].
    pub fn build_program(
        &self,
        source: &str,
        defines: &[(String, String)],
    ) -> Result<Program, ServeError> {
        {
            let st = lock(&self.inner.state);
            if st.shutdown || st.tenants.get(&self.id).is_none_or(|t| t.closed) {
                return Err(ServeError::Closed);
            }
            if st.shedding {
                return Err(ServeError::Shedding);
            }
        }
        Ok(Program::build(source, defines, &self.inner.cfg.device)?)
    }

    /// A kernel handle by name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownKernel`].
    pub fn kernel(&self, program: &Program, name: &str) -> Result<KernelHandle, ServeError> {
        program.kernel(name).ok_or_else(|| ServeError::UnknownKernel { name: name.to_string() })
    }

    /// Admits a launch: validates it, applies admission control, and
    /// queues it. Returns immediately; pair with [`Session::wait`].
    ///
    /// # Errors
    ///
    /// Admission: [`ServeError::Shedding`], [`ServeError::QueueFull`],
    /// [`ServeError::QuotaExceeded`], [`ServeError::Closed`].
    /// Validation: [`ServeError::Launch`].
    pub fn enqueue(&self, kernel: &KernelHandle, nd: NdRange) -> Result<JobId, ServeError> {
        // Validation needs the tenant's context (buffer ownership), which
        // may briefly be on a worker; waiting for residency (not drain)
        // keeps admission latency bounded by one slice.
        let mut st = lock(&self.inner.state);
        loop {
            {
                let global_cap = self.inner.cfg.global_queue_cap;
                let global_queued = st.global_queued;
                let shedding = st.shedding;
                let shutdown = st.shutdown;
                let tenant = st.tenants.get_mut(&self.id).ok_or(ServeError::Closed)?;
                if shutdown || tenant.closed {
                    return Err(ServeError::Closed);
                }
                // Admission control order: shed, global bound, tenant
                // bound, quotas — cheapest and most systemic first.
                // Every rejection bumps the legacy coarse stat, the
                // per-class breakdown, and the labeled registry counter;
                // `reject()` keeps the three in lockstep.
                let obs = &self.inner.obs;
                let tenant_session = self.id as u64;
                let reject = |tenant: &mut Tenant, err: ServeError| {
                    let b = &mut tenant.stats.rejections;
                    match err.class() {
                        "shedding" => {
                            b.shedding += 1;
                            tenant.stats.rejected_shedding += 1;
                        }
                        "queue_full_tenant" => {
                            b.queue_full_tenant += 1;
                            tenant.stats.rejected_queue_full += 1;
                        }
                        "queue_full_global" => {
                            b.queue_full_global += 1;
                            tenant.stats.rejected_queue_full += 1;
                        }
                        "quota_in_flight" => {
                            b.quota_in_flight += 1;
                            tenant.stats.rejected_quota += 1;
                        }
                        "circuit_open" => {
                            b.circuit_open += 1;
                            tenant.stats.rejected_shedding += 1;
                        }
                        _ => {
                            b.quota_total_cycles += 1;
                            tenant.stats.rejected_quota += 1;
                        }
                    }
                    obs.rejection(&tenant.stats.name, err.class()).inc();
                    if let Some(tr) = &obs.trace {
                        let corr = CorrId { session: tenant_session, seq: tenant.next_seq };
                        tr.instant("reject", corr, &tenant.obs.label, 0);
                    }
                    Err(err)
                };
                if shedding {
                    return reject(tenant, ServeError::Shedding);
                }
                // The breaker sheds before any queue bookkeeping: open
                // means this tenant's recent jobs keep failing, and the
                // cheapest thing to do with more of them is nothing.
                let (admit, _half_opened) = tenant.breaker.admit();
                tenant.obs.breaker_state.set(tenant.breaker.gauge_value());
                if !admit {
                    return reject(tenant, ServeError::CircuitOpen);
                }
                if global_queued >= global_cap {
                    return reject(
                        tenant,
                        ServeError::QueueFull { scope: QueueScope::Global, limit: global_cap },
                    );
                }
                if tenant.queue.len() >= tenant.quota.queue_depth {
                    return reject(
                        tenant,
                        ServeError::QueueFull {
                            scope: QueueScope::Tenant,
                            limit: tenant.quota.queue_depth,
                        },
                    );
                }
                if tenant.in_flight() >= tenant.quota.max_in_flight {
                    let used = tenant.in_flight() as u64;
                    let limit = tenant.quota.max_in_flight as u64;
                    return reject(
                        tenant,
                        ServeError::QuotaExceeded { what: QuotaKind::InFlight, used, limit },
                    );
                }
                if let Some(total) = tenant.quota.max_total_cycles {
                    if tenant.stats.cycles >= total {
                        let used = tenant.stats.cycles;
                        return reject(
                            tenant,
                            ServeError::QuotaExceeded {
                                what: QuotaKind::TotalCycles,
                                used,
                                limit: total,
                            },
                        );
                    }
                }
                if let Some(ctx) = tenant.ctx.as_ref() {
                    let args = ctx.prepare_launch(kernel, nd)?;
                    let seq = tenant.next_seq;
                    tenant.next_seq += 1;
                    // Fully admitted: only now may the job consume the
                    // half-open breaker's probe slot (a breaker-allowed
                    // request that a quota later rejects must not wedge
                    // the probe).
                    let probe = tenant.breaker.on_admitted();
                    // The profiling decision is fixed here for the job's
                    // whole life: slice snapshots fingerprint it, so it
                    // must not change between slices.
                    let profile = self.inner.cfg.profile.as_ref().and_then(|ps| {
                        (seq % ps.every.max(1) == 0).then_some(ps.config)
                    });
                    let job = Job {
                        kernel: kernel.clone(),
                        args,
                        nd,
                        snapshot: None,
                        cycles_done: 0,
                        wall_used: Duration::ZERO,
                        slices: 0,
                        attempts: 0,
                        cancel: CancelToken::new(),
                        faults: std::mem::take(&mut tenant.pending_faults),
                        panics_left: std::mem::take(&mut tenant.pending_panics),
                        probe,
                        slot_recoveries: 0,
                        not_before: None,
                        gm_backup: None,
                        profile,
                        queued_at: Instant::now(),
                    };
                    tenant.jobs.insert(seq, JobState::Queued(Box::new(job)));
                    tenant.queue.push_back(seq);
                    st.global_queued += 1;
                    self.inner.obs.queue_depth.set(st.global_queued as f64);
                    if let Some(tr) = &self.inner.obs.trace {
                        let tenant = st.tenants.get(&self.id).expect("tenant checked above");
                        let corr = CorrId { session: tenant_session, seq };
                        tr.instant("admit", corr, &tenant.obs.label, 0);
                        tr.begin("queue", corr, &tenant.obs.label, 0);
                    }
                    self.inner.work_ready.notify_one();
                    return Ok(JobId { session: self.id, seq });
                }
            }
            // Context on a worker: wait for it to come home and re-run
            // admission from the top (conditions may have changed).
            st = self.inner.progress.wait(st).expect("progress condvar");
        }
    }

    /// Requests cancellation of a job: a queued job completes immediately
    /// as [`ServeError::Cancelled`]; a running job stops at the
    /// simulator's next poll point. Returns whether the job was still in
    /// flight.
    pub fn cancel(&self, job: JobId) -> bool {
        if job.session != self.id {
            return false;
        }
        let mut st = lock(&self.inner.state);
        let state = &mut *st;
        let Some(tenant) = state.tenants.get_mut(&self.id) else { return false };
        match tenant.jobs.get_mut(&job.seq) {
            Some(slot @ JobState::Queued(_)) => {
                let probe = match &*slot {
                    JobState::Queued(j) => j.probe,
                    _ => false,
                };
                *slot = JobState::Done(Err(ServeError::Cancelled));
                tenant.queue.retain(|&s| s != job.seq);
                tenant.stats.cancelled += 1;
                // A cancelled probe proves nothing; return its slot so
                // the next admission can probe instead.
                tenant.breaker.on_abandoned(probe);
                tenant.obs.breaker_state.set(tenant.breaker.gauge_value());
                state.global_queued -= 1;
                let obs = &self.inner.obs;
                obs.queue_depth.set(state.global_queued as f64);
                obs.job_outcome(&tenant.stats.name, "cancelled").inc();
                if let Some(tr) = &obs.trace {
                    // Close the admission-time "queue" span: the job
                    // leaves the queue here, not at a dispatch.
                    let corr = CorrId { session: self.id as u64, seq: job.seq };
                    tr.end("queue", corr, &tenant.obs.label, 0);
                    tr.instant("cancel", corr, &tenant.obs.label, 0);
                }
                self.inner.progress.notify_all();
                true
            }
            Some(JobState::Running) => {
                // The token was cloned into the running slice's
                // RunControl, so cancelling the tenant-side clone stops
                // the simulator at its next poll point.
                if let Some(tok) = tenant.running_cancel.as_ref() {
                    tok.cancel();
                }
                true
            }
            _ => false,
        }
    }

    /// Blocks until `job` completes and consumes its result.
    ///
    /// # Errors
    ///
    /// The job's own failure, or [`ServeError::UnknownJob`] for a
    /// foreign/consumed id.
    pub fn wait(&self, job: JobId) -> Result<JobOutput, ServeError> {
        if job.session != self.id {
            return Err(ServeError::UnknownJob);
        }
        let mut st = lock(&self.inner.state);
        loop {
            let tenant = st.tenants.get_mut(&self.id).ok_or(ServeError::Closed)?;
            match tenant.jobs.get(&job.seq) {
                None => return Err(ServeError::UnknownJob),
                Some(JobState::Done(_)) => {
                    let Some(JobState::Done(result)) = tenant.jobs.remove(&job.seq) else {
                        unreachable!("checked Done above")
                    };
                    return result;
                }
                Some(_) => {
                    st = self.inner.progress.wait(st).expect("progress condvar");
                }
            }
        }
    }

    /// Like [`Session::wait`], but gives up after `wall_budget` of host
    /// wall time with [`ServeError::WaitTimeout`] — *without* consuming
    /// the job, which keeps running (or queued). The caller decides what
    /// a stall means: re-wait, [`Session::cancel`], or escalate.
    ///
    /// # Errors
    ///
    /// [`ServeError::WaitTimeout`] on deadline expiry; otherwise as
    /// [`Session::wait`].
    pub fn wait_deadline(
        &self,
        job: JobId,
        wall_budget: Duration,
    ) -> Result<JobOutput, ServeError> {
        if job.session != self.id {
            return Err(ServeError::UnknownJob);
        }
        let started = Instant::now();
        let deadline = started + wall_budget;
        let mut st = lock(&self.inner.state);
        loop {
            let tenant = st.tenants.get_mut(&self.id).ok_or(ServeError::Closed)?;
            match tenant.jobs.get(&job.seq) {
                None => return Err(ServeError::UnknownJob),
                Some(JobState::Done(_)) => {
                    let Some(JobState::Done(result)) = tenant.jobs.remove(&job.seq) else {
                        unreachable!("checked Done above")
                    };
                    return result;
                }
                Some(_) => {
                    let now = Instant::now();
                    let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                    else {
                        return Err(ServeError::WaitTimeout { waited: started.elapsed() });
                    };
                    let (guard, _timeout) = self
                        .inner
                        .progress
                        .wait_timeout(st, left)
                        .expect("progress condvar");
                    st = guard;
                }
            }
        }
    }

    /// Blocks until every job this session enqueued has completed.
    pub fn drain(&self) {
        let mut st = lock(&self.inner.state);
        loop {
            match st.tenants.get(&self.id) {
                None => return,
                Some(t) if t.queue.is_empty() && !t.on_worker => return,
                Some(_) => st = self.inner.progress.wait(st).expect("progress condvar"),
            }
        }
    }

    /// This tenant's accounting snapshot.
    pub fn stats(&self) -> TenantStats {
        let st = lock(&self.inner.state);
        st.tenants.get(&self.id).map(|t| t.stats.clone()).unwrap_or_default()
    }

    /// Closes the session: new enqueues are rejected; in-flight work
    /// drains.
    pub fn close(&self) {
        let mut st = lock(&self.inner.state);
        if let Some(t) = st.tenants.get_mut(&self.id) {
            t.closed = true;
        }
    }

    /// Test hook: attach an injected-fault plan to the next enqueue.
    #[doc(hidden)]
    pub fn inject_faults_next(&self, plan: FaultPlan) {
        let mut st = lock(&self.inner.state);
        if let Some(t) = st.tenants.get_mut(&self.id) {
            t.pending_faults = plan;
        }
    }

    /// Test hook: make the next enqueued job panic inside its slice.
    #[doc(hidden)]
    pub fn inject_panic_next(&self) {
        self.inject_sticky_panics_next(1);
    }

    /// Test hook: make the next enqueued job panic on its next `n`
    /// attempts — `n >=` the retry budget models a poison job that only
    /// quarantine can stop.
    #[doc(hidden)]
    pub fn inject_sticky_panics_next(&self, n: u32) {
        let mut st = lock(&self.inner.state);
        if let Some(t) = st.tenants.get_mut(&self.id) {
            t.pending_panics = n;
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

// --------------------------------------------------------------- workers

fn worker_loop(inner: &Inner) {
    let mut st = lock(&inner.state);
    loop {
        let now = Instant::now();
        match pick_tenant(&st, now) {
            Some(sid) => {
                let tenant = st.tenants.get_mut(&sid).expect("picked tenant exists");
                let seq = tenant.queue.pop_front().expect("picked tenant has work");
                let slot = tenant.jobs.get_mut(&seq).expect("queued job exists");
                let JobState::Queued(mut job) = std::mem::replace(slot, JobState::Running)
                else {
                    unreachable!("queued id maps to Queued state")
                };
                tenant.on_worker = true;
                tenant.running_cancel = Some(job.cancel.clone());
                let corr = CorrId { session: sid as u64, seq };
                let wait_us = job.queued_at.elapsed().as_micros() as u64;
                tenant.obs.queue_wait_us.record(wait_us);
                if let Some(tr) = &inner.obs.trace {
                    tr.end("queue", corr, &tenant.obs.label, wait_us);
                    tr.begin("slice", corr, &tenant.obs.label, job.cycles_done);
                }
                let mut ctx = tenant.ctx.take().expect("ctx resident when not on worker");
                let slice_idx = st.slices;
                let doomed = st.slot_kills.remove(&slice_idx);
                st.slices += 1;
                inner.obs.slices.inc();
                drop(st);

                let slice_started = Instant::now();
                let outcome = run_slice(&inner.cfg, &mut ctx, &mut job, doomed);
                let slice_us = slice_started.elapsed().as_micros() as u64;

                st = lock(&inner.state);
                settle(inner, &mut st, sid, seq, job, ctx, outcome, slice_us);
            }
            None => {
                let all_drained = st.global_queued == 0
                    && st.tenants.values().all(|t| !t.on_worker);
                if st.shutdown && all_drained {
                    inner.work_ready.notify_all();
                    return;
                }
                // Wake early if a backoff deadline is the next event.
                let wake = st
                    .tenants
                    .values()
                    .filter(|t| !t.on_worker && t.ctx.is_some())
                    .filter_map(|t| {
                        let front = t.queue.front()?;
                        match t.jobs.get(front) {
                            Some(JobState::Queued(j)) => j.not_before,
                            _ => None,
                        }
                    })
                    .min();
                st = match wake {
                    Some(at) => {
                        let timeout = at.saturating_duration_since(now).max(Duration::from_millis(1));
                        inner.work_ready.wait_timeout(st, timeout).expect("work condvar").0
                    }
                    None => inner.work_ready.wait(st).expect("work condvar"),
                };
            }
        }
    }
}

/// Least-attained-service pick: among tenants with a dispatchable front
/// job, the one with the fewest consumed cycles (ties: lowest session
/// id, so the choice is deterministic given equal accounting).
fn pick_tenant(st: &State, now: Instant) -> Option<u32> {
    let mut best: Option<(u64, u32)> = None;
    for (&sid, t) in &st.tenants {
        if t.on_worker || t.ctx.is_none() {
            continue;
        }
        let Some(front) = t.queue.front() else { continue };
        let Some(JobState::Queued(job)) = t.jobs.get(front) else { continue };
        if job.not_before.is_some_and(|at| at > now) {
            continue;
        }
        let rank = (t.stats.cycles, sid);
        if best.is_none_or(|b| rank < b) {
            best = Some(rank);
        }
    }
    best.map(|(_, sid)| sid)
}

/// Executes one slice of `job` against the tenant's context, entirely
/// outside the state lock. A `doomed` slice models a device slot dying
/// mid-slice: it runs (and mutates memory) like any slice, then its
/// result is thrown away and [`SliceOutcome::SlotDied`] is reported.
fn run_slice(cfg: &ServerConfig, ctx: &mut Context, job: &mut Job, doomed: bool) -> SliceOutcome {
    let started = Instant::now();
    let ck: &CompiledKernel = job.kernel.compiled();
    let mut sim_cfg = ctx.launch_config(ck);
    sim_cfg.max_cycles = cfg.max_cycles;
    sim_cfg.faults = job.faults.clone();
    // Fixed at admission (snapshots fingerprint the profiling decision);
    // the profiler is observational, so cycle counts are unaffected.
    sim_cfg.profile = job.profile;
    // The configured backend. Snapshot fingerprints exclude the
    // scheduler knob, so a job's slices may even run under different
    // backends (e.g. a config change between restarts) bit-identically.
    sim_cfg.scheduler = cfg.scheduler;
    let slice_end = if doomed {
        // The slot dies halfway through: partial progress that the
        // SlotDied settle path must fully discard.
        job.cycles_done + (cfg.slice_cycles / 2).max(1)
    } else {
        job.cycles_done + cfg.slice_cycles.max(1)
    };
    let mut ctl = RunControl::unlimited();
    ctl.cycle_deadline = Some(slice_end);
    ctl.cancel = Some(job.cancel.clone());

    if job.gm_backup.is_none() {
        // First dispatch: capture the pre-launch memory image for
        // containment rollback. In-order queues guarantee nothing else
        // writes this tenant's memory until the job settles.
        job.gm_backup = Some(ctx.global_memory_mut().clone());
    }

    let sabotage = job.panics_left > 0;
    let gm = ctx.global_memory_mut();
    let run = catch_unwind(AssertUnwindSafe(|| {
        if sabotage {
            panic!("injected tenant panic (test hook)");
        }
        let mut machine =
            soff_sim::Machine::new(&ck.kernel, &ck.datapath, &sim_cfg, job.nd, &job.args)?;
        if let Some(snap) = &job.snapshot {
            machine.restore(snap, gm)?;
        }
        machine.run_with(gm, &ctl)
    }));
    job.wall_used += started.elapsed();
    job.slices += 1;

    if doomed {
        return SliceOutcome::SlotDied;
    }

    match run {
        Err(payload) => SliceOutcome::Failed {
            error: ServeError::Panicked { message: soff_exec::panic_message(payload.as_ref()) },
            cycle: None,
            retryable: true,
        },
        Ok(Ok(sim)) => SliceOutcome::Done(sim),
        Ok(Err(SimError::DeadlineExceeded { cycle, snapshot })) => {
            SliceOutcome::Preempted { cycle, snapshot }
        }
        Ok(Err(SimError::Cancelled { cycle, .. })) => SliceOutcome::Cancelled { cycle },
        Ok(Err(SimError::Timeout { cycle, .. })) => SliceOutcome::Failed {
            error: ServeError::Hung { cycle },
            cycle: Some(cycle),
            retryable: true,
        },
        Ok(Err(SimError::Deadlock { cycle, report })) => SliceOutcome::Failed {
            error: ServeError::Faulted { cycle, what: report.summary() },
            cycle: Some(cycle),
            retryable: true,
        },
        Ok(Err(SimError::InvariantViolation { cycle, what })) => SliceOutcome::Failed {
            error: ServeError::Faulted { cycle, what },
            cycle: Some(cycle),
            retryable: true,
        },
        Ok(Err(e @ (SimError::Config(_) | SimError::Args(_)))) => SliceOutcome::Failed {
            error: ServeError::Launch(LaunchError::Sim(e)),
            cycle: Some(0),
            retryable: false,
        },
    }
}

/// Folds a slice outcome back into the shared state: accounting, quota
/// checks, retry/rollback, completion, and wakeups.
#[allow(clippy::too_many_arguments)]
fn settle(
    inner: &Inner,
    st: &mut MutexGuard<'_, State>,
    sid: u32,
    seq: u64,
    mut job: Box<Job>,
    mut ctx: Context,
    outcome: SliceOutcome,
    slice_us: u64,
) {
    let device = inner.cfg.device.clone();
    let retry = inner.cfg.retry;
    // Deref the guard once so `tenants` / `preemptions` / `global_queued`
    // are disjoint field borrows rather than repeated whole-guard derefs.
    let state = &mut **st;
    let tenant = state.tenants.get_mut(&sid).expect("tenant exists while job in flight");
    tenant.running_cancel = None;
    tenant.obs.slice_us.record(slice_us);
    let corr = CorrId { session: sid as u64, seq };

    // Charge consumed simulated cycles to the tenant regardless of how
    // the slice ended (consumed device time is consumed).
    let end_cycle = match &outcome {
        SliceOutcome::Done(sim) => sim.cycles,
        SliceOutcome::Preempted { cycle, .. } => *cycle,
        SliceOutcome::Cancelled { cycle } => *cycle,
        SliceOutcome::Failed { cycle, .. } => {
            cycle.unwrap_or(job.cycles_done + inner.cfg.slice_cycles)
        }
        // The dead slot's partial slice is the provider's fault, not the
        // tenant's: charge nothing.
        SliceOutcome::SlotDied => job.cycles_done,
    };
    tenant.stats.cycles += end_cycle.saturating_sub(job.cycles_done);
    if let Some(tr) = &inner.obs.trace {
        tr.end("slice", corr, &tenant.obs.label, end_cycle);
    }

    enum Next {
        Requeue(Box<Job>),
        Finished(Result<JobOutput, ServeError>),
    }

    let mut finished = false;
    // `job` is moved by the Requeue arm below; the breaker feedback in
    // the Finished arm needs the probe tag, so capture it up front.
    let probe = job.probe;
    let next = match outcome {
        SliceOutcome::Done(mut sim) => {
            // A sampled job's profiler rode along in every snapshot, so
            // the final slice's report covers the whole job.
            if let Some(report) = sim.profile.take() {
                let bound = inner.cfg.profile.as_ref().map_or(0, |ps| ps.max_reports);
                if state.profiles.len() < bound {
                    state.profiles.push(JobProfile {
                        tenant: tenant.stats.name.clone(),
                        session: sid,
                        seq,
                        settled_us: inner.obs.trace.as_ref().map_or(0, |tr| tr.now_us()),
                        report,
                    });
                } else {
                    state.profiles_dropped += 1;
                }
            }
            Next::Finished(Ok(JobOutput {
                cycles: sim.cycles,
                retired: sim.retired,
                seconds: device.cycles_to_seconds(sim.cycles),
                slices: job.slices,
                attempts: job.attempts + 1,
            }))
        }
        SliceOutcome::Cancelled { .. } => Next::Finished(Err(ServeError::Cancelled)),
        SliceOutcome::Preempted { cycle, snapshot } => {
            state.preemptions += 1;
            inner.obs.preemptions.inc();
            job.cycles_done = cycle;
            job.snapshot = Some(snapshot);
            // Slice-boundary quota checks.
            let q = &tenant.quota;
            if job.cycles_done >= q.max_job_cycles {
                Next::Finished(Err(ServeError::QuotaExceeded {
                    what: QuotaKind::JobCycles,
                    used: job.cycles_done,
                    limit: q.max_job_cycles,
                }))
            } else if let Some(total) =
                q.max_total_cycles.filter(|&t| tenant.stats.cycles >= t)
            {
                Next::Finished(Err(ServeError::QuotaExceeded {
                    what: QuotaKind::TotalCycles,
                    used: tenant.stats.cycles,
                    limit: total,
                }))
            } else if let Some(wall) = q.max_job_wall.filter(|&w| job.wall_used >= w) {
                Next::Finished(Err(ServeError::QuotaExceeded {
                    what: QuotaKind::Wall,
                    used: job.wall_used.as_millis() as u64,
                    limit: wall.as_millis() as u64,
                }))
            } else {
                Next::Requeue(job)
            }
        }
        SliceOutcome::Failed { error, retryable, .. } => {
            job.attempts += 1;
            // Poison-job quarantine: a job that keeps failing stops
            // consuming retry budget (and device time) once it has
            // burned `quarantine_after` consecutive attempts, even if
            // the retry policy would allow more.
            let q = inner.cfg.supervision.quarantine_after;
            let quarantined = retryable && q > 0 && job.attempts >= q;
            if retryable && !quarantined && job.attempts < retry.max_attempts.max(1) {
                // Contained fault, budget left: roll memory back, clear
                // transient injected faults, back off, try again.
                tenant.stats.retries += 1;
                inner.obs.recovery("retry").inc();
                if let Some(backup) = &job.gm_backup {
                    *ctx.global_memory_mut() = backup.clone();
                }
                job.snapshot = None;
                job.cycles_done = 0;
                job.faults = FaultPlan::none();
                job.panics_left = job.panics_left.saturating_sub(1);
                job.not_before = Some(
                    Instant::now()
                        + Duration::from_millis(retry.backoff_ms(seq as usize, job.attempts)),
                );
                Next::Requeue(job)
            } else {
                // Final failure: containment rollback so the tenant's
                // memory shows no trace of the failed launch.
                if let Some(backup) = job.gm_backup.take() {
                    *ctx.global_memory_mut() = backup;
                }
                let error = if quarantined {
                    tenant.stats.quarantined += 1;
                    inner.obs.quarantine(&tenant.stats.name).inc();
                    ServeError::Quarantined { attempts: job.attempts, last: Box::new(error) }
                } else {
                    error
                };
                Next::Finished(Err(error))
            }
        }
        SliceOutcome::SlotDied => {
            job.slot_recoveries += 1;
            if job.slot_recoveries > inner.cfg.supervision.max_slot_recoveries {
                // Slots keep dying under this job; stop re-admitting it.
                if let Some(backup) = job.gm_backup.take() {
                    *ctx.global_memory_mut() = backup;
                }
                Next::Finished(Err(ServeError::Faulted {
                    cycle: job.cycles_done,
                    what: format!("device slot died {} times under job", job.slot_recoveries),
                }))
            } else {
                // Checkpoint recovery: the doomed slice mutated global
                // memory, but `Machine::restore` rewrites it wholesale
                // from the snapshot, so a checkpointed job just
                // re-admits as-is. A job with no checkpoint yet restarts
                // from the pre-launch image.
                tenant.stats.slot_recoveries += 1;
                inner.obs.recovery("slot").inc();
                if job.snapshot.is_none() {
                    if let Some(backup) = &job.gm_backup {
                        *ctx.global_memory_mut() = backup.clone();
                    }
                }
                Next::Requeue(job)
            }
        }
    };

    match next {
        Next::Requeue(mut job) => {
            job.queued_at = Instant::now();
            if let Some(tr) = &inner.obs.trace {
                tr.begin("queue", corr, &tenant.obs.label, job.cycles_done);
            }
            tenant.queue.push_front(seq);
            tenant.jobs.insert(seq, JobState::Queued(job));
        }
        Next::Finished(result) => {
            let (outcome_label, marker) = match &result {
                Ok(_) => ("completed", "complete"),
                Err(ServeError::Cancelled) => ("cancelled", "cancel"),
                Err(_) => ("failed", "fail"),
            };
            match &result {
                Ok(_) => tenant.stats.completed += 1,
                Err(ServeError::Cancelled) => tenant.stats.cancelled += 1,
                Err(_) => tenant.stats.failed += 1,
            }
            // The breaker sees settled outcomes only: transient faults
            // that retry heals never count against the tenant.
            let ev = match &result {
                Ok(_) => tenant.breaker.on_success(probe),
                Err(ServeError::Cancelled) => {
                    tenant.breaker.on_abandoned(probe);
                    None
                }
                Err(_) => tenant.breaker.on_failure(probe),
            };
            tenant.obs.breaker_state.set(tenant.breaker.gauge_value());
            if matches!(ev, Some(BreakerEvent::Closed)) {
                inner.obs.recovery("breaker").inc();
            }
            inner.obs.job_outcome(&tenant.stats.name, outcome_label).inc();
            if let Some(tr) = &inner.obs.trace {
                tr.instant(marker, corr, &tenant.obs.label, end_cycle);
            }
            tenant.jobs.insert(seq, JobState::Done(result));
            state.global_queued -= 1;
            inner.obs.queue_depth.set(state.global_queued as f64);
            finished = true;
        }
    }
    tenant.on_worker = false;
    tenant.ctx = Some(ctx);
    if finished {
        // Live fairness: max/min completed across tenants (mirrors
        // ServerStats::completion_fairness), recomputed per completion.
        let counts = state.tenants.values().map(|t| t.stats.completed);
        let (max, min) = counts.fold((0u64, u64::MAX), |(mx, mn), c| (mx.max(c), mn.min(c)));
        let fairness = if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        };
        inner.obs.fairness.set(fairness);
    }
    inner.work_ready.notify_all();
    inner.progress.notify_all();
}
