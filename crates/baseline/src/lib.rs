//! # soff-baseline
//!
//! Behavioural models of the two commercial OpenCL-for-FPGA frameworks the
//! paper compares against (§VI): **Intel FPGA SDK for OpenCL** on System A
//! and **Xilinx SDAccel** on System B.
//!
//! The architectural difference that drives Fig. 11 is pipelining
//! discipline: the commercial compilers *compile-time pipeline* (§II-A2) —
//! every instruction is statically scheduled assuming a fixed memory
//! latency, so a cache miss beyond the scheduled latency backs the whole
//! pipeline up, and far fewer misses can be outstanding. We model this by
//! running the *same* datapath machinery with
//!
//! * a small scheduled global-memory latency (`L_F = 8` instead of SOFF's
//!   near-maximum 64), so an in-order unit fills up and stalls the
//!   pipeline as soon as misses exceed the static schedule;
//! * a small MSHR budget (4 outstanding misses, vs. SOFF's 64);
//! * the vendor clock (static schedules close timing higher: 240 MHz vs.
//!   200 MHz on System A);
//! * for SDAccel, a **single datapath instance** — its documented default
//!   (§VI-C: "Xilinx SDAccel uses only one datapath instance by default").
//!
//! Functional coverage (Table II) has two parts: *systematic* feature gaps
//! detected from the IR (SDAccel rejects atomics, local-memory accesses
//! inside branches, and indirect pointers — §VI-B), and *empirical*
//! per-application defects of the closed-source tools (crashes, hangs,
//! wrong answers), which are reproduced from the published table as a
//! compatibility database — they cannot be derived from first principles.

use soff_datapath::LatencyModel;
use soff_ir::ctree::Region;
use soff_ir::ir::Kernel;
use soff_ir::pointer;
use soff_mem::CacheConfig;
use soff_runtime::{BuildError, Context, Device, ExecStats, LaunchError, Program};
use soff_ir::NdRange;
use std::fmt;

/// Which OpenCL framework executes the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// SOFF itself.
    Soff,
    /// Intel FPGA SDK for OpenCL 17.1.1 (System A).
    IntelLike,
    /// Xilinx SDAccel 2018.3 (System B).
    XilinxLike,
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Framework::Soff => "SOFF",
            Framework::IntelLike => "Intel OpenCL",
            Framework::XilinxLike => "Xilinx SDAccel",
        };
        f.write_str(s)
    }
}

/// Functional outcome of building+running an application (Table II codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Compiles and produces the right answer.
    Ok,
    /// `CE`: compile error.
    CompileError,
    /// `IA`: runs but produces an incorrect answer.
    IncorrectAnswer,
    /// `RE`: run-time error.
    RuntimeError,
    /// `H`: hangs or takes too long.
    Hang,
    /// `IR`: insufficient FPGA resources.
    InsufficientResources,
}

impl Outcome {
    /// The code printed in Table II (empty for OK).
    pub fn code(&self) -> &'static str {
        match self {
            Outcome::Ok => "",
            Outcome::CompileError => "CE",
            Outcome::IncorrectAnswer => "IA",
            Outcome::RuntimeError => "RE",
            Outcome::Hang => "H",
            Outcome::InsufficientResources => "IR",
        }
    }
}

/// The static-scheduling latency model used by both vendor baselines: the
/// compiler schedules global accesses at a fixed, optimistic latency.
pub fn vendor_latencies() -> LatencyModel {
    // The static schedule assumes exactly the cache-hit latency; any slip
    // (miss, arbitration conflict, lock) stalls the whole pipeline. SOFF's
    // near-maximum latencies (64/68) are what §IV-A buys.
    LatencyModel { global_mem: 4, atomic: 6, ..LatencyModel::default() }
}

/// The cache configuration of the static baselines: effectively blocking
/// on misses (the static schedule cannot slip), but with next-line
/// prefetch (static compilers infer bursts for regular streams).
pub fn vendor_cache() -> CacheConfig {
    CacheConfig { max_outstanding_misses: 1, prefetch_next: true, ..CacheConfig::default() }
}

/// Detects the *systematic* feature gaps of SDAccel (§VI-B): atomics,
/// local-memory accesses inside branches, and indirect pointers.
pub fn xilinx_feature_gap(kernel: &Kernel) -> Option<Outcome> {
    if kernel.uses_atomics {
        return Some(Outcome::CompileError);
    }
    // Local memory access inside a branch: any block under an
    // IfThen/IfThenElse region containing a local access.
    if kernel.uses_local && local_access_in_branch(kernel, &kernel.ctree, false) {
        return Some(Outcome::CompileError);
    }
    // Indirect pointers: a global access whose address cannot be
    // attributed to one buffer argument.
    let pa = pointer::analyze(kernel);
    let (_, unknown) = pointer::global_cache_groups(kernel, &pa);
    if unknown {
        return Some(Outcome::IncorrectAnswer);
    }
    None
}

fn local_access_in_branch(k: &Kernel, r: &Region, in_branch: bool) -> bool {
    use soff_frontend::types::AddressSpace;
    let block_has_local = |b: soff_ir::ir::BlockId| {
        k.block(b)
            .instrs
            .iter()
            .any(|v| k.instr(*v).mem_space() == Some(AddressSpace::Local))
    };
    match r {
        Region::Block(b) => in_branch && block_has_local(*b),
        Region::Barrier { .. } => false,
        Region::Seq(cs) => cs.iter().any(|c| local_access_in_branch(k, c, in_branch)),
        Region::IfThen { cond, then } => {
            (in_branch && block_has_local(*cond)) || local_access_in_branch(k, then, true)
        }
        Region::IfThenElse { cond, then, els } => {
            (in_branch && block_has_local(*cond))
                || local_access_in_branch(k, then, true)
                || local_access_in_branch(k, els, true)
        }
        Region::WhileLoop { cond, body } => {
            (in_branch && block_has_local(*cond)) || local_access_in_branch(k, body, in_branch)
        }
        Region::SelfLoop { body } => local_access_in_branch(k, body, in_branch),
    }
}

/// The published per-application defects of the closed-source tools
/// (Table II). `app` is the benchmark name (e.g. `"124.hotspot"`).
pub fn known_issue(fw: Framework, app: &str) -> Option<Outcome> {
    use Outcome::*;
    match fw {
        Framework::Soff => None,
        Framework::IntelLike => Some(match app {
            "101.tpacf" => IncorrectAnswer,
            "103.stencil" => IncorrectAnswer,
            "114.mriq" => Hang,
            "121.lavamd" => CompileError,
            "122.cfd" => Hang,
            "124.hotspot" => RuntimeError,
            "128.heartwall" => CompileError,
            "140.bplustree" => IncorrectAnswer,
            // Temporally-blocked stencils: the unrolled multi-step windows
            // (dozens of guarded loads per work-item) blow past what the
            // 2018-era static schedulers could place — the conv variants
            // exhaust the device, the iterative ones die in scheduling.
            "2dconv-blocked" | "3dconv-blocked" => InsufficientResources,
            "jacobi-blocked" | "fdtd-2d-blocked" => CompileError,
            _ => return None,
        }),
        Framework::XilinxLike => Some(match app {
            // Systematic gaps are detected from the IR; these are the
            // additional empirical failures.
            "121.lavamd" => CompileError,
            "123.nw" => Hang,
            "124.hotspot" => CompileError,
            "128.heartwall" => CompileError,
            "140.bplustree" => IncorrectAnswer,
            "3mm" | "gramschm" | "syr2k" | "covar" | "fdtd-2d" => Hang,
            // Blocked stencils choke the static pipeliner outright; the
            // fdtd variant hangs just like its plain counterpart above.
            "2dconv-blocked" | "3dconv-blocked" | "jacobi-blocked" => CompileError,
            "fdtd-2d-blocked" => Hang,
            _ => return None,
        }),
    }
}

/// Compiles an application source for the given framework, applying its
/// latency model and feature gates.
///
/// # Errors
///
/// Returns the Table II outcome when the framework cannot build the
/// program; `InsufficientResources` maps from the resource model.
pub fn build(
    fw: Framework,
    source: &str,
    defines: &[(String, String)],
) -> Result<(Program, Device), Outcome> {
    let (device, lat) = match fw {
        Framework::Soff => (Device::system_a(), LatencyModel::default()),
        Framework::IntelLike => {
            let mut d = Device::system_a();
            d.cache = vendor_cache();
            (d, vendor_latencies())
        }
        Framework::XilinxLike => {
            let mut d = Device::system_b();
            // SDAccel 2018 has no global-memory cache (§VI-A attributes the
            // 64 KB caches to Intel OpenCL only): model a tiny line buffer
            // that only captures burst locality.
            d.cache = CacheConfig { bytes: 4096, ..vendor_cache() };
            (d, vendor_latencies())
        }
    };
    let program = Program::build_with_latencies(source, defines, &device, &lat).map_err(|e| {
        match e {
            BuildError::Compile(_) => Outcome::CompileError,
            BuildError::InsufficientResources { .. } => Outcome::InsufficientResources,
        }
    })?;
    if fw == Framework::XilinxLike {
        for ck in program.kernels() {
            if let Some(bad) = xilinx_feature_gap(&ck.kernel) {
                return Err(bad);
            }
        }
    }
    Ok((program, device))
}

/// Per-framework execution policy applied to a context before launching.
pub fn configure_context(fw: Framework, ctx: &mut Context, replication: u32) {
    match fw {
        Framework::Soff => {
            ctx.force_instances = Some(replication);
        }
        Framework::IntelLike => {
            // num_compute_units(N) inserted manually for a fair comparison
            // (§VI-C): Intel also maximally replicates.
            ctx.force_instances = Some(replication);
        }
        Framework::XilinxLike => {
            // SDAccel's default: one compute unit.
            ctx.force_instances = Some(1);
        }
    }
}

/// Converts cycles to seconds at the framework's achieved clock.
pub fn cycles_to_seconds(fw: Framework, device: &Device, cycles: u64) -> f64 {
    let mhz = match fw {
        Framework::Soff => device.system.clock_soff_mhz,
        Framework::IntelLike | Framework::XilinxLike => device.system.clock_vendor_mhz,
    };
    cycles as f64 / (mhz * 1.0e6)
}

/// Convenience: builds, binds arguments via `bind`, launches, and returns
/// `(stats, seconds_at_vendor_clock)`.
///
/// # Errors
///
/// The Table II outcome on any failure (launch deadlock/timeout → `Hang`).
pub fn run_once(
    fw: Framework,
    source: &str,
    defines: &[(String, String)],
    nd: NdRange,
    bind: impl FnOnce(&mut Context, &Program) -> Result<soff_runtime::KernelHandle, LaunchError>,
) -> Result<(ExecStats, f64), Outcome> {
    let (program, device) = build(fw, source, defines)?;
    let replication = program.kernels()[0].replication.num_datapaths;
    let mut ctx = Context::new(device.clone());
    configure_context(fw, &mut ctx, replication);
    let kernel = bind(&mut ctx, &program).map_err(|_| Outcome::RuntimeError)?;
    let stats = ctx.enqueue_ndrange(&kernel, nd).map_err(|e| match e {
        LaunchError::Sim(soff_sim::SimError::Deadlock { .. })
        | LaunchError::Sim(soff_sim::SimError::Timeout { .. }) => Outcome::Hang,
        _ => Outcome::RuntimeError,
    })?;
    let secs = cycles_to_seconds(fw, &device, stats.sim.cycles);
    Ok((stats, secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_of(src: &str) -> Kernel {
        let p = soff_frontend::compile(src, &[]).unwrap();
        soff_ir::build::lower(&p).unwrap().kernels.into_iter().next().unwrap()
    }

    #[test]
    fn xilinx_rejects_atomics() {
        let k = kernel_of(
            "__kernel void h(__global int* b, __global int* d) {
                atomic_add(&b[d[get_global_id(0)] % 4], 1);
            }",
        );
        assert_eq!(xilinx_feature_gap(&k), Some(Outcome::CompileError));
    }

    #[test]
    fn xilinx_rejects_local_access_in_branch() {
        let k = kernel_of(
            "__kernel void f(__global float* a, int c) {
                __local float t[8];
                int l = get_local_id(0);
                t[l] = a[get_global_id(0)];
                barrier(CLK_LOCAL_MEM_FENCE);
                if (l < c) a[get_global_id(0)] = t[l];
            }",
        );
        // The guarded read of t[l] is a local access inside a branch...
        // it is behind `if (l < c)` only on the global side; the local
        // load feeds the store inside the branch.
        let gap = xilinx_feature_gap(&k);
        assert!(gap.is_some(), "expected a feature gap");
    }

    #[test]
    fn xilinx_flags_indirect_pointers() {
        let k = kernel_of(
            "__kernel void f(__global ulong* links, __global float* out) {
                ulong p = links[get_global_id(0)];
                __global float* q = (__global float*)p;
                out[get_global_id(0)] = q[0];
            }",
        );
        assert_eq!(xilinx_feature_gap(&k), Some(Outcome::IncorrectAnswer));
    }

    #[test]
    fn xilinx_accepts_plain_kernels() {
        let k = kernel_of(
            "__kernel void f(__global float* a, __global float* b) {
                b[get_global_id(0)] = a[get_global_id(0)] * 2.0f;
            }",
        );
        assert_eq!(xilinx_feature_gap(&k), None);
    }

    #[test]
    fn known_issue_table_matches_counts() {
        // Table II: Intel fails 8 SPEC apps; Xilinx fails 9 SPEC + 5 Poly.
        let spec = [
            "101.tpacf", "103.stencil", "104.lbm", "110.fft", "112.spmv", "114.mriq",
            "116.histo", "117.bfs", "118.cutcp", "120.kmeans", "121.lavamd", "122.cfd",
            "123.nw", "124.hotspot", "125.lud", "126.ge", "127.srad", "128.heartwall",
            "140.bplustree",
        ];
        let intel_fail =
            spec.iter().filter(|a| known_issue(Framework::IntelLike, a).is_some()).count();
        assert_eq!(intel_fail, 8);
        // Xilinx: 5 empirical SPEC failures + feature-detected ones
        // (tpacf/histo/bfs/srad via atomics or local-in-branch) = 9 total,
        // checked end-to-end in the workloads crate.
        let poly_fail = ["3mm", "gramschm", "syr2k", "covar", "fdtd-2d"]
            .iter()
            .filter(|a| known_issue(Framework::XilinxLike, a).is_some())
            .count();
        assert_eq!(poly_fail, 5);
        // Temporally-blocked stencils fail on BOTH vendor frameworks
        // (only SOFF's line-buffer path handles them); plain jacobi passes.
        for a in ["2dconv-blocked", "3dconv-blocked", "jacobi-blocked", "fdtd-2d-blocked"] {
            assert!(known_issue(Framework::IntelLike, a).is_some(), "{a} intel");
            assert!(known_issue(Framework::XilinxLike, a).is_some(), "{a} xilinx");
        }
        assert_eq!(known_issue(Framework::IntelLike, "jacobi"), None);
        assert_eq!(known_issue(Framework::XilinxLike, "jacobi"), None);
    }

    #[test]
    fn vendor_latency_model_is_static() {
        let v = vendor_latencies();
        assert!(v.global_mem < LatencyModel::default().global_mem);
        assert!(vendor_cache().max_outstanding_misses < CacheConfig::default().max_outstanding_misses);
    }

    #[test]
    fn baseline_runs_slower_on_irregular_access() {
        // A strided (cache-hostile) kernel: SOFF's 64-deep memory units
        // overlap misses; the static baseline stalls. The gap must show.
        let src = "__kernel void stride(__global float* a, __global float* o, int n) {
            int i = get_global_id(0);
            o[i] = a[(i * 97) % n] + 1.0f;
        }";
        let nd = NdRange::dim1(512, 64);
        let bind = |ctx: &mut Context, p: &Program| {
            let a = ctx.create_buffer(4096 * 4);
            let o = ctx.create_buffer(512 * 4);
            let mut k = p.kernel("stride").unwrap();
            k.set_arg_buffer(0, a).set_arg_buffer(1, o).set_arg_i32(2, 4096);
            Ok(k)
        };
        let (soff, _) = run_once(Framework::Soff, src, &[], nd, bind).unwrap();
        let bind2 = |ctx: &mut Context, p: &Program| {
            let a = ctx.create_buffer(4096 * 4);
            let o = ctx.create_buffer(512 * 4);
            let mut k = p.kernel("stride").unwrap();
            k.set_arg_buffer(0, a).set_arg_buffer(1, o).set_arg_i32(2, 4096);
            Ok(k)
        };
        let (intel, _) = run_once(Framework::IntelLike, src, &[], nd, bind2).unwrap();
        assert!(
            intel.sim.cycles > soff.sim.cycles,
            "static baseline should stall more: intel={} soff={}",
            intel.sim.cycles,
            soff.sim.cycles
        );
    }
}
