//! # soff-exec
//!
//! The execution layer of the SOFF benchmark sweeps: a dependency-free
//! scoped thread pool with work-stealing deques ([`deque`]) and
//! per-task panic isolation.
//!
//! Benchmark sweeps (Table II, Fig. 11/12, ablations) are
//! embarrassingly parallel grids of *independent* simulations — each
//! cell builds its own context and global memory, so fanning cells
//! across threads preserves bit-identical per-cell results while
//! multiplying throughput by core count. [`run_tasks`] is the one
//! entry point: it takes an ordered work list, executes it on `jobs`
//! workers, and returns results **in input order**, so callers are
//! oblivious to scheduling.
//!
//! Two properties the sweep drivers rely on:
//!
//! * **Determinism** — results are keyed by input index, never by
//!   completion order. `jobs = 1` executes the items in order on the
//!   caller's thread (no pool is spawned), reproducing a plain
//!   sequential `for` loop exactly.
//! * **Panic isolation** — every task runs under `catch_unwind`; a
//!   panicking task becomes `Err(`[`TaskError::Panicked`]`)` in its own
//!   slot while sibling tasks keep running. A buggy benchmark cell
//!   produces one failure row, not a torn-down sweep (composing with
//!   the hang/fault tolerance of the workload harness).
//!
//! ## Example
//!
//! ```
//! let results = soff_exec::run_tasks(4, vec![1u64, 2, 3, 4], |_, n| n * n);
//! let squares: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod deque;

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a task produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked; the payload's message (if it was a string).
    Panicked {
        /// The panic payload rendered as text.
        message: String,
    },
    /// The pool-wide [`CancelFlag`] was raised before this task started
    /// (or between its retry attempts); the task never produced a value.
    Cancelled,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panicked { message } => write!(f, "task panicked: {message}"),
            TaskError::Cancelled => write!(f, "task cancelled before it ran"),
        }
    }
}

impl Error for TaskError {}

/// Renders a panic payload (almost always a `&str` or `String`).
/// Public so other layers that `catch_unwind` (the serve layer's fault
/// containment) report panics identically to this pool.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn run_guarded<I, T>(f: &(impl Fn(usize, I) -> T + Sync), index: usize, item: I) -> Result<T, TaskError> {
    catch_unwind(AssertUnwindSafe(|| f(index, item)))
        .map_err(|p| TaskError::Panicked { message: panic_message(p.as_ref()) })
}

/// Pool metrics, registered once on the global `soff-obs` registry:
/// successful steals (how often the round-robin deal was unbalanced
/// enough for idle workers to poach) and per-task queue latency (push
/// into a deque → dequeued for execution, in microseconds — the direct
/// measure of pool backlog).
struct PoolMetrics {
    steals: soff_obs::Counter,
    task_wait_us: soff_obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = soff_obs::global();
        PoolMetrics {
            steals: r.counter("soff_exec_steals_total", &[]),
            task_wait_us: r.histogram("soff_exec_task_wait_us", &[]),
        }
    })
}

/// Executes `f(index, item)` for every item on a pool of `jobs`
/// workers and returns the results **in input order**.
///
/// Items are dealt round-robin onto per-worker deques; an idle worker
/// first drains its own deque (LIFO), then steals the oldest task from
/// a sibling (FIFO). Because the work list is fixed up front, "all
/// deques empty" is a sound termination condition — no task can appear
/// after a worker observes emptiness and exits.
///
/// A panicking task yields `Err(TaskError::Panicked)` in its slot;
/// all other slots are unaffected. With `jobs <= 1` (or fewer than two
/// items) no threads are spawned and items run in order on the calling
/// thread — byte-for-byte the sequential loop it replaces, except that
/// panics are still converted into per-task errors.
pub fn run_tasks<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<Result<T, TaskError>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| run_guarded(&f, i, item)).collect();
    }
    let jobs = jobs.min(n);

    // Items live in indexed slots; deques carry indices. A slot is
    // taken exactly once (the deques never duplicate an index, but the
    // take-once discipline makes that locally evident).
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let workers: Vec<deque::Worker<usize>> = (0..jobs).map(|_| deque::Worker::new()).collect();
    let stealers: Vec<deque::Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
    for i in 0..n {
        workers[i % jobs].push(i);
    }

    let (tx, rx) = mpsc::channel::<(usize, Result<T, TaskError>)>();
    let metrics = pool_metrics();
    let pool_start = Instant::now();
    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            let (f, slots, stealers) = (&f, &slots, &stealers);
            scope.spawn(move || loop {
                let next = worker.pop().or_else(|| {
                    // Steal round-robin starting after ourselves, so
                    // workers do not all gang up on worker 0.
                    (1..stealers.len()).find_map(|off| {
                        match stealers[(wid + off) % stealers.len()].steal() {
                            deque::Steal::Success(i) => {
                                metrics.steals.inc();
                                Some(i)
                            }
                            deque::Steal::Empty => None,
                        }
                    })
                });
                let Some(index) = next else { break };
                metrics.task_wait_us.record(pool_start.elapsed().as_micros() as u64);
                let item = slots[index]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                if let Some(item) = item {
                    // The receiver outlives the scope; send cannot fail.
                    let _ = tx.send((index, run_guarded(f, index, item)));
                }
            });
        }
        drop(tx); // workers hold the remaining clones
    });

    let mut out: Vec<Option<Result<T, TaskError>>> = (0..n).map(|_| None).collect();
    for (index, result) in rx {
        out[index] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("scope joined all workers, every task reported"))
        .collect()
}

/// A cloneable, thread-safe, one-way pool-wide cancellation flag.
///
/// The sweep driver keeps one clone and hands another to
/// [`TaskOptions::cancel`]; raising it makes every not-yet-started task
/// come back as `Err(`[`TaskError::Cancelled`]`)` while tasks already
/// running finish normally (they can poll the flag through their
/// [`TaskCtx`] to stop early and cooperatively).
#[derive(Debug, Clone, Default)]
pub struct CancelFlag {
    flag: Arc<AtomicBool>,
}

impl CancelFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Bounded exponential backoff with deterministic, seeded jitter, for
/// retrying tasks that fail *transiently* (e.g. a sweep cell wedged by an
/// injected fault window that a later attempt dodges).
///
/// The delay before retry `attempt` (1-based: the wait after the
/// `attempt`-th failure) is `base_delay_ms · 2^(attempt-1)`, capped at
/// `max_delay_ms`, with the top half of the interval replaced by jitter
/// derived from `(seed, task index, attempt)` — fully deterministic, so
/// two runs of the same sweep retry on the identical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task (1 = no retries). `0` is treated as `1`.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_delay_ms: 10, max_delay_ms: 500, seed: 0 }
    }
}

impl RetryPolicy {
    /// The delay (ms) before retry `attempt` of task `index`.
    pub fn backoff_ms(&self, index: usize, attempt: u32) -> u64 {
        let cap = self.max_delay_ms.max(self.base_delay_ms);
        let raw = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32))
            .min(cap);
        // Decorrelate workers without losing determinism: keep the lower
        // half of the exponential delay, jitter the upper half.
        let half = raw / 2;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self
            .seed
            .to_le_bytes()
            .into_iter()
            .chain((index as u64).to_le_bytes())
            .chain(u64::from(attempt).to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (half + h % (half + 1)).min(cap)
    }
}

/// Budgets and cancellation for [`run_tasks_ctl`]. The default is
/// unlimited and retry-free — exactly [`run_tasks`] semantics.
#[derive(Debug, Clone, Default)]
pub struct TaskOptions {
    /// Pool-wide cancellation (`None` = not cancellable).
    pub cancel: Option<CancelFlag>,
    /// Per-task wall-clock budget, measured from the task's first
    /// attempt; it bounds retries (no retry starts past the deadline) and
    /// is surfaced to the task via [`TaskCtx::deadline`] so cooperative
    /// tasks can stop themselves in time.
    pub task_deadline: Option<Duration>,
    /// Retry transiently-failing tasks (`None` = single attempt).
    pub retry: Option<RetryPolicy>,
}

/// Per-attempt context handed to a [`run_tasks_ctl`] task.
#[derive(Debug, Clone)]
pub struct TaskCtx {
    /// 1-based attempt number (1 = first try).
    pub attempt: u32,
    /// The pool-wide cancellation flag, if one was set.
    pub cancel: Option<CancelFlag>,
    /// This task's wall-clock deadline, if one was set.
    pub deadline: Option<Instant>,
}

impl TaskCtx {
    /// Whether the pool has been cancelled (cooperative tasks poll this).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// Wall-clock budget left before this task's deadline (`None` = no
    /// deadline; zero = already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// A task value plus how many attempts it took to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completed<T> {
    /// The task's (final) return value.
    pub value: T,
    /// 1-based attempt count (1 = succeeded first try).
    pub attempts: u32,
}

/// [`run_tasks`] with budgets: pool-wide cancellation, per-task
/// deadlines, and bounded deterministic retry.
///
/// Items are taken by reference (they must survive retries), and every
/// attempt receives a [`TaskCtx`] describing its attempt number, the
/// cancel flag, and the deadline. After each attempt, `transient(&value)`
/// decides whether the value is a transient failure worth retrying;
/// retries follow the [`RetryPolicy`] backoff schedule and never start
/// past the deadline or after cancellation. Panics are *not* retried —
/// they are bugs, not transient conditions — and come back as
/// [`TaskError::Panicked`] exactly as in [`run_tasks`].
///
/// Results return **in input order**; `jobs <= 1` (or fewer than two
/// items) runs sequentially on the calling thread.
pub fn run_tasks_ctl<I, T, F, R>(
    jobs: usize,
    items: &[I],
    opts: &TaskOptions,
    f: F,
    transient: R,
) -> Vec<Result<Completed<T>, TaskError>>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I, &TaskCtx) -> T + Sync,
    R: Fn(&T) -> bool + Sync,
{
    let n = items.len();
    let cancelled = || opts.cancel.as_ref().is_some_and(CancelFlag::is_cancelled);
    let exec_one = |index: usize| -> Result<Completed<T>, TaskError> {
        if cancelled() {
            return Err(TaskError::Cancelled);
        }
        let deadline = opts.task_deadline.map(|d| Instant::now() + d);
        let max_attempts = opts.retry.map_or(1, |r| r.max_attempts.max(1));
        let mut attempt = 1u32;
        loop {
            let ctx = TaskCtx { attempt, cancel: opts.cancel.clone(), deadline };
            let value = catch_unwind(AssertUnwindSafe(|| f(index, &items[index], &ctx)))
                .map_err(|p| TaskError::Panicked { message: panic_message(p.as_ref()) })?;
            let retryable = attempt < max_attempts
                && transient(&value)
                && !cancelled()
                && deadline.is_none_or(|d| Instant::now() < d);
            if !retryable {
                return Ok(Completed { value, attempts: attempt });
            }
            let policy = opts.retry.expect("retryable implies a policy");
            let mut pause = Duration::from_millis(policy.backoff_ms(index, attempt));
            if let Some(d) = deadline {
                pause = pause.min(d.saturating_duration_since(Instant::now()));
            }
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            attempt += 1;
        }
    };

    if jobs <= 1 || n <= 1 {
        return (0..n).map(exec_one).collect();
    }
    let jobs = jobs.min(n);
    let workers: Vec<deque::Worker<usize>> = (0..jobs).map(|_| deque::Worker::new()).collect();
    let stealers: Vec<deque::Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
    for i in 0..n {
        workers[i % jobs].push(i);
    }
    let (tx, rx) = mpsc::channel::<(usize, Result<Completed<T>, TaskError>)>();
    let metrics = pool_metrics();
    let pool_start = Instant::now();
    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            let (exec_one, stealers) = (&exec_one, &stealers);
            scope.spawn(move || loop {
                let next = worker.pop().or_else(|| {
                    (1..stealers.len()).find_map(|off| {
                        match stealers[(wid + off) % stealers.len()].steal() {
                            deque::Steal::Success(i) => {
                                metrics.steals.inc();
                                Some(i)
                            }
                            deque::Steal::Empty => None,
                        }
                    })
                });
                let Some(index) = next else { break };
                metrics.task_wait_us.record(pool_start.elapsed().as_micros() as u64);
                // The receiver outlives the scope; send cannot fail.
                let _ = tx.send((index, exec_one(index)));
            });
        }
        drop(tx); // workers hold the remaining clones
    });
    let mut out: Vec<Option<Result<Completed<T>, TaskError>>> = (0..n).map(|_| None).collect();
    for (index, result) in rx {
        out[index] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("scope joined all workers, every task reported"))
        .collect()
}

// Compile-time audit: sweep cells and their results cross thread
// boundaries, so the error type must be freely shareable, and the
// resilience knobs are shared by reference across workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TaskError>();
    assert_send_sync::<CancelFlag>();
    assert_send_sync::<TaskOptions>();
    assert_send_sync::<RetryPolicy>();
    assert_send_sync::<Completed<u64>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 9] {
            let items: Vec<usize> = (0..37).collect();
            let results = run_tasks(jobs, items, |i, item| {
                assert_eq!(i, item, "index matches the item's input position");
                item * 10
            });
            let got: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..37).map(|i| i * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_tasks(4, vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn a_panicking_task_does_not_lose_its_siblings() {
        let results = run_tasks(3, (0..10).collect::<Vec<u32>>(), |_, n| {
            if n == 4 {
                panic!("injected failure on {n}");
            }
            n + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                match r {
                    Err(TaskError::Panicked { message }) => {
                        assert!(message.contains("injected failure on 4"), "got: {message}")
                    }
                    other => panic!("expected a panic error, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u32 + 1));
            }
        }
    }

    #[test]
    fn sequential_mode_spawns_no_threads() {
        // Observable proxy: the closure always runs on the caller's thread.
        let caller = std::thread::current().id();
        let results = run_tasks(1, vec![0; 8], |_, _| std::thread::current().id());
        assert!(results.into_iter().all(|r| r.unwrap() == caller));
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let results = run_tasks(64, vec![1, 2], |_, n| n * 2);
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 4]);
    }

    #[test]
    fn empty_work_list_is_fine() {
        let results = run_tasks(4, Vec::<u8>::new(), |_, n| n);
        assert!(results.is_empty());
    }

    #[test]
    fn ctl_defaults_match_run_tasks_semantics() {
        for jobs in [1, 4] {
            let items: Vec<usize> = (0..23).collect();
            let results = run_tasks_ctl(
                jobs,
                &items,
                &TaskOptions::default(),
                |i, item, ctx| {
                    assert_eq!(i, *item);
                    assert_eq!(ctx.attempt, 1);
                    item * 3
                },
                |_| false,
            );
            let got: Vec<usize> =
                results.into_iter().map(|r| r.unwrap()).map(|c| c.value).collect();
            assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn cancelled_pool_reports_typed_errors_for_unstarted_tasks() {
        let flag = CancelFlag::new();
        flag.cancel();
        let opts = TaskOptions { cancel: Some(flag), ..TaskOptions::default() };
        let results = run_tasks_ctl(4, &[1u32, 2, 3], &opts, |_, n, _| n * 2, |_| false);
        assert!(results.iter().all(|r| matches!(r, Err(TaskError::Cancelled))));
    }

    #[test]
    fn transient_failures_retry_up_to_the_bound() {
        // The task returns its attempt number; values below 3 are
        // "transient", so the pool must retry twice and settle at 3.
        let opts = TaskOptions {
            retry: Some(RetryPolicy { max_attempts: 3, base_delay_ms: 0, ..RetryPolicy::default() }),
            ..TaskOptions::default()
        };
        for jobs in [1, 4] {
            let results =
                run_tasks_ctl(jobs, &[(); 7], &opts, |_, (), ctx| ctx.attempt, |&a| a < 3);
            for r in results {
                let c = r.unwrap();
                assert_eq!((c.value, c.attempts), (3, 3), "jobs={jobs}");
            }
        }
        // An always-transient value still stops at the bound.
        let results = run_tasks_ctl(1, &[()], &opts, |_, (), ctx| ctx.attempt, |_| true);
        assert_eq!(results[0].as_ref().unwrap().attempts, 3);
    }

    #[test]
    fn panics_are_not_retried() {
        let tries = AtomicUsize::new(0);
        let opts = TaskOptions {
            retry: Some(RetryPolicy { max_attempts: 5, base_delay_ms: 0, ..RetryPolicy::default() }),
            ..TaskOptions::default()
        };
        let results = run_tasks_ctl(
            1,
            &[()],
            &opts,
            |_, (), _| {
                tries.fetch_add(1, Ordering::Relaxed);
                panic!("boom");
            },
            |_: &()| true,
        );
        assert!(matches!(&results[0], Err(TaskError::Panicked { .. })));
        assert_eq!(tries.load(Ordering::Relaxed), 1, "a panic must not be retried");
    }

    #[test]
    fn deadline_bounds_retries() {
        // Transient forever, but the per-task deadline is already tighter
        // than one backoff pause — the pool must give up after the first
        // attempt instead of burning the full retry budget.
        let opts = TaskOptions {
            task_deadline: Some(Duration::from_millis(0)),
            retry: Some(RetryPolicy {
                max_attempts: 50,
                base_delay_ms: 1000,
                ..RetryPolicy::default()
            }),
            ..TaskOptions::default()
        };
        let start = Instant::now();
        let results = run_tasks_ctl(1, &[()], &opts, |_, (), ctx| ctx.attempt, |_| true);
        assert_eq!(results[0].as_ref().unwrap().attempts, 1);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 500, seed: 42 };
        for index in 0..4 {
            for attempt in 1..8 {
                let a = p.backoff_ms(index, attempt);
                let b = p.backoff_ms(index, attempt);
                assert_eq!(a, b, "same (seed, index, attempt) must give the same delay");
                assert!(a <= p.max_delay_ms);
                // The deterministic lower half guarantees growth until the cap.
                let raw = (p.base_delay_ms << (attempt - 1)).min(p.max_delay_ms);
                assert!(a >= raw / 2, "delay {a} below the exponential floor {raw}/2");
            }
        }
        let other = RetryPolicy { seed: 43, ..p };
        assert!(
            (1..8).any(|at| p.backoff_ms(0, at) != other.backoff_ms(0, at)),
            "different seeds should jitter differently"
        );
    }
}
