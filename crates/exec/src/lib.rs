//! # soff-exec
//!
//! The execution layer of the SOFF benchmark sweeps: a dependency-free
//! scoped thread pool with work-stealing deques ([`deque`]) and
//! per-task panic isolation.
//!
//! Benchmark sweeps (Table II, Fig. 11/12, ablations) are
//! embarrassingly parallel grids of *independent* simulations — each
//! cell builds its own context and global memory, so fanning cells
//! across threads preserves bit-identical per-cell results while
//! multiplying throughput by core count. [`run_tasks`] is the one
//! entry point: it takes an ordered work list, executes it on `jobs`
//! workers, and returns results **in input order**, so callers are
//! oblivious to scheduling.
//!
//! Two properties the sweep drivers rely on:
//!
//! * **Determinism** — results are keyed by input index, never by
//!   completion order. `jobs = 1` executes the items in order on the
//!   caller's thread (no pool is spawned), reproducing a plain
//!   sequential `for` loop exactly.
//! * **Panic isolation** — every task runs under `catch_unwind`; a
//!   panicking task becomes `Err(`[`TaskError::Panicked`]`)` in its own
//!   slot while sibling tasks keep running. A buggy benchmark cell
//!   produces one failure row, not a torn-down sweep (composing with
//!   the hang/fault tolerance of the workload harness).
//!
//! ## Example
//!
//! ```
//! let results = soff_exec::run_tasks(4, vec![1u64, 2, 3, 4], |_, n| n * n);
//! let squares: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod deque;

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// Why a task produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked; the payload's message (if it was a string).
    Panicked {
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Panicked { message } => write!(f, "task panicked: {message}"),
        }
    }
}

impl Error for TaskError {}

/// Renders a panic payload (almost always a `&str` or `String`).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn run_guarded<I, T>(f: &(impl Fn(usize, I) -> T + Sync), index: usize, item: I) -> Result<T, TaskError> {
    catch_unwind(AssertUnwindSafe(|| f(index, item)))
        .map_err(|p| TaskError::Panicked { message: panic_message(p.as_ref()) })
}

/// Executes `f(index, item)` for every item on a pool of `jobs`
/// workers and returns the results **in input order**.
///
/// Items are dealt round-robin onto per-worker deques; an idle worker
/// first drains its own deque (LIFO), then steals the oldest task from
/// a sibling (FIFO). Because the work list is fixed up front, "all
/// deques empty" is a sound termination condition — no task can appear
/// after a worker observes emptiness and exits.
///
/// A panicking task yields `Err(TaskError::Panicked)` in its slot;
/// all other slots are unaffected. With `jobs <= 1` (or fewer than two
/// items) no threads are spawned and items run in order on the calling
/// thread — byte-for-byte the sequential loop it replaces, except that
/// panics are still converted into per-task errors.
pub fn run_tasks<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<Result<T, TaskError>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, item)| run_guarded(&f, i, item)).collect();
    }
    let jobs = jobs.min(n);

    // Items live in indexed slots; deques carry indices. A slot is
    // taken exactly once (the deques never duplicate an index, but the
    // take-once discipline makes that locally evident).
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let workers: Vec<deque::Worker<usize>> = (0..jobs).map(|_| deque::Worker::new()).collect();
    let stealers: Vec<deque::Stealer<usize>> = workers.iter().map(|w| w.stealer()).collect();
    for i in 0..n {
        workers[i % jobs].push(i);
    }

    let (tx, rx) = mpsc::channel::<(usize, Result<T, TaskError>)>();
    std::thread::scope(|scope| {
        for (wid, worker) in workers.into_iter().enumerate() {
            let tx = tx.clone();
            let (f, slots, stealers) = (&f, &slots, &stealers);
            scope.spawn(move || loop {
                let next = worker.pop().or_else(|| {
                    // Steal round-robin starting after ourselves, so
                    // workers do not all gang up on worker 0.
                    (1..stealers.len()).find_map(|off| {
                        match stealers[(wid + off) % stealers.len()].steal() {
                            deque::Steal::Success(i) => Some(i),
                            deque::Steal::Empty => None,
                        }
                    })
                });
                let Some(index) = next else { break };
                let item = slots[index]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                if let Some(item) = item {
                    // The receiver outlives the scope; send cannot fail.
                    let _ = tx.send((index, run_guarded(f, index, item)));
                }
            });
        }
        drop(tx); // workers hold the remaining clones
    });

    let mut out: Vec<Option<Result<T, TaskError>>> = (0..n).map(|_| None).collect();
    for (index, result) in rx {
        out[index] = Some(result);
    }
    out.into_iter()
        .map(|slot| slot.expect("scope joined all workers, every task reported"))
        .collect()
}

// Compile-time audit: sweep cells and their results cross thread
// boundaries, so the error type must be freely shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TaskError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for jobs in [1, 2, 4, 9] {
            let items: Vec<usize> = (0..37).collect();
            let results = run_tasks(jobs, items, |i, item| {
                assert_eq!(i, item, "index matches the item's input position");
                item * 10
            });
            let got: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..37).map(|i| i * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let results = run_tasks(4, vec![(); 100], |_, ()| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn a_panicking_task_does_not_lose_its_siblings() {
        let results = run_tasks(3, (0..10).collect::<Vec<u32>>(), |_, n| {
            if n == 4 {
                panic!("injected failure on {n}");
            }
            n + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                match r {
                    Err(TaskError::Panicked { message }) => {
                        assert!(message.contains("injected failure on 4"), "got: {message}")
                    }
                    other => panic!("expected a panic error, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u32 + 1));
            }
        }
    }

    #[test]
    fn sequential_mode_spawns_no_threads() {
        // Observable proxy: the closure always runs on the caller's thread.
        let caller = std::thread::current().id();
        let results = run_tasks(1, vec![0; 8], |_, _| std::thread::current().id());
        assert!(results.into_iter().all(|r| r.unwrap() == caller));
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let results = run_tasks(64, vec![1, 2], |_, n| n * 2);
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 4]);
    }

    #[test]
    fn empty_work_list_is_fine() {
        let results = run_tasks(4, Vec::<u8>::new(), |_, n| n);
        assert!(results.is_empty());
    }
}
