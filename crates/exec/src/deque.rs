//! Work-stealing deques, API-shaped like `crossbeam_deque`.
//!
//! The workspace vendors no external crates, so this is an in-repo
//! stand-in: each worker owns a deque it pushes/pops at the *back*
//! (LIFO, keeps the owner's working set warm), while [`Stealer`]s held
//! by other workers take from the *front* (FIFO, steals the oldest —
//! and for a sweep, typically largest-remaining — batch of work).
//!
//! Unlike the lock-free Chase–Lev original, the implementation guards
//! the buffer with a [`Mutex`]. Sweep tasks are coarse (milliseconds of
//! simulation each), so a sub-microsecond critical section per
//! push/pop/steal is noise; in exchange the deque is trivially correct
//! and contains no `unsafe`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// The owner's end of a deque.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// A handle other workers use to steal from a [`Worker`]'s deque.
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { inner: Arc::clone(&self.inner) }
    }
}

/// Outcome of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was empty.
    Empty,
    /// One task was stolen.
    Success(T),
}

/// A poisoned deque lock means a thread panicked *while holding it*;
/// every critical section below is a plain queue operation that cannot
/// panic, so recover the guard instead of propagating the poison (the
/// pool's whole job is to outlive task panics).
fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Worker<T> {
    /// Creates an empty deque.
    pub fn new() -> Worker<T> {
        Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Pops the most recently pushed task (owner side, LIFO).
    pub fn pop(&self) -> Option<T> {
        lock(&self.inner).pop_back()
    }

    /// Creates a stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }

    /// Number of queued tasks (for tests and load reporting).
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Worker::new()
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest queued task (opposite end from the owner).
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_stealer_is_fifo() {
        let w = Worker::new();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "owner pops the newest");
        assert_eq!(s.steal(), Steal::Success(1), "stealer takes the oldest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn steals_race_safely() {
        let w = Worker::new();
        for i in 0..1000 {
            w.push(i);
        }
        let stolen: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Steal::Success(t) = s.steal() {
                            got.push(t);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut all = stolen;
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>(), "each task stolen exactly once");
    }
}
