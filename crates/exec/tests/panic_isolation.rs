//! Property suite for the pool's panic isolation: an arbitrary subset
//! of tasks panicking must surface as per-task errors in exactly those
//! slots, with every sibling's result intact and in input order.

use proptest::prelude::*;
use soff_exec::{run_tasks, TaskError};
use std::sync::Once;

/// The default panic hook prints a backtrace per injected panic, which
/// turns a 64-case property run into pages of noise; the panics here
/// are expected, so silence the hook once for the whole binary.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// A deterministic "does task `i` panic" predicate derived from `seed`
/// (splitmix64 bit-mix, one bit per task).
fn panics(seed: u64, i: usize) -> bool {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Injected task panics become per-cell errors without losing any
    /// sibling result, at every pool width.
    #[test]
    fn injected_panics_surface_per_cell(
        n in 0usize..40,
        jobs in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        quiet_panics();
        let items: Vec<usize> = (0..n).collect();
        let results = run_tasks(jobs, items, |_, i| {
            if panics(seed, i) {
                panic!("injected panic in task {i}");
            }
            i * 3 + 1
        });
        prop_assert_eq!(results.len(), n);
        for (i, r) in results.iter().enumerate() {
            if panics(seed, i) {
                match r {
                    Err(TaskError::Panicked { message }) => {
                        let expected = format!("injected panic in task {i}");
                        prop_assert!(
                            message.contains(&expected),
                            "slot {} carries the wrong panic: {}", i, message
                        );
                    }
                    other => prop_assert!(false, "slot {} should have panicked, got {:?}", i, other),
                }
            } else {
                prop_assert_eq!(r.clone(), Ok(i * 3 + 1), "sibling {} lost or corrupted", i);
            }
        }
    }

    /// The parallel pool and the sequential path agree on the full
    /// result vector (values and error slots) for any panic pattern.
    #[test]
    fn parallel_matches_sequential(
        n in 0usize..32,
        jobs in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        quiet_panics();
        let work = |_, i: usize| {
            if panics(seed, i) {
                panic!("boom {i}");
            }
            i as u64 * 7
        };
        let seq = run_tasks(1, (0..n).collect(), work);
        let par = run_tasks(jobs, (0..n).collect(), work);
        prop_assert_eq!(seq, par);
    }
}
