//! # SOFF — an OpenCL high-level synthesis framework for FPGAs
//!
//! A complete, simulation-based reproduction of *"SOFF: An OpenCL
//! High-Level Synthesis Framework for FPGAs"* (ISCA 2020). SOFF compiles
//! OpenCL C kernels into datapaths that execute many kernel work-items in
//! a run-time-pipelined (handshake/dataflow) fashion, synthesizes a memory
//! subsystem of per-buffer caches and banked local-memory blocks, and
//! handles variable-latency instructions, complex control flow, work-group
//! barriers, and atomics — formally, not best-effort.
//!
//! This crate is the facade: it re-exports the whole stack and offers a
//! one-call compiler driver. The pieces are:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`frontend`] | §II-B, §III-C2 | OpenCL C preprocessor, lexer, parser, sema |
//! | [`ir`] | §III-C2 | SSA IR, inlining, liveness, pointer analysis, DFGs, control tree, interpreter |
//! | [`ilp`] | §IV-C | exact ILP solver for FIFO balancing |
//! | [`datapath`] | §IV | functional units, basic pipelines, glue, deadlock bounds, resource model |
//! | [`mem`] | §V | caches, DRAM, arbiters, local memory blocks, private memory |
//! | [`sim`] | §III-B | cycle-level simulator of the reconfigurable region |
//! | [`rtl`] | §III-C | Verilog emission + the SOFF IP-core library |
//! | [`runtime`] | §III-C1 | OpenCL-style host API over the simulated device |
//! | [`baseline`] | §VI | Intel FPGA SDK / Xilinx SDAccel behavioural models |
//!
//! ## Quickstart
//!
//! ```
//! use soff::runtime::{Context, Device, Program};
//!
//! let device = Device::system_a();
//! let program = Program::build(
//!     "__kernel void vadd(__global const float* a, __global const float* b,
//!                         __global float* c) {
//!          int i = get_global_id(0);
//!          c[i] = a[i] + b[i];
//!      }",
//!     &[],
//!     &device,
//! )?;
//! let mut ctx = Context::new(device);
//! let (a, b, c) = (ctx.create_buffer(64), ctx.create_buffer(64), ctx.create_buffer(64));
//! ctx.write_buffer_f32(a, &[1.0; 16])?;
//! ctx.write_buffer_f32(b, &[2.0; 16])?;
//! let mut kernel = program.kernel("vadd").unwrap();
//! kernel.set_arg_buffer(0, a).set_arg_buffer(1, b).set_arg_buffer(2, c);
//! let stats = ctx.enqueue_ndrange(&kernel, soff::NdRange::dim1(16, 4))?;
//! assert_eq!(ctx.read_buffer_f32(c)?, vec![3.0; 16]);
//! println!("executed in {} simulated cycles on {} datapath instance(s)",
//!          stats.sim.cycles, stats.num_instances);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use soff_baseline as baseline;
pub use soff_datapath as datapath;
pub use soff_frontend as frontend;
pub use soff_ilp as ilp;
pub use soff_ir as ir;
pub use soff_mem as mem;
pub use soff_rtl as rtl;
pub use soff_runtime as runtime;
pub use soff_sim as sim;

pub use soff_ir::NdRange;

/// Everything a typical user needs, in one import.
pub mod prelude {
    pub use crate::compiler::{compile, Compiled};
    pub use crate::NdRange;
    pub use soff_runtime::{Context, Device, Program};
}

/// The end-to-end compiler driver (Fig. 3 (b)): source → SSA → datapaths →
/// Verilog, without executing anything.
pub mod compiler {
    use soff_datapath::{Datapath, LatencyModel};
    use soff_frontend::Diagnostic;
    use soff_ir::Module;
    use soff_rtl::RtlModule;

    /// The output of the OpenCL-C-to-Verilog compiler for one program.
    #[derive(Debug)]
    pub struct Compiled {
        /// SSA IR of every kernel.
        pub module: Module,
        /// One synthesized datapath per kernel.
        pub datapaths: Vec<Datapath>,
        /// RTL of the reconfigurable region, one module per kernel.
        pub rtl: Vec<RtlModule>,
        /// The target-independent IP-core library the RTL instantiates.
        pub ip_library: String,
    }

    /// Compiles OpenCL C source through the full SOFF flow.
    ///
    /// `instances` is the number of datapath copies to emit in the RTL
    /// (normally chosen by the resource model; see
    /// `soff_runtime::Program::build` for the integrated flow).
    ///
    /// # Errors
    ///
    /// Returns the first frontend/lowering [`Diagnostic`].
    pub fn compile(source: &str, instances: u32) -> Result<Compiled, Diagnostic> {
        let parsed = soff_frontend::compile(source, &[])?;
        let module = soff_ir::build::lower(&parsed)?;
        let lat = LatencyModel::default();
        let mut datapaths = Vec::new();
        let mut rtl = Vec::new();
        for kernel in &module.kernels {
            let dp = Datapath::build(kernel, &lat);
            let m = soff_rtl::emit_kernel(kernel, &dp, instances)
                .expect("RTL emission is infallible for valid datapaths");
            datapaths.push(dp);
            rtl.push(m);
        }
        Ok(Compiled { module, datapaths, rtl, ip_library: soff_rtl::ipcores::emit_ip_library() })
    }
}

#[cfg(test)]
mod tests {
    use super::compiler::compile;

    #[test]
    fn end_to_end_compile_produces_all_artifacts() {
        let c = compile(
            "__kernel void k(__global float* a, int n) {
                float s = 0.0f;
                for (int i = 0; i < n; i++) s += a[i];
                a[0] = s;
            }",
            2,
        )
        .unwrap();
        assert_eq!(c.module.kernels.len(), 1);
        assert_eq!(c.datapaths.len(), 1);
        assert!(c.rtl[0].source.contains("module soff_kernel_k"));
        assert!(c.ip_library.contains("module soff_chan"));
    }

    #[test]
    fn compile_errors_surface() {
        assert!(compile("__kernel void k() { nope(); }", 1).is_err());
    }
}
