//! Histogram property suite: merge associativity/commutativity, bucket
//! monotonicity, recorded-count conservation, and nearest-rank
//! percentile agreement with a sorted-vector oracle.

use proptest::prelude::*;
use soff_obs::metrics::{bucket_index, bucket_upper_bound, NUM_BUCKETS};
use soff_obs::{Histogram, HistogramSnapshot};

/// Deterministic value stream: splitmix64 over `seed`, scaled into a
/// mixed range so small and huge values both occur.
fn values(seed: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut z = seed;
    for _ in 0..n {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        // Mix magnitudes: shift by 0..=63 bits depending on the value.
        out.push(x >> (x % 64));
    }
    out
}

fn snap_of(vals: &[u64]) -> HistogramSnapshot {
    let h = Histogram::detached();
    for &v in vals {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Merging is associative and commutative: any grouping of three
    /// shards produces the same snapshot.
    #[test]
    fn merge_is_associative_and_commutative(
        seed in 0u64..1_000_000,
        na in 0usize..50,
        nb in 0usize..50,
        nc in 0usize..50,
    ) {
        let a = snap_of(&values(seed, na));
        let b = snap_of(&values(seed ^ 0xdead_beef, nb));
        let c = snap_of(&values(seed ^ 0x1234_5678, nc));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&a.merge(&b), &b.merge(&a));
        // Merge of shards equals histogram of the concatenation.
        let mut all = values(seed, na);
        all.extend(values(seed ^ 0xdead_beef, nb));
        all.extend(values(seed ^ 0x1234_5678, nc));
        prop_assert_eq!(&left, &snap_of(&all));
    }

    /// Conservation: count equals the number of recorded values, equals
    /// the bucket sum; sum equals the value total.
    #[test]
    fn recorded_count_is_conserved(seed in 0u64..1_000_000, n in 0usize..200) {
        let vals = values(seed, n);
        let s = snap_of(&vals);
        prop_assert_eq!(s.count, n as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        let total: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, total);
    }

    /// Every value lands in the unique bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_are_monotone_and_tight(v in proptest::arbitrary::any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_upper_bound(i) >= v);
        if i > 0 {
            prop_assert!(bucket_upper_bound(i - 1) < v);
        }
    }

    /// The histogram's nearest-rank percentile equals the bucket upper
    /// bound of the sorted-vector nearest-rank oracle — the exact
    /// semantics `serve_soak` switched to.
    #[test]
    fn percentile_matches_sorted_oracle(
        seed in 0u64..1_000_000,
        n in 1usize..200,
        p_mil in 1u32..1001,
    ) {
        let p = p_mil as f64 / 1000.0;
        let mut vals = values(seed, n);
        let s = snap_of(&vals);
        vals.sort_unstable();
        // Nearest rank: 1-based rank ceil(p*N).
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        let oracle = vals[rank - 1];
        prop_assert_eq!(s.percentile(p), bucket_upper_bound(bucket_index(oracle)));
    }
}

#[test]
fn bucket_monotonicity_exhaustive_over_powers_of_two() {
    // Bucket index is non-decreasing in the value, stepping at powers
    // of two exactly.
    let mut last = 0;
    for bit in 0..64u32 {
        let v = 1u64 << bit;
        let i = bucket_index(v);
        assert!(i >= last);
        assert_eq!(i, bucket_index(v + (v - 1).min(1)));
        if v > 1 {
            assert_eq!(bucket_index(v - 1), i - 1, "boundary at 2^{bit}");
        }
        last = i;
    }
}
