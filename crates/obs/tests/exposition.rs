//! Exposition-format tests: deterministic ordering, label escaping,
//! empty-registry output, and histogram series shape.

use soff_obs::Registry;

#[test]
fn empty_registry_exposes_empty_string() {
    let r = Registry::new();
    assert_eq!(r.expose(), "");
    assert_eq!(r.snapshot_json(), "{\"metrics\":[]}");
    soff_obs::jsonlint::validate(&r.snapshot_json()).unwrap();
}

#[test]
fn exposition_order_is_deterministic_and_sorted() {
    // Register in scrambled order; output must sort by name then labels.
    let r = Registry::new();
    r.counter("zeta_total", &[]).inc();
    r.counter("alpha_total", &[("tenant", "t1")]).add(2);
    r.counter("alpha_total", &[("tenant", "t0")]).add(1);
    r.gauge("mid_gauge", &[]).set(1.5);

    let text = r.expose();
    let expected = "\
# TYPE alpha_total counter
alpha_total{tenant=\"t0\"} 1
alpha_total{tenant=\"t1\"} 2
# TYPE mid_gauge gauge
mid_gauge 1.5
# TYPE zeta_total counter
zeta_total 1
";
    assert_eq!(text, expected);

    // Two renders of the same state are byte-identical.
    assert_eq!(text, r.expose());

    // A second registry populated in a different order renders the same.
    let r2 = Registry::new();
    r2.gauge("mid_gauge", &[]).set(1.5);
    r2.counter("alpha_total", &[("tenant", "t0")]).add(1);
    r2.counter("zeta_total", &[]).inc();
    r2.counter("alpha_total", &[("tenant", "t1")]).add(2);
    assert_eq!(r2.expose(), expected);
}

#[test]
fn label_values_are_escaped() {
    let r = Registry::new();
    r.counter("m", &[("path", "a\\b"), ("msg", "say \"hi\"\nbye")]).inc();
    let text = r.expose();
    assert!(text.contains("msg=\"say \\\"hi\\\"\\nbye\""), "{text}");
    assert!(text.contains("path=\"a\\\\b\""), "{text}");
    // And the JSON snapshot must survive its own escaping.
    soff_obs::jsonlint::validate(&r.snapshot_json()).unwrap();
}

#[test]
fn histogram_series_are_cumulative_and_end_with_inf() {
    let r = Registry::new();
    let h = r.histogram("latency_us", &[("tenant", "t0")]);
    // Values 1, 1, 3, 9: buckets le=1 -> 2, le=3 -> 1, le=15 -> 1.
    for v in [1u64, 1, 3, 9] {
        h.record(v);
    }
    let text = r.expose();
    assert!(text.contains("# TYPE latency_us histogram"), "{text}");
    assert!(text.contains("latency_us_bucket{tenant=\"t0\",le=\"1\"} 2"), "{text}");
    assert!(text.contains("latency_us_bucket{tenant=\"t0\",le=\"3\"} 3"), "{text}");
    assert!(text.contains("latency_us_bucket{tenant=\"t0\",le=\"15\"} 4"), "{text}");
    assert!(text.contains("latency_us_bucket{tenant=\"t0\",le=\"+Inf\"} 4"), "{text}");
    assert!(text.contains("latency_us_sum{tenant=\"t0\"} 14"), "{text}");
    assert!(text.contains("latency_us_count{tenant=\"t0\"} 4"), "{text}");

    // Cumulative counts never decrease down the bucket list.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.starts_with("latency_us_bucket")) {
        let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v >= last, "bucket series not cumulative: {text}");
        last = v;
    }
}

#[test]
fn non_finite_gauges_render_prometheus_spellings() {
    let r = Registry::new();
    r.gauge("g_nan", &[]).set(f64::NAN);
    r.gauge("g_pinf", &[]).set(f64::INFINITY);
    r.gauge("g_ninf", &[]).set(f64::NEG_INFINITY);
    let text = r.expose();
    assert!(text.contains("g_nan NaN"), "{text}");
    assert!(text.contains("g_pinf +Inf"), "{text}");
    assert!(text.contains("g_ninf -Inf"), "{text}");
    // JSON snapshot must stay valid despite non-finite values.
    soff_obs::jsonlint::validate(&r.snapshot_json()).unwrap();
}
