//! Span tracing: begin/end events with correlation IDs, recorded into a
//! bounded ring buffer.
//!
//! A span is two events — `Begin` and `End` — sharing a name and a
//! [`CorrId`]. Instant events mark points (admit, reject, complete).
//! The buffer is a fixed-capacity ring guarded by a mutex: recording is
//! a push + two index bumps, cheap enough for the serve control path
//! (which already serializes on the server mutex), and bounded so a
//! soak run cannot grow memory without limit. When the ring wraps, the
//! oldest events are dropped and `dropped()` counts them, so exports can
//! say explicitly what they lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Correlates every event of one request: which tenant session it
/// belongs to and its per-session sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CorrId {
    /// Session (tenant connection) identifier.
    pub session: u64,
    /// Job sequence number within the session.
    pub seq: u64,
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Start of a named interval.
    Begin,
    /// End of the most recent matching `Begin`.
    End,
    /// A zero-duration point event.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Interval or point name (static on purpose: span names are code,
    /// not data, which keeps recording allocation-free).
    pub name: &'static str,
    /// Which request this event belongs to.
    pub corr: CorrId,
    /// Tenant name (shared: one `Arc<str>` per session, cloned per
    /// event, so recording stays allocation-free).
    pub tenant: Arc<str>,
    /// Marker kind.
    pub kind: SpanKind,
    /// Microseconds since the buffer's epoch.
    pub ts_us: u64,
    /// Free slot for a small payload (device slot, cycle count, …).
    pub arg: u64,
}

struct Ring {
    events: Vec<SpanEvent>,
    /// Index of the oldest event.
    head: usize,
    /// Number of live events (<= capacity).
    len: usize,
}

/// A bounded ring buffer of [`SpanEvent`]s with a shared epoch.
pub struct TraceBuf {
    ring: Mutex<Ring>,
    capacity: usize,
    epoch: Instant,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.lock();
        write!(f, "TraceBuf({}/{} events)", r.len, self.capacity)
    }
}

impl TraceBuf {
    /// A buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceBuf {
        let capacity = capacity.max(1);
        TraceBuf {
            ring: Mutex::new(Ring { events: Vec::with_capacity(capacity), head: 0, len: 0 }),
            capacity,
            epoch: Instant::now(),
            dropped: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Microseconds since this buffer's epoch (the timestamp recorded
    /// by the convenience methods below).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a pre-built event.
    pub fn push(&self, ev: SpanEvent) {
        let mut r = self.lock();
        if r.len < self.capacity {
            if r.events.len() < self.capacity {
                r.events.push(ev);
            } else {
                let idx = (r.head + r.len) % self.capacity;
                r.events[idx] = ev;
            }
            r.len += 1;
        } else {
            // Overwrite the oldest.
            let idx = r.head;
            r.events[idx] = ev;
            r.head = (r.head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn push_kind(
        &self,
        name: &'static str,
        corr: CorrId,
        tenant: &Arc<str>,
        kind: SpanKind,
        arg: u64,
    ) {
        let ts_us = self.now_us();
        self.push(SpanEvent { name, corr, tenant: Arc::clone(tenant), kind, ts_us, arg });
    }

    /// Records a `Begin` event now.
    pub fn begin(&self, name: &'static str, corr: CorrId, tenant: &Arc<str>, arg: u64) {
        self.push_kind(name, corr, tenant, SpanKind::Begin, arg);
    }

    /// Records an `End` event now.
    pub fn end(&self, name: &'static str, corr: CorrId, tenant: &Arc<str>, arg: u64) {
        self.push_kind(name, corr, tenant, SpanKind::End, arg);
    }

    /// Records an `Instant` event now.
    pub fn instant(&self, name: &'static str, corr: CorrId, tenant: &Arc<str>, arg: u64) {
        self.push_kind(name, corr, tenant, SpanKind::Instant, arg);
    }

    /// Events dropped because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Live events, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let r = self.lock();
        let mut out = Vec::with_capacity(r.len);
        for i in 0..r.len {
            out.push(r.events[(r.head + i) % self.capacity].clone());
        }
        out
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pairs `Begin`/`End` events from a snapshot into completed intervals,
/// keyed by `(name, corr)`. Nested/repeated spans with the same key pair
/// LIFO (innermost `End` closes the most recent `Begin`). Returns the
/// completed intervals plus any unmatched begins/ends (balance check
/// material for tests).
///
/// Assumes nothing was dropped from the snapshot's source; if the ring
/// may have wrapped, use [`pair_spans_with_drops`] with the buffer's
/// [`TraceBuf::dropped`] count so eviction orphans are not misreported
/// as instrumentation imbalance.
pub fn pair_spans(events: &[SpanEvent]) -> PairedSpans {
    pair_spans_with_drops(events, 0)
}

/// [`pair_spans`] for a snapshot whose source ring dropped `dropped`
/// events. The ring evicts oldest-first and an `End` is always recorded
/// after its `Begin`, so a surviving `Begin` can never have lost its
/// `End` to eviction — but a surviving `End` may well have lost its
/// `Begin`. Hence, when `dropped > 0`, an `End` with no open `Begin` is
/// classified as [`PairedSpans::dropped_ends`] (truncation, expected on
/// a wrapped ring) rather than [`PairedSpans::unmatched_ends`] (a
/// genuine begin/end imbalance in the instrumentation).
pub fn pair_spans_with_drops(events: &[SpanEvent], dropped: u64) -> PairedSpans {
    use std::collections::HashMap;
    let mut open: HashMap<(&'static str, CorrId), Vec<usize>> = HashMap::new();
    let mut complete = Vec::new();
    let mut unmatched_ends = Vec::new();
    let mut dropped_ends = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            SpanKind::Begin => open.entry((ev.name, ev.corr)).or_default().push(i),
            SpanKind::End => match open.get_mut(&(ev.name, ev.corr)).and_then(Vec::pop) {
                Some(b) => complete.push(CompletedSpan {
                    name: ev.name,
                    corr: ev.corr,
                    tenant: Arc::clone(&ev.tenant),
                    start_us: events[b].ts_us,
                    end_us: ev.ts_us,
                    arg: ev.arg,
                }),
                None if dropped > 0 => dropped_ends.push(i),
                None => unmatched_ends.push(i),
            },
            SpanKind::Instant => {}
        }
    }
    let mut unmatched_begins: Vec<usize> =
        open.into_values().flatten().collect();
    unmatched_begins.sort_unstable();
    complete.sort_by_key(|s| (s.start_us, s.end_us));
    PairedSpans { complete, unmatched_begins, unmatched_ends, dropped_ends }
}

/// A matched `Begin`/`End` interval.
#[derive(Debug, Clone)]
pub struct CompletedSpan {
    /// Span name.
    pub name: &'static str,
    /// Correlation ID shared by both endpoints.
    pub corr: CorrId,
    /// Tenant recorded on the `End` event.
    pub tenant: Arc<str>,
    /// Begin timestamp (µs since epoch).
    pub start_us: u64,
    /// End timestamp (µs since epoch).
    pub end_us: u64,
    /// Payload from the `End` event.
    pub arg: u64,
}

/// Result of [`pair_spans`].
#[derive(Debug, Clone)]
pub struct PairedSpans {
    /// Completed intervals sorted by start time.
    pub complete: Vec<CompletedSpan>,
    /// Indices of `Begin` events with no matching `End`.
    pub unmatched_begins: Vec<usize>,
    /// Indices of `End` events with no matching `Begin` in a snapshot
    /// that lost nothing — a genuine instrumentation imbalance.
    pub unmatched_ends: Vec<usize>,
    /// Indices of `End` events whose `Begin` was (or may have been)
    /// evicted by a ring wrap — truncation, not imbalance. Always empty
    /// when the pairing was told nothing was dropped.
    pub dropped_ends: Vec<usize>,
}

impl PairedSpans {
    /// Whether every begin matched an end and vice versa. Ends orphaned
    /// by ring eviction ([`PairedSpans::dropped_ends`]) do not count
    /// against balance: they indicate a bounded buffer doing its job,
    /// not missing instrumentation.
    pub fn balanced(&self) -> bool {
        self.unmatched_begins.is_empty() && self.unmatched_ends.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, seq: u64, kind: SpanKind, ts_us: u64) -> SpanEvent {
        SpanEvent {
            name,
            corr: CorrId { session: 1, seq },
            tenant: Arc::from("t"),
            kind,
            ts_us,
            arg: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let buf = TraceBuf::new(3);
        for i in 0..5u64 {
            buf.push(ev("a", i, SpanKind::Instant, i));
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap.iter().map(|e| e.corr.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(buf.dropped(), 2);
    }

    #[test]
    fn pairing_is_lifo_per_key_and_reports_imbalance() {
        let events = vec![
            ev("slice", 0, SpanKind::Begin, 10),
            ev("slice", 1, SpanKind::Begin, 11), // different corr, own stack
            ev("slice", 0, SpanKind::End, 20),
            ev("queue", 0, SpanKind::End, 21), // never began
            ev("slice", 1, SpanKind::End, 30),
            ev("queue", 1, SpanKind::Begin, 31), // never ends
        ];
        let paired = pair_spans(&events);
        assert_eq!(paired.complete.len(), 2);
        assert_eq!(paired.complete[0].start_us, 10);
        assert_eq!(paired.complete[0].end_us, 20);
        assert_eq!(paired.unmatched_ends, vec![3]);
        assert_eq!(paired.unmatched_begins, vec![5]);
        assert!(!paired.balanced());
    }

    #[test]
    fn wrapped_ring_orphans_are_truncation_not_imbalance() {
        // Two spans, four events, through a ring of three: the first
        // span's `Begin` is evicted, its `End` survives as an orphan.
        let buf = TraceBuf::new(3);
        buf.push(ev("outer", 0, SpanKind::Begin, 0));
        buf.push(ev("inner", 1, SpanKind::Begin, 1));
        buf.push(ev("inner", 1, SpanKind::End, 2));
        buf.push(ev("outer", 0, SpanKind::End, 3));
        assert_eq!(buf.dropped(), 1);
        let snap = buf.snapshot();
        let paired = pair_spans_with_drops(&snap, buf.dropped());
        assert_eq!(paired.complete.len(), 1, "inner span still pairs");
        assert_eq!(paired.dropped_ends, vec![2], "orphan end is truncation");
        assert!(paired.unmatched_ends.is_empty(), "no imbalance was recorded");
        assert!(paired.balanced(), "a wrapped ring is not an imbalance");
        // The drop-unaware pairing misreads the same snapshot.
        assert!(!pair_spans(&snap).balanced());
    }

    /// Generates a balanced event stream: each step either opens a new
    /// span or closes the most recently opened one (global LIFO, hence
    /// LIFO per key too); whatever is left open closes at the end.
    /// Correlation seqs collide on purpose (`mod 4`) so pairing has to
    /// get the LIFO stacks right, not just unique keys.
    fn balanced_events(ops: &[(bool, u8)]) -> Vec<SpanEvent> {
        const NAMES: [&str; 3] = ["slice", "queue", "build"];
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let mut out = Vec::new();
        let mut next = 0u64;
        for (ts, &(close, ni)) in ops.iter().enumerate() {
            if close && !stack.is_empty() {
                let (n, s) = stack.pop().unwrap();
                out.push(ev(NAMES[n], s, SpanKind::End, ts as u64));
            } else {
                let n = (ni % 3) as usize;
                let s = next % 4;
                next += 1;
                stack.push((n, s));
                out.push(ev(NAMES[n], s, SpanKind::Begin, ts as u64));
            }
        }
        let mut ts = ops.len() as u64;
        while let Some((n, s)) = stack.pop() {
            out.push(ev(NAMES[n], s, SpanKind::End, ts));
            ts += 1;
        }
        out
    }

    use proptest::prelude::*;

    proptest! {
        /// Pushing any balanced stream through any ring must never read
        /// as instrumentation imbalance: ends orphaned by eviction are
        /// truncation, and a surviving begin cannot have lost its end
        /// (the end is newer, and the ring evicts oldest-first). On a
        /// ring large enough to hold everything, nothing drops and
        /// every span pairs.
        #[test]
        fn wrapping_never_fabricates_imbalance(
            ops in prop::collection::vec((any::<bool>(), 0u8..3), 0..60),
            cap in 1usize..16,
        ) {
            let events = balanced_events(&ops);
            let small = TraceBuf::new(cap);
            for e in &events {
                small.push(e.clone());
            }
            let paired = pair_spans_with_drops(&small.snapshot(), small.dropped());
            prop_assert!(paired.unmatched_ends.is_empty());
            prop_assert!(paired.balanced());

            let big = TraceBuf::new(events.len().max(1));
            for e in &events {
                big.push(e.clone());
            }
            prop_assert_eq!(big.dropped(), 0);
            let full = pair_spans_with_drops(&big.snapshot(), 0);
            prop_assert!(full.dropped_ends.is_empty());
            prop_assert!(full.balanced());
            prop_assert_eq!(full.complete.len() * 2, events.len());
        }
    }

    #[test]
    fn timestamps_are_monotone_per_buffer() {
        let buf = TraceBuf::new(8);
        let c = CorrId::default();
        let t: Arc<str> = Arc::from("t");
        buf.begin("x", c, &t, 0);
        buf.end("x", c, &t, 0);
        let snap = buf.snapshot();
        assert!(snap[0].ts_us <= snap[1].ts_us);
        assert!(pair_spans(&snap).balanced());
    }
}
