//! The metrics registry: named, labeled counters, gauges, and
//! fixed-bucket log-scale histograms.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path updates are lock-free.** A metric handle is an `Arc`
//!    around atomic cells; `inc`/`record` never take the registry lock.
//!    The registry's mutex is touched only at registration time (once
//!    per `(name, labels)` identity per process) and when rendering an
//!    exposition.
//! 2. **Exposition is deterministic.** Metrics render sorted by name,
//!    then by rendered label set, so two dumps of the same state are
//!    byte-identical — the property CI diffs rely on.
//! 3. **No dependencies.** The Prometheus-style text format and the JSON
//!    snapshot are emitted by hand (same philosophy as
//!    `soff_bench::json`).
//!
//! Histograms use power-of-two buckets: value `0` lands in bucket 0,
//! and a value `v > 0` lands in bucket `64 - v.leading_zeros()`, i.e.
//! bucket `i` covers `[2^(i-1), 2^i - 1]`. Percentiles use **explicit
//! nearest-rank semantics**: for `0 < p <= 1` over `N` recorded values,
//! the reported quantile is the value of rank `ceil(p·N)` (1-based), and
//! the histogram reports that rank's bucket upper bound — a conservative
//! (never underestimating) answer that is stable across merge order.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of histogram buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

// ---------------------------------------------------------------- counter

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// A counter not attached to any registry (it never appears in an
    /// exposition; useful for tests and optional instrumentation).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (for `reset_stats`-style APIs; the metric
    /// stays registered).
    pub fn reset(&self) {
        self.cell.value.store(0, Ordering::Relaxed);
    }
}

// ------------------------------------------------------------------ gauge

#[derive(Debug, Default)]
struct GaugeCell {
    /// The current value's `f64` bit pattern.
    bits: AtomicU64,
}

/// A gauge holding one `f64` (set-to-current-value semantics).
/// Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are low-frequency by design).
    pub fn add(&self, delta: f64) {
        let mut cur = self.cell.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.cell.bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Relaxed))
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0.0);
    }
}

// -------------------------------------------------------------- histogram

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log-scale histogram of `u64` observations.
/// Cloning shares the same cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow, like any counter).
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the cells. Concurrent recorders may land
    /// between the bucket and count reads, so the snapshot re-derives
    /// `count` from the buckets — conservation (`Σ buckets == count`)
    /// holds in every snapshot by construction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum: self.cell.sum.load(Ordering::Relaxed) }
    }

    /// Nearest-rank percentile over the live cells (see
    /// [`HistogramSnapshot::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Zeroes all cells.
    pub fn reset(&self) {
        for b in &self.cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.cell.count.store(0, Ordering::Relaxed);
        self.cell.sum.store(0, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations (== `buckets.iter().sum()`).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Element-wise merge: the histogram of the union of both
    /// observation sets. Associative and commutative (bucket-wise `+`),
    /// which the property tests pin down.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&other.buckets)
            .map(|(a, b)| a.wrapping_add(*b))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.wrapping_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Explicit nearest-rank percentile: for `0 < p <= 1` the value of
    /// rank `ceil(p·N)` (1-based) over the sorted observations, reported
    /// as its bucket's inclusive upper bound. `p <= 0` reports the
    /// lowest bucket bound with any observation; an empty histogram
    /// reports 0.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest rank: ceil(p * N), clamped to [1, N].
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// `(inclusive upper bound, count)` for every non-empty bucket, in
    /// increasing bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

// --------------------------------------------------------------- registry

/// The kind of a registered metric (drives the exposition `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> Kind {
        match self {
            Handle::Counter(_) => Kind::Counter,
            Handle::Gauge(_) => Kind::Gauge,
            Handle::Histogram(_) => Kind::Histogram,
        }
    }
}

/// A metric identity: name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

/// A registry of named, labeled metrics.
///
/// `get-or-create` registration: asking twice for the same
/// `(name, labels)` returns handles sharing the same cells. Asking for
/// an existing name with a *different metric kind* returns a detached
/// handle (updates work, nothing is double-registered) — a programming
/// error that must not take down a serving process.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Handle>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.lock().len();
        write!(f, "Registry({n} metrics)")
    }
}

/// The process-wide registry every subsystem defaults to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<MetricKey, Handle>> {
        // Registration and rendering never panic mid-update; recovering
        // from poison keeps metrics flowing after an unrelated panic.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], fresh: Handle) -> Handle {
        let key = key_of(name, labels);
        let mut m = self.lock();
        match m.get(&key) {
            Some(existing) if existing.kind() == fresh.kind() => existing.clone(),
            Some(_) => fresh, // kind clash: hand back a detached cell
            None => {
                m.insert(key, fresh.clone());
                fresh
            }
        }
    }

    /// The counter for `(name, labels)`, creating it on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, Handle::Counter(Counter::detached())) {
            Handle::Counter(c) => c,
            _ => unreachable!("register preserves kind"),
        }
    }

    /// The gauge for `(name, labels)`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, Handle::Gauge(Gauge::detached())) {
            Handle::Gauge(g) => g,
            _ => unreachable!("register preserves kind"),
        }
    }

    /// The histogram for `(name, labels)`, creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, Handle::Histogram(Histogram::detached())) {
            Handle::Histogram(h) => h,
            _ => unreachable!("register preserves kind"),
        }
    }

    /// Number of registered metric series.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Renders the Prometheus-style text exposition. Deterministic:
    /// metrics sort by name then label set (the registry is a `BTreeMap`
    /// over exactly that key), one `# TYPE` line per name.
    pub fn expose(&self) -> String {
        let metrics = self.lock().clone();
        drop_guard_expose(&metrics)
    }

    /// Renders a JSON snapshot (`{"metrics":[...]}`), same order as
    /// [`Registry::expose`].
    pub fn snapshot_json(&self) -> String {
        let metrics = self.lock().clone();
        let mut out = String::from("{\"metrics\":[");
        for (i, ((name, labels), handle)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\"", json_escape(name));
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
            match handle {
                Handle::Counter(c) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{}", c.get());
                }
                Handle::Gauge(g) => {
                    let v = g.get();
                    if v.is_finite() {
                        let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
                    } else {
                        out.push_str(",\"type\":\"gauge\",\"value\":null");
                    }
                }
                Handle::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        s.count, s.sum
                    );
                    for (j, (le, c)) in s.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{le},\"count\":{c}}}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Zeroes every registered cell (series stay registered).
    pub fn reset_all(&self) {
        for handle in self.lock().values() {
            match handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Escapes a label value for the text exposition (`\` `"` and newline).
fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `{label="v",...}` (empty string for no labels), with an
/// optional extra pair appended (histogram `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", label_escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

fn drop_guard_expose(metrics: &BTreeMap<MetricKey, Handle>) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for ((name, labels), handle) in metrics {
        if last_name != Some(name.as_str()) {
            let ty = match handle.kind() {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {ty}");
            last_name = Some(name.as_str());
        }
        match handle {
            Handle::Counter(c) => {
                let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
            }
            Handle::Gauge(g) => {
                let v = g.get();
                if v.is_finite() {
                    let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                } else {
                    // Prometheus text allows +Inf/-Inf/NaN spellings.
                    let s = if v.is_nan() {
                        "NaN"
                    } else if v > 0.0 {
                        "+Inf"
                    } else {
                        "-Inf"
                    };
                    let _ = writeln!(out, "{name}{} {s}", render_labels(labels, None));
                }
            }
            Handle::Histogram(h) => {
                let s = h.snapshot();
                // Cumulative buckets up to the highest non-empty one,
                // then +Inf — compact but parseable as standard
                // histogram series.
                let mut cum = 0u64;
                let top = s
                    .buckets
                    .iter()
                    .rposition(|&c| c > 0)
                    .map_or(0, |i| i + 1)
                    .min(NUM_BUCKETS - 1);
                for (i, &c) in s.buckets.iter().enumerate().take(top) {
                    cum += c;
                    let le = bucket_upper_bound(i).to_string();
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        render_labels(labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    render_labels(labels, Some(("le", "+Inf"))),
                    s.count
                );
                let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, None), s.sum);
                let _ =
                    writeln!(out, "{name}_count{} {}", render_labels(labels, None), s.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket bound is >= the value, and the previous
        // bucket's bound is < the value (tightness).
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper_bound(i) >= v);
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v);
            }
        }
    }

    #[test]
    fn counter_and_gauge_share_cells_through_the_registry() {
        let r = Registry::new();
        let a = r.counter("requests_total", &[("tenant", "t0")]);
        let b = r.counter("requests_total", &[("tenant", "t0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = r.gauge("depth", &[]);
        g.set(4.5);
        g.add(0.5);
        assert_eq!(r.gauge("depth", &[]).get(), 5.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_clash_degrades_to_a_detached_handle() {
        let r = Registry::new();
        let c = r.counter("m", &[]);
        c.inc();
        let h = r.histogram("m", &[]);
        h.record(7); // works, but is not registered
        assert_eq!(r.len(), 1);
        assert!(r.expose().contains("# TYPE m counter"));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let h = Histogram::detached();
        // 1..=100 (each lands in its own log bucket region).
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank ceil(0.5*100) = 50 → value 50 → bucket [32,63] → bound 63.
        assert_eq!(s.percentile(0.50), 63);
        // Rank ceil(0.99*100) = 99 → value 99 → bucket [64,127] → 127.
        assert_eq!(s.percentile(0.99), 127);
        // p=1 → rank 100 → value 100 → 127. p tiny → rank 1 → value 1.
        assert_eq!(s.percentile(1.0), 127);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
    }

    #[test]
    fn histogram_conservation_in_snapshot() {
        let h = Histogram::detached();
        for v in [0u64, 1, 1, 5, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.count, 6);
    }

    #[test]
    fn reset_zeroes_every_kind() {
        let r = Registry::new();
        r.counter("c", &[]).inc();
        r.gauge("g", &[]).set(3.0);
        r.histogram("h", &[]).record(9);
        r.reset_all();
        assert_eq!(r.counter("c", &[]).get(), 0);
        assert_eq!(r.gauge("g", &[]).get(), 0.0);
        assert_eq!(r.histogram("h", &[]).count(), 0);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).add(2);
        r.histogram("h", &[]).record(5);
        let json = r.snapshot_json();
        crate::jsonlint::validate(&json).expect("snapshot must be valid JSON");
        assert!(json.contains("\"type\":\"counter\""));
        assert!(json.contains("\"type\":\"histogram\""));
    }
}
