//! A minimal JSON well-formedness checker (RFC 8259 grammar, no value
//! materialization).
//!
//! The exporters in this crate and in `soff_bench` build JSON by hand;
//! this validator is the independent check that what they emit actually
//! parses — used by the `soff_metrics` inspection bin, the CI metrics
//! smoke job, and the crate's own tests. It validates structure only
//! (it does not build a DOM), so linting a multi-megabyte trace costs
//! one pass and no allocation beyond the recursion stack, which is
//! depth-capped to keep crafted inputs from overflowing it.

/// Maximum nesting depth accepted (far above anything we emit).
const MAX_DEPTH: usize = 256;

/// Checks that `text` is exactly one valid JSON value (plus optional
/// surrounding whitespace). On failure, returns a message with the byte
/// offset of the problem.
pub fn validate(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), String> {
        if self.b[self.i..].starts_with(word) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string().map_err(|_| self.err("expected object key string"))?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "null",
            "true",
            "  [1, 2.5, -3e-2, \"a\\nb\", {\"k\": []}]  ",
            "{}",
            "{\"a\":{\"b\":[{\"c\":\"\\u00e9\"}]}}",
            "-0.5",
            "[]",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "[1] 2",
            "nul",
            "\"bad \\x escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(validate(&ok).is_ok());
    }
}
