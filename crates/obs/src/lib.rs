//! # soff-obs — service-wide observability for SOFF
//!
//! Three pieces, all dependency-free:
//!
//! - [`metrics`]: a registry of named, labeled counters, gauges, and
//!   log-scale histograms. Handles are lock-free `AtomicU64` cells; the
//!   registry renders a deterministic Prometheus-style text exposition
//!   ([`Registry::expose`]) and a JSON snapshot
//!   ([`Registry::snapshot_json`]).
//! - [`span`]: begin/end span events with tenant/session/job
//!   correlation IDs in a bounded ring buffer ([`TraceBuf`]), plus
//!   [`pair_spans`] to reassemble intervals.
//! - [`chrome`]: a streaming Chrome trace-event writer
//!   ([`ChromeTraceWriter`]) that lets callers merge serve-level spans
//!   with externally produced event streams (the simulator's per-cycle
//!   profiles) into one Perfetto timeline.
//!
//! [`jsonlint`] is the independent well-formedness check for everything
//! the exporters emit.
//!
//! ## Who uses what
//!
//! `soff_runtime::cache` registers its hit/miss/evict/corrupt counters
//! on [`metrics::global`]; `soff_exec` counts steals and queue latency
//! there too; `soff-serve` takes an optional per-server registry and
//! trace buffer via its config (defaulting to the global registry) and
//! instruments the admit → queue → slice → settle path; `serve_soak
//! --metrics/--trace` writes the exposition and the merged timeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod jsonlint;
pub mod metrics;
pub mod span;

pub use chrome::ChromeTraceWriter;
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{
    pair_spans, pair_spans_with_drops, CompletedSpan, CorrId, PairedSpans, SpanEvent, SpanKind,
    TraceBuf,
};
