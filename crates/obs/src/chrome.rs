//! Chrome trace-event JSON emission (the array flavor Perfetto and
//! `chrome://tracing` both accept).
//!
//! The writer is deliberately low-level: it hands out one "slot" per
//! event and leaves composing the merged timeline to the caller, so the
//! serve layer can interleave its own spans with event streams produced
//! elsewhere (the simulator's profiler export writes into the same
//! array via [`ChromeTraceWriter::parts`]). Each logical track is a
//! `(pid, tid)` pair; callers give each clock domain its own `pid` —
//! wall-clock serve spans and simulated-cycle kernel profiles must not
//! share one, since their microseconds mean different things.

use std::io::{self, Write};

/// Escapes a string for embedding in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streams a Chrome trace-event array to `w`.
pub struct ChromeTraceWriter<W: Write> {
    w: W,
    first: bool,
    finished: bool,
}

impl<W: Write> ChromeTraceWriter<W> {
    /// Opens the array.
    pub fn new(mut w: W) -> io::Result<ChromeTraceWriter<W>> {
        w.write_all(b"[")?;
        Ok(ChromeTraceWriter { w, first: true, finished: false })
    }

    /// Writes the separator for the next event and returns the raw
    /// writer; the caller emits exactly one JSON object.
    pub fn slot(&mut self) -> io::Result<&mut W> {
        if self.first {
            self.first = false;
        } else {
            self.w.write_all(b",\n")?;
        }
        Ok(&mut self.w)
    }

    /// Raw access for external emitters that manage their own commas:
    /// `(writer, first)` where `first` is true iff no event has been
    /// written yet. The emitter must leave `first` false after writing
    /// at least one event.
    pub fn parts(&mut self) -> (&mut W, &mut bool) {
        (&mut self.w, &mut self.first)
    }

    /// Names a process (Perfetto group header).
    pub fn process_name(&mut self, pid: u64, name: &str) -> io::Result<()> {
        let name = esc(name);
        let w = self.slot()?;
        write!(
            w,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        )
    }

    /// Names a thread (track) inside a process.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) -> io::Result<()> {
        let name = esc(name);
        let w = self.slot()?;
        write!(
            w,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        )
    }

    /// A complete span (`ph:"X"`): `[ts_us, ts_us + dur_us]`, with
    /// string args.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, String)],
    ) -> io::Result<()> {
        let name = esc(name);
        let w = self.slot()?;
        write!(
            w,
            "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us}"
        )?;
        write_args(w, args)?;
        write!(w, "}}")
    }

    /// An instant event (`ph:"i"`, thread scope).
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts_us: u64,
        args: &[(&str, String)],
    ) -> io::Result<()> {
        let name = esc(name);
        let w = self.slot()?;
        write!(
            w,
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"pid\":{pid},\
             \"tid\":{tid},\"ts\":{ts_us}"
        )?;
        write_args(w, args)?;
        write!(w, "}}")
    }

    /// A counter sample (`ph:"C"`): Perfetto renders one area chart per
    /// counter name with one series per arg key.
    pub fn counter(
        &mut self,
        pid: u64,
        name: &str,
        ts_us: u64,
        series: &[(&str, f64)],
    ) -> io::Result<()> {
        let name = esc(name);
        let w = self.slot()?;
        write!(
            w,
            "{{\"ph\":\"C\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":0,\"ts\":{ts_us},\
             \"args\":{{"
        )?;
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            let v = if v.is_finite() { *v } else { 0.0 };
            write!(w, "\"{}\":{v}", esc(k))?;
        }
        write!(w, "}}}}")
    }

    /// Closes the array. Must be called exactly once; dropping without
    /// finishing leaves the file truncated on purpose (a crashed export
    /// should not look valid).
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(b"]\n")?;
        self.finished = true;
        self.w.flush()?;
        Ok(self.w)
    }

    /// Whether at least one event has been written.
    pub fn any_events(&self) -> bool {
        !self.first
    }
}

fn write_args<W: Write>(w: &mut W, args: &[(&str, String)]) -> io::Result<()> {
    if args.is_empty() {
        return Ok(());
    }
    write!(w, ",\"args\":{{")?;
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "\"{}\":\"{}\"", esc(k), esc(v))?;
    }
    write!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_valid_json_with_all_phases() {
        let mut buf = Vec::new();
        {
            let mut tw = ChromeTraceWriter::new(&mut buf).unwrap();
            tw.process_name(0, "serve").unwrap();
            tw.thread_name(0, 1, "slot 1").unwrap();
            tw.complete(0, 1, "slice", 100, 50, &[("tenant", "t\"0".to_string())])
                .unwrap();
            tw.instant(0, 1, "admit", 90, &[]).unwrap();
            tw.counter(0, "queue_depth", 100, &[("global", 3.0)]).unwrap();
            assert!(tw.any_events());
            tw.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        crate::jsonlint::validate(&text).expect("trace must be valid JSON");
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\\\"0")); // escaped quote survived
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let mut buf = Vec::new();
        let tw = ChromeTraceWriter::new(&mut buf).unwrap();
        tw.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().trim(), "[]");
    }

    #[test]
    fn external_emitter_through_parts_keeps_commas_consistent() {
        let mut buf = Vec::new();
        {
            let mut tw = ChromeTraceWriter::new(&mut buf).unwrap();
            tw.instant(0, 0, "a", 1, &[]).unwrap();
            {
                let (w, first) = tw.parts();
                assert!(!*first);
                // External emitters write their own separators.
                write!(w, ",{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"b\",\"pid\":9,\
                        \"tid\":0,\"ts\":2}}")
                .unwrap();
            }
            tw.instant(0, 0, "c", 3, &[]).unwrap();
            tw.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        crate::jsonlint::validate(&text).expect("merged trace must stay valid");
    }
}
