//! Criterion bench regenerating the Fig. 11 comparison on a representative
//! subset (one regular, one irregular, one barrier-heavy application):
//! each iteration simulates the full kernel execution on both frameworks.

use criterion::{criterion_group, criterion_main, Criterion};
use soff_baseline::Framework;
use soff_workloads::{all_apps, data::Scale, execute};

fn bench_fig11(c: &mut Criterion) {
    // One irregular, one regular, one barrier-heavy app — all of
    // which Intel OpenCL can run (124.hotspot is RE on Intel, Table II).
    let subset = ["112.spmv", "gemm", "127.srad"];
    let apps: Vec<_> =
        all_apps().into_iter().filter(|a| subset.contains(&a.name)).collect();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for app in &apps {
        group.bench_function(format!("{}-soff", app.name), |b| {
            b.iter(|| {
                let r = execute(app, Framework::Soff, Scale::Small);
                assert_eq!(r.outcome, soff_baseline::Outcome::Ok);
                r.cycles
            })
        });
        group.bench_function(format!("{}-intel", app.name), |b| {
            b.iter(|| {
                let r = execute(app, Framework::IntelLike, Scale::Small);
                assert_eq!(r.outcome, soff_baseline::Outcome::Ok);
                r.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
