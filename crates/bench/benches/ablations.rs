//! Criterion bench over the design-choice ablations (DESIGN.md index):
//! FIFO balancing, loop occupancy policy, and cache organization.

use criterion::{criterion_group, criterion_main, Criterion};
use soff_datapath::hierarchy::DatapathOptions;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_ir::NdRange;
use soff_sim::{run, SimConfig};

const SRC: &str = r#"
__kernel void reduce(__global const float* a, __global float* o, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < n; j++) {
        float x = a[(i * 7 + j * 13) % (n * 8)];
        if (x > 0.5f) acc += x / 3.0f;
        else acc += x;
    }
    o[i] = acc;
}
"#;

fn simulate(opts: DatapathOptions, shared: bool) -> u64 {
    let parsed = soff_frontend::compile(SRC, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernel("reduce").unwrap();
    let dp = Datapath::build_opts(kernel, &LatencyModel::default(), opts);
    let n = 32u64;
    let mut gm = GlobalMemory::new();
    let a = gm.alloc((n * 8 * 4) as usize);
    let o = gm.alloc((n * 8 * 4) as usize);
    let cfg = SimConfig { num_instances: 1, force_shared_cache: shared, ..SimConfig::default() };
    run(
        kernel,
        &dp,
        &cfg,
        NdRange::dim1(n * 8, 16),
        &[ArgValue::Buffer(a), ArgValue::Buffer(o), ArgValue::Scalar(n)],
        &mut gm,
    )
    .unwrap()
    .cycles
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("full-soff", |b| {
        b.iter(|| simulate(DatapathOptions::default(), false))
    });
    group.bench_function("no-fifo-balancing", |b| {
        b.iter(|| simulate(DatapathOptions { balance_fifos: false, ..Default::default() }, false))
    });
    group.bench_function("nmin-loop-limit", |b| {
        b.iter(|| simulate(DatapathOptions { loop_limit_max: false, ..Default::default() }, false))
    });
    group.bench_function("shared-cache", |b| {
        b.iter(|| simulate(DatapathOptions::default(), true))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
