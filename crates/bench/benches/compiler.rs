//! Criterion bench of the compiler itself (frontend → SSA → datapath →
//! FIFO-balancing ILP), on a representative barrier kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use soff_datapath::{Datapath, LatencyModel};

const SRC: &str = r#"
__kernel void tile(__global const float* a, __global float* o, int n) {
    __local float t[64];
    int l = get_local_id(0);
    float acc = 0.0f;
    for (int base = 0; base < n; base += 64) {
        t[l] = a[base + l];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < 64; j++) acc += t[j] * 0.5f;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    o[get_global_id(0)] = acc;
}
"#;

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("frontend+sema", |b| {
        b.iter(|| soff_frontend::compile(SRC, &[]).unwrap())
    });
    group.bench_function("lower-to-ssa", |b| {
        let parsed = soff_frontend::compile(SRC, &[]).unwrap();
        b.iter(|| soff_ir::build::lower(&parsed).unwrap())
    });
    group.bench_function("datapath-synthesis", |b| {
        let parsed = soff_frontend::compile(SRC, &[]).unwrap();
        let module = soff_ir::build::lower(&parsed).unwrap();
        b.iter(|| Datapath::build(module.kernel("tile").unwrap(), &LatencyModel::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
