//! Minimal JSON writer for the benchmark binaries' `--json` mode.
//!
//! The workspace deliberately carries no serialization dependency (the
//! vendored crates are offline stubs), so the handful of flat rows the
//! benchmarks emit are serialized by hand. Values render as canonical
//! JSON: strings escaped, floats via Rust's shortest round-trip `{}`
//! formatting, `NaN`/infinities as `null` (JSON has no spelling for them).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; no float formatting).
    Int(i64),
    /// A float (`null` when not finite).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The workspace root (two levels above this crate's manifest), where
/// `BENCH_*.json` artifacts live so they can be committed and tracked
/// as the perf trajectory. Falls back to the current directory when the
/// compile-time path no longer exists (e.g. an installed binary).
fn artifact_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .filter(|p| p.is_dir())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| Path::new(".").to_path_buf())
}

/// Writes one benchmark's rows to `BENCH_<name>.json` in the repo root
/// (`{"bench": <name>, "rows": [...]}`), so the artifact lands in the
/// same tracked place no matter which directory the binary runs from.
/// Returns the path written, for the binary to report.
///
/// # Errors
///
/// Propagates file-creation/write errors.
pub fn write_bench_rows(name: &str, rows: Vec<Json>) -> io::Result<std::path::PathBuf> {
    let doc = Json::obj(vec![("bench", Json::str(name)), ("rows", Json::Arr(rows))]);
    let path = artifact_dir().join(format!("BENCH_{name}.json"));
    fs::write(&path, format!("{doc}\n"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escaping() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::str("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::str("atax")),
            ("speedup", Json::Num(1.25)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(j.to_string(), "{\"name\":\"atax\",\"speedup\":1.25,\"tags\":[1,2]}");
    }
}
