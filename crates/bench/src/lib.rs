//! # soff-bench
//!
//! The benchmark harness of the SOFF reproduction: one binary per table /
//! figure of §VI (run with `cargo run -p soff-bench --bin <name>`), plus
//! Criterion benches. Each binary prints the same rows/series the paper
//! reports together with the published values where the paper gives them,
//! so paper-vs-measured comparison is mechanical (see EXPERIMENTS.md).

use soff_baseline::Framework;
use soff_workloads::journal::JournalError;
use soff_workloads::sweep::{run_cells_resumable, Cell, SweepOptions};
use soff_workloads::{all_apps, data::Scale, App, AppResult};

pub mod json;

/// Parses the shared `--jobs N` flag of the bench bins; the default is
/// the machine's available parallelism. `--jobs 1` reproduces the
/// historical sequential sweep exactly.
///
/// # Errors
///
/// A one-line usage message when the value is missing, not a number, or
/// zero (a zero-wide pool is always a typo, never a request).
pub fn parse_jobs_flag(args: &[String]) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(soff_exec::default_jobs());
    };
    let Some(raw) = args.get(i + 1) else {
        return Err("usage: --jobs <N> requires a positive integer".to_string());
    };
    match raw.parse::<usize>() {
        Ok(0) => Err("usage: --jobs must be at least 1 (got 0)".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("usage: --jobs must be a positive integer (got {raw:?})")),
    }
}

/// [`parse_jobs_flag`] for `main`: prints the usage error to stderr and
/// exits with status 2 instead of silently guessing a value.
pub fn jobs_flag(args: &[String]) -> usize {
    parse_jobs_flag(args).unwrap_or_else(|usage| {
        eprintln!("{usage}");
        std::process::exit(2);
    })
}

/// Parses the shared `--resume <journal>` flag: the crash-recovery
/// journal path the sweep appends to and replays from.
///
/// # Errors
///
/// A one-line usage message when the path operand is missing.
pub fn parse_resume_flag(args: &[String]) -> Result<Option<std::path::PathBuf>, String> {
    let Some(i) = args.iter().position(|a| a == "--resume") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(p) if !p.starts_with("--") => Ok(Some(std::path::PathBuf::from(p))),
        _ => Err("usage: --resume <journal-path> requires a path".to_string()),
    }
}

/// [`parse_resume_flag`] for `main`: prints the usage error to stderr
/// and exits with status 2.
pub fn resume_flag(args: &[String]) -> Option<std::path::PathBuf> {
    parse_resume_flag(args).unwrap_or_else(|usage| {
        eprintln!("{usage}");
        std::process::exit(2);
    })
}

/// The sweep options implied by a `--jobs` value: parallel runs may
/// memoize identical cells (results are bit-identical either way — the
/// differential tests hold the engine to that); `--jobs 1` keeps the
/// plain sequential loop, duplicates and all.
pub fn sweep_options(jobs: usize) -> SweepOptions {
    if jobs <= 1 {
        SweepOptions::sequential()
    } else {
        SweepOptions { jobs, dedup: true, ..SweepOptions::default() }
    }
}

/// Geometric mean of positive values; `None` for an empty slice (the
/// caller decides how to report "no overlapping apps" — a silent NaN
/// propagates into every downstream summary).
pub fn geomean(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
}

/// [`geomean`] formatted for table output: `(no overlapping apps)` when
/// empty.
pub fn fmt_geomean(vals: &[f64]) -> String {
    match geomean(vals) {
        Some(g) => format!("{g:.2}"),
        None => "(no overlapping apps)".to_string(),
    }
}

/// The 26 applications Intel OpenCL can run (Fig. 11's x-axis). The
/// stencil suite post-dates the paper, so it never appears here.
pub fn fig11_apps() -> Vec<App> {
    all_apps()
        .into_iter()
        .filter(|a| {
            a.suite != soff_workloads::Suite::Stencil
                && soff_baseline::known_issue(Framework::IntelLike, a.name).is_none()
                // SOFF cannot run the IR apps either, so they cannot appear.
                && !matches!(a.name, "122.cfd" | "128.heartwall" | "140.bplustree")
        })
        .collect()
}

/// Per-app speedup of SOFF over a baseline framework at the given scale.
/// Returns `(name, speedup, soff_result, baseline_result)` for apps both
/// frameworks run, in `all_apps` order.
///
/// Runs as two parallel waves on `jobs` workers: all SOFF cells first,
/// then the baseline cells of the apps SOFF completed (preserving the
/// historical behaviour of never simulating a baseline whose SOFF side
/// already failed).
pub fn speedups_vs(
    baseline: Framework,
    scale: Scale,
    jobs: usize,
) -> Vec<(&'static str, f64, AppResult, AppResult)> {
    speedups_vs_resumable(baseline, scale, jobs, None)
        .expect("a journal-free sweep cannot fail")
}

/// [`speedups_vs`] with crash recovery: with a journal path, each wave
/// journals to its own derived file (`<path>.soff` / `<path>.base` — the
/// two waves run different cell sets, hence different sweep identities)
/// and a killed run resumes from whatever the files already hold.
///
/// # Errors
///
/// [`JournalError`] when either wave's journal is unwritable, stale, or
/// damaged beyond a torn tail.
pub fn speedups_vs_resumable(
    baseline: Framework,
    scale: Scale,
    jobs: usize,
    journal: Option<&std::path::Path>,
) -> Result<Vec<(&'static str, f64, AppResult, AppResult)>, JournalError> {
    let wave_opts = |suffix: &str| {
        let mut opts = sweep_options(jobs);
        opts.journal =
            journal.map(|p| std::path::PathBuf::from(format!("{}.{suffix}", p.display())));
        opts
    };
    // Paper-figure sweeps stay on the paper's 34 apps; the stencil suite
    // has its own harness (`stencil_speed`).
    let apps: Vec<App> = all_apps()
        .into_iter()
        .filter(|a| a.suite != soff_workloads::Suite::Stencil)
        .collect();
    let soff_cells: Vec<Cell> =
        apps.iter().map(|a| Cell::new(*a, Framework::Soff, scale)).collect();
    let soff = run_cells_resumable(&soff_cells, &wave_opts("soff"))?;

    let runnable: Vec<usize> = (0..apps.len())
        .filter(|&i| soff[i].result.outcome == soff_baseline::Outcome::Ok)
        .collect();
    let base_cells: Vec<Cell> =
        runnable.iter().map(|&i| Cell::new(apps[i], baseline, scale)).collect();
    let base = run_cells_resumable(&base_cells, &wave_opts("base"))?;

    Ok(runnable
        .iter()
        .zip(&base)
        .filter(|(_, b)| b.result.outcome == soff_baseline::Outcome::Ok)
        .map(|(&i, b)| {
            let s = soff[i].result;
            (apps[i].name, b.result.seconds / s.seconds, s, b.result)
        })
        .collect())
}

/// Published Fig. 11 data points (the bars tall enough for the paper to
/// print their value) and headline numbers, for side-by-side reporting.
pub mod paper {
    /// Fig. 11 geometric-mean speedup of SOFF over Intel OpenCL.
    pub const FIG11_GEOMEAN: f64 = 1.33;
    /// Fig. 11: SOFF outperforms Intel OpenCL on 17 of 26 applications.
    pub const FIG11_WINS: (u32, u32) = (17, 26);
    /// The clipped-bar values the figure annotates.
    pub const FIG11_OUTLIERS: &[(&str, f64)] =
        &[("110.fft", 4.02), ("117.bfs", 21.0), ("mvt", 4.75), ("covar", 4.67)];
    /// Fig. 12 (a): Xilinx-vs-SOFF I geometric mean (SOFF over SDAccel).
    pub const FIG12A_GEOMEAN: f64 = 24.9;
    /// Fig. 12 (b): Xilinx-vs-SOFF II geometric mean under the optimistic
    /// linear-scaling assumption.
    pub const FIG12B_GEOMEAN: f64 = 1.33;
    /// Table II failure counts: Intel fails 8 SPEC apps; Xilinx fails
    /// 9 SPEC + 5 PolyBench; SOFF fails 3 (insufficient resources).
    pub const TABLE2_FAILS: (u32, u32, u32) = (8, 14, 3);
}

/// Formats a ratio for table output.
pub fn fmt_ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:7.0}")
    } else {
        format!("{x:7.2}")
    }
}

/// Aggregated per-framework simulation counters over a run (hit ratios,
/// stall breakdown) — printed by `fig11 --verbose` style analyses and
/// reused by tests.
pub fn summarize(result: &AppResult) -> String {
    format!(
        "{} cycles over {} launches ({} instances)",
        result.cycles, result.launches, result.replication
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(fmt_geomean(&[]), "(no overlapping apps)");
    }

    #[test]
    fn fig11_has_26_apps() {
        assert_eq!(fig11_apps().len(), 26, "Fig. 11 covers 26 applications");
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jobs_flag_rejects_zero_and_garbage_with_usage_errors() {
        assert_eq!(parse_jobs_flag(&argv(&["--jobs", "4"])), Ok(4));
        assert_eq!(parse_jobs_flag(&argv(&[])), Ok(soff_exec::default_jobs()));
        for bad in [&["--jobs", "0"][..], &["--jobs", "four"], &["--jobs", "-2"], &["--jobs"]] {
            let err = parse_jobs_flag(&argv(bad)).unwrap_err();
            assert!(err.starts_with("usage:"), "one-line usage error, got: {err}");
            assert!(!err.contains('\n'), "usage error must be one line");
        }
    }

    #[test]
    fn resume_flag_parses_paths_and_rejects_missing_operand() {
        assert_eq!(parse_resume_flag(&argv(&[])), Ok(None));
        assert_eq!(
            parse_resume_flag(&argv(&["--resume", "/tmp/j.log"])),
            Ok(Some(std::path::PathBuf::from("/tmp/j.log")))
        );
        for bad in [&["--resume"][..], &["--resume", "--jobs"]] {
            let err = parse_resume_flag(&argv(bad)).unwrap_err();
            assert!(err.starts_with("usage:"), "one-line usage error, got: {err}");
        }
    }
}
