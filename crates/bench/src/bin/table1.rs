//! Regenerates **Table I** (target systems).
//!
//! ```text
//! cargo run -p soff-bench --bin table1 [--json]
//! ```

use soff_bench::json::{write_bench_rows, Json};
use soff_datapath::resource::{SYSTEM_A, SYSTEM_B};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    println!("Table I: Target systems");
    println!("{:-<78}", "");
    println!("{:<22} {:<28} {:<28}", "", SYSTEM_A.name, SYSTEM_B.name);
    println!("{:-<78}", "");
    println!("{:<22} {:<28} {:<28}", "FPGA", SYSTEM_A.fpga, SYSTEM_B.fpga);
    println!(
        "{:<22} {:<28} {:<28}",
        "Logic (LUT/LE)",
        format!("{:.0}K usable", SYSTEM_A.capacity.luts / 1e3),
        format!("{:.0}K usable", SYSTEM_B.capacity.luts / 1e3),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "DSP blocks",
        format!("{:.0} usable", SYSTEM_A.capacity.dsps),
        format!("{:.0} usable", SYSTEM_B.capacity.dsps),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Embedded memory",
        format!("{:.1} Mb usable", SYSTEM_A.capacity.membits / 1e6),
        format!("{:.1} Mb usable", SYSTEM_B.capacity.membits / 1e6),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "DRAM channels",
        SYSTEM_A.dram_channels,
        SYSTEM_B.dram_channels
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Clock (SOFF/vendor)",
        format!("{:.0} / {:.0} MHz", SYSTEM_A.clock_soff_mhz, SYSTEM_A.clock_vendor_mhz),
        format!("{:.0} / {:.0} MHz", SYSTEM_B.clock_soff_mhz, SYSTEM_B.clock_vendor_mhz),
    );
    println!("{:-<78}", "");
    println!(
        "Paper (Table I): Arria 10 = 1150K LE / 3036 DSP / 65.7 Mb; \
         VU9P = 2586K LC / 6840 DSP / 345.9 Mb."
    );
    println!(
        "This model exposes 80% of each device to the reconfigurable region \
         (the static region keeps the rest)."
    );

    if json {
        let jrows = [&SYSTEM_A, &SYSTEM_B]
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("system", Json::str(s.name)),
                    ("fpga", Json::str(s.fpga)),
                    ("luts", Json::Num(s.capacity.luts)),
                    ("dsps", Json::Num(s.capacity.dsps)),
                    ("membits", Json::Num(s.capacity.membits)),
                    ("dram_channels", Json::Int(s.dram_channels as i64)),
                    ("clock_soff_mhz", Json::Num(s.clock_soff_mhz)),
                    ("clock_vendor_mhz", Json::Num(s.clock_vendor_mhz)),
                ])
            })
            .collect();
        match write_bench_rows("table1", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}
