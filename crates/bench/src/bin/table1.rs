//! Regenerates **Table I** (target systems).
//!
//! ```text
//! cargo run -p soff-bench --bin table1
//! ```

use soff_datapath::resource::{SYSTEM_A, SYSTEM_B};

fn main() {
    println!("Table I: Target systems");
    println!("{:-<78}", "");
    println!("{:<22} {:<28} {:<28}", "", SYSTEM_A.name, SYSTEM_B.name);
    println!("{:-<78}", "");
    println!("{:<22} {:<28} {:<28}", "FPGA", SYSTEM_A.fpga, SYSTEM_B.fpga);
    println!(
        "{:<22} {:<28} {:<28}",
        "Logic (LUT/LE)",
        format!("{:.0}K usable", SYSTEM_A.capacity.luts / 1e3),
        format!("{:.0}K usable", SYSTEM_B.capacity.luts / 1e3),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "DSP blocks",
        format!("{:.0} usable", SYSTEM_A.capacity.dsps),
        format!("{:.0} usable", SYSTEM_B.capacity.dsps),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Embedded memory",
        format!("{:.1} Mb usable", SYSTEM_A.capacity.membits / 1e6),
        format!("{:.1} Mb usable", SYSTEM_B.capacity.membits / 1e6),
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "DRAM channels",
        SYSTEM_A.dram_channels,
        SYSTEM_B.dram_channels
    );
    println!(
        "{:<22} {:<28} {:<28}",
        "Clock (SOFF/vendor)",
        format!("{:.0} / {:.0} MHz", SYSTEM_A.clock_soff_mhz, SYSTEM_A.clock_vendor_mhz),
        format!("{:.0} / {:.0} MHz", SYSTEM_B.clock_soff_mhz, SYSTEM_B.clock_vendor_mhz),
    );
    println!("{:-<78}", "");
    println!(
        "Paper (Table I): Arria 10 = 1150K LE / 3036 DSP / 65.7 Mb; \
         VU9P = 2586K LC / 6840 DSP / 345.9 Mb."
    );
    println!(
        "This model exposes 80% of each device to the reconfigurable region \
         (the static region keeps the rest)."
    );
}
