//! Wall-clock benchmark of the skipping schedulers.
//!
//! Runs each selected application three times — under the dense
//! reference loop, the event-driven scheduler, and the compiled
//! tick-program backend — checks that every per-launch `SimResult` is
//! bit-identical across all three, and reports the wall-clock speedups
//! over dense. Exits nonzero if the schedulers disagree anywhere or any
//! app fails to run.
//!
//! ```text
//! cargo run --release -p soff-bench --bin sim_speed [--apps atax,mvt] [--full] [--jobs N]
//! ```
//!
//! Writes `BENCH_sim_speed.json` in the repo root.

use soff_baseline::Framework;
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{fmt_geomean, geomean, jobs_flag};
use soff_sim::Scheduler;
use soff_workloads::data::Scale;
use soff_workloads::runner::SimRunner;
use soff_workloads::{all_apps, App, Suite};
use std::time::Instant;

struct Measured {
    wall_seconds: f64,
    cycles: u64,
    launches: u32,
    results: Vec<soff_sim::SimResult>,
}

fn run_once(app: &App, scale: Scale, scheduler: Scheduler) -> Result<Measured, String> {
    let mut runner = SimRunner::new(Framework::Soff, app.source, &[])
        .map_err(|o| format!("build failed ({})", o.code()))?;
    runner.set_scheduler(scheduler);
    let start = Instant::now();
    let correct = (app.run)(&mut runner, scale).map_err(|e| e.to_string())?;
    let wall_seconds = start.elapsed().as_secs_f64();
    if !correct {
        return Err("incorrect answer".to_string());
    }
    Ok(Measured {
        wall_seconds,
        cycles: runner.total_cycles,
        launches: runner.launches,
        results: runner.launch_results,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Small };
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect());

    let apps: Vec<App> = all_apps()
        .into_iter()
        .filter(|a| match &only {
            Some(names) => names.iter().any(|n| n == a.name),
            // Default sweep: the PolyBench suite (every app runs on SOFF).
            None => a.suite == Suite::PolyBench,
        })
        .collect();
    if apps.is_empty() {
        eprintln!("no matching applications");
        std::process::exit(2);
    }

    println!("Simulator wall-clock: dense vs. event-driven vs. compiled ({scale:?} scale)");
    println!("{:-<90}", "");
    println!(
        "{:<12} {:>11} {:>11} {:>11} {:>8} {:>8} {:>13} {:>7}",
        "app", "dense (ms)", "event (ms)", "comp (ms)", "ev", "comp", "cycles", "agree"
    );
    println!("{:-<90}", "");

    let mut rows = Vec::new();
    let mut event_speedups = Vec::new();
    let mut compiled_speedups = Vec::new();
    let mut failed = false;
    // One pool task per app runs its dense+event+compiled triple back to
    // back on the same thread, so each row's wall-clock comparison stays
    // apples-to-apples even when apps run concurrently.
    let jobs = jobs_flag(&args);
    let triples = soff_exec::run_tasks(jobs, apps.clone(), |_, app: App| {
        let dense = run_once(&app, scale, Scheduler::Dense);
        let event = run_once(&app, scale, Scheduler::EventDriven);
        let compiled = run_once(&app, scale, Scheduler::Compiled);
        (dense, event, compiled)
    });
    for (app, triple) in apps.iter().zip(triples) {
        let (dense, event, compiled) = match triple {
            Ok(t) => t,
            Err(soff_exec::TaskError::Panicked { message }) => {
                println!("{:<12} failed: task panicked: {message}", app.name);
                failed = true;
                continue;
            }
            Err(soff_exec::TaskError::Cancelled) => {
                println!("{:<12} failed: cancelled", app.name);
                failed = true;
                continue;
            }
        };
        let (dense, event, compiled) = match (dense, event, compiled) {
            (Ok(d), Ok(e), Ok(c)) => (d, e, c),
            (d, e, c) => {
                let why =
                    d.err().or_else(|| e.err()).or_else(|| c.err()).unwrap_or_default();
                println!("{:<12} failed: {why}", app.name);
                failed = true;
                continue;
            }
        };
        // Bit-identity: every launch's full SimResult (cycle counts,
        // per-cache statistics, stall counters) must match across all
        // three backends.
        let agree = dense.results == event.results
            && dense.results == compiled.results
            && dense.cycles == event.cycles
            && dense.cycles == compiled.cycles
            && dense.launches == event.launches
            && dense.launches == compiled.launches;
        if !agree {
            failed = true;
        }
        let event_speedup = dense.wall_seconds / event.wall_seconds.max(1e-9);
        let compiled_speedup = dense.wall_seconds / compiled.wall_seconds.max(1e-9);
        event_speedups.push(event_speedup);
        compiled_speedups.push(compiled_speedup);
        println!(
            "{:<12} {:>11.1} {:>11.1} {:>11.1} {:>7.2}x {:>7.2}x {:>13} {:>7}",
            app.name,
            dense.wall_seconds * 1e3,
            event.wall_seconds * 1e3,
            compiled.wall_seconds * 1e3,
            event_speedup,
            compiled_speedup,
            dense.cycles,
            if agree { "yes" } else { "NO" },
        );
        rows.push(Json::obj(vec![
            ("app", Json::str(app.name)),
            ("dense_seconds", Json::Num(dense.wall_seconds)),
            ("event_seconds", Json::Num(event.wall_seconds)),
            ("compiled_seconds", Json::Num(compiled.wall_seconds)),
            ("speedup", Json::Num(event_speedup)),
            ("compiled_speedup", Json::Num(compiled_speedup)),
            ("cycles", Json::Int(dense.cycles as i64)),
            ("launches", Json::Int(dense.launches as i64)),
            ("agree", Json::Bool(agree)),
        ]));
    }
    println!("{:-<90}", "");
    println!(
        "geomean speedup over dense: event {}, compiled {}",
        fmt_geomean(&event_speedups),
        fmt_geomean(&compiled_speedups),
    );
    if let (Some(e), Some(c)) = (geomean(&event_speedups), geomean(&compiled_speedups)) {
        println!("compiled over event-driven: {:.2}x", c / e);
        rows.push(Json::obj(vec![
            ("geomean_speedup", Json::Num(e)),
            ("geomean_compiled_speedup", Json::Num(c)),
        ]));
    }
    match write_bench_rows("sim_speed", rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write results: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("FAILED: scheduler disagreement or app failure (see above)");
        std::process::exit(1);
    }
}
