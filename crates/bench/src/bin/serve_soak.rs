//! Multi-tenant serve-layer soak: N tenants hammer a shared server with
//! deterministic seeded workloads, with per-job turnaround percentiles,
//! an overload fairness self-check, and a run digest over every job's
//! cycle count and read-back bytes.
//!
//! The digest is the crash-recovery witness: because slices cut at
//! deterministic cycle numbers, a capacity run produces the same digest
//! whether its compiles came from a cold frontend or were restored from
//! the on-disk store — so CI can kill -9 a run mid-flight, restart it
//! against the same `--cache-dir`, and diff the digest lines.
//!
//! Usage:
//!   serve_soak [--slots N] [--tenants N] [--jobs N] [--seed S]
//!              [--slice CYCLES] [--cache-dir DIR] [--overload]
//!              [--metrics FILE] [--trace FILE]
//!
//! `--overload` runs one device slot with tight queue bounds and exits
//! non-zero unless backpressure was exercised (typed queue/quota
//! rejections observed), preemption happened, and no tenant starved.
//!
//! `--metrics FILE` writes the process-global metrics registry as
//! Prometheus-style text exposition after the run: the serve layer's
//! per-tenant queue-wait / slice-duration histograms and per-class
//! rejection counters, the runtime's cache counters, and this binary's
//! own turnaround histogram all come from the same registry.
//!
//! `--trace FILE` records request-path spans and samples every 4th job
//! per tenant through the simulator's cycle profiler, then writes one
//! merged Chrome trace (open in Perfetto / `chrome://tracing`): pid 0 is
//! the serve layer on the wall clock, pids 100+ are sampled kernels on
//! their simulated-cycle clocks. Profiling is observational — the run
//! digest is unchanged.

use soff_bench::json::{write_bench_rows, Json};
use soff_obs::{pair_spans_with_drops, ChromeTraceWriter, SpanKind, TraceBuf};
use soff_serve::{
    JobId, NdRange, ProfileSampling, ServeError, Server, ServerConfig, Session, TenantQuota,
};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Three kernel variants so a soak populates the compile store with more
/// than one object and a restart exercises more than one disk hit.
fn source(variant: u64) -> String {
    format!(
        r#"
__kernel void soak{variant}(__global float* a, int iters, float bias) {{
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {{
        x = x * 0.99{variant}f + bias;
    }}
    a[i] = x;
}}
"#
    )
}

// ------------------------------------------------------------- determinism

/// splitmix64: the workload generator. Deliberately dependency-free so
/// the soak's job mix is reproducible from `--seed` alone, forever.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Uniform float in `[-1, 1)`.
    fn unit(&mut self) -> f32 {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

// ------------------------------------------------------------------- jobs

#[derive(Clone, Copy)]
struct JobSpec {
    n: usize,
    iters: i32,
    bias: f32,
    input_seed: u64,
}

/// The job mix for one tenant, derived only from (seed, tenant index).
fn tenant_jobs(seed: u64, tenant: usize, jobs: usize) -> Vec<JobSpec> {
    let mut rng = Rng(seed ^ (tenant as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    (0..jobs)
        .map(|_| JobSpec {
            n: (16 + 4 * rng.below(12)) as usize,
            iters: (100 + rng.below(200)) as i32,
            bias: rng.unit() * 0.25,
            input_seed: rng.next(),
        })
        .collect()
}

fn input_bytes(spec: &JobSpec) -> Vec<u8> {
    let mut rng = Rng(spec.input_seed);
    (0..spec.n).flat_map(|_| rng.unit().to_le_bytes()).collect()
}

/// What one tenant thread brings home.
struct TenantRun {
    digest: u64,
    /// Per-job turnaround (enqueue → result), µs.
    turnarounds: Vec<u64>,
    backpressure_waits: u64,
}

/// Runs one tenant's whole job list with backpressure: inputs are
/// staged up front (buffer writes drain the in-order queue, so staging
/// mid-stream would cap queue depth at one), then jobs are enqueued in
/// a burst; a rejected enqueue (typed `QueueFull` / `QuotaExceeded`,
/// never a panic) waits out the oldest outstanding job and retries.
fn run_tenant(sess: &Session, specs: &[JobSpec], variant: u64) -> TenantRun {
    let src = source(variant);
    let program = sess.build_program(&src, &[]).expect("soak build");
    let name = format!("soak{variant}");
    let mut digest = FNV_OFFSET;
    let mut turnarounds = Vec::with_capacity(specs.len());
    let mut backpressure_waits = 0u64;

    // Stage every input before the first enqueue: after this the queue
    // can actually fill, because nothing else needs a drained queue.
    let buffers: Vec<soff_serve::Buffer> = specs
        .iter()
        .map(|spec| {
            let buf = sess.create_buffer(spec.n * 4).expect("create buffer");
            sess.write_buffer(buf, &input_bytes(spec)).expect("write buffer");
            buf
        })
        .collect();

    let drain_one = |pending: &mut VecDeque<(JobId, Instant)>,
                     digest: &mut u64,
                     turnarounds: &mut Vec<u64>| {
        let (id, t0) = pending.pop_front().expect("backpressure with empty queue");
        let out = sess.wait(id).expect("soak job failed");
        turnarounds.push(t0.elapsed().as_micros() as u64);
        *digest = fnv(*digest, &out.cycles.to_le_bytes());
    };

    let mut pending: VecDeque<(JobId, Instant)> = VecDeque::new();
    for (spec, &buf) in specs.iter().zip(&buffers) {
        let mut k = sess.kernel(&program, &name).expect("kernel");
        k.set_arg_buffer(0, buf).set_arg_i32(1, spec.iters).set_arg_f32(2, spec.bias);
        loop {
            match sess.enqueue(&k, NdRange::dim1(spec.n as u64, 4)) {
                Ok(id) => {
                    pending.push_back((id, Instant::now()));
                    break;
                }
                Err(ServeError::QueueFull { .. } | ServeError::QuotaExceeded { .. }) => {
                    backpressure_waits += 1;
                    drain_one(&mut pending, &mut digest, &mut turnarounds);
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }
    while !pending.is_empty() {
        drain_one(&mut pending, &mut digest, &mut turnarounds);
    }
    // Jobs are independent (one buffer each) and the queue is drained,
    // so reading back in job order is deterministic.
    for &buf in &buffers {
        digest = fnv(digest, &sess.read_buffer(buf).expect("read back"));
    }
    TenantRun { digest, turnarounds, backpressure_waits }
}

// ------------------------------------------------------------------- main

struct Opts {
    slots: usize,
    tenants: usize,
    jobs: usize,
    seed: u64,
    slice: u64,
    cache_dir: Option<PathBuf>,
    overload: bool,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_soak [--slots N] [--tenants N] [--jobs N] [--seed S] \
         [--slice CYCLES] [--cache-dir DIR] [--overload] \
         [--metrics FILE] [--trace FILE]"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        slots: 2,
        tenants: 4,
        jobs: 6,
        seed: 1,
        slice: 2_000,
        cache_dir: None,
        overload: false,
        metrics: None,
        trace: None,
    };
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--slots" => o.slots = val("--slots").parse().unwrap_or_else(|_| usage()),
            "--tenants" => o.tenants = val("--tenants").parse().unwrap_or_else(|_| usage()),
            "--jobs" => o.jobs = val("--jobs").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--slice" => o.slice = val("--slice").parse().unwrap_or_else(|_| usage()),
            "--cache-dir" => o.cache_dir = Some(PathBuf::from(val("--cache-dir"))),
            "--metrics" => o.metrics = Some(PathBuf::from(val("--metrics"))),
            "--trace" => o.trace = Some(PathBuf::from(val("--trace"))),
            "--overload" => o.overload = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if o.slots == 0 || o.tenants == 0 || o.jobs == 0 {
        eprintln!("--slots/--tenants/--jobs must be positive");
        usage();
    }
    o
}

/// Writes the merged Chrome trace: serve spans on pid 0 (wall-clock µs,
/// one track per session), each sampled kernel profile on its own pid
/// (simulated cycles rendered as µs — a different clock, hence a
/// different process group).
fn write_merged_trace(
    path: &PathBuf,
    buf: &TraceBuf,
    profiles: &[soff_serve::JobProfile],
) -> std::io::Result<usize> {
    let events = buf.snapshot();
    let f = std::fs::File::create(path)?;
    let mut w = ChromeTraceWriter::new(BufWriter::new(f))?;
    w.process_name(0, "soff-serve (wall clock, µs)")?;
    let mut named: Vec<u64> = Vec::new();
    for e in &events {
        if !named.contains(&e.corr.session) {
            named.push(e.corr.session);
            w.thread_name(0, e.corr.session, &e.tenant)?;
        }
    }
    // Drop-aware pairing: on a wrapped ring, ends whose begins were
    // evicted are truncation, not imbalance, and are simply not drawn.
    let paired = pair_spans_with_drops(&events, buf.dropped());
    for s in &paired.complete {
        w.complete(
            0,
            s.corr.session,
            s.name,
            s.start_us,
            s.end_us - s.start_us,
            &[("tenant", s.tenant.to_string()), ("seq", s.corr.seq.to_string())],
        )?;
    }
    for e in &events {
        if e.kind == SpanKind::Instant {
            w.instant(0, e.corr.session, e.name, e.ts_us, &[("seq", e.corr.seq.to_string())])?;
        }
    }
    for (k, jp) in profiles.iter().enumerate() {
        let pid = 100 + k as u64;
        w.process_name(pid, &format!("sim {} job {} (cycles as µs)", jp.tenant, jp.seq))?;
        let (wr, first) = w.parts();
        soff_sim::chrome_trace_events(&jp.report, wr, pid, 0, first)?;
    }
    let mut out = w.finish()?;
    out.flush()?;
    Ok(events.len())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let o = parse(&args);

    let trace_buf = o.trace.as_ref().map(|_| Arc::new(TraceBuf::new(1 << 16)));
    let mut cfg = ServerConfig {
        device_slots: o.slots,
        slice_cycles: o.slice,
        cache_dir: o.cache_dir.clone(),
        trace: trace_buf.clone(),
        // Sample every 4th job per tenant through the cycle profiler when
        // a trace is requested. Profiling only observes: cycle counts and
        // the run digest are unchanged.
        profile: o.trace.as_ref().map(|_| ProfileSampling {
            every: 4,
            max_reports: 32,
            ..ProfileSampling::default()
        }),
        ..ServerConfig::default()
    };
    if o.overload {
        // One slot, tight bounds: admission control must push back and
        // least-attained-service must keep every tenant moving.
        cfg.device_slots = 1;
        cfg.global_queue_cap = 2 * o.tenants;
        cfg.quota = TenantQuota { queue_depth: 2, max_in_flight: 3, ..TenantQuota::default() };
    }
    println!(
        "serve_soak: slots={} tenants={} jobs={} seed={} slice={} overload={} cache={}",
        cfg.device_slots,
        o.tenants,
        o.jobs,
        o.seed,
        o.slice,
        o.overload,
        o.cache_dir.as_deref().map_or("none".into(), |p| p.display().to_string()),
    );

    soff_runtime::cache::clear();
    soff_runtime::cache::reset_stats();
    let server = Server::new(cfg).expect("start server");
    let wall = Instant::now();

    let runs: Vec<TenantRun> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..o.tenants)
            .map(|t| {
                let server = &server;
                let specs = tenant_jobs(o.seed, t, o.jobs);
                s.spawn(move || {
                    let sess = server.connect(&format!("t{t}")).expect("connect");
                    let run = run_tenant(&sess, &specs, (t % 3) as u64);
                    sess.close();
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    });
    let wall = wall.elapsed();

    // Combine per-tenant digests in tenant order (thread-timing free).
    let mut digest = FNV_OFFSET;
    for (t, run) in runs.iter().enumerate() {
        digest = fnv(digest, &(t as u64).to_le_bytes());
        digest = fnv(digest, &run.digest.to_le_bytes());
    }

    // Turnarounds go through the shared log-scale histogram; percentiles
    // use its explicit nearest-rank rule (rank = clamp(ceil(p·N), 1, N),
    // reported as the bucket's upper bound — an "at most" value). The
    // old sorted-vec `round((len-1)·p)` index was off by one at the
    // boundaries: p99 of 100 samples picked index 98, i.e. rank 99.
    let turnaround = soff_obs::global().histogram("soff_soak_turnaround_us", &[]);
    for r in &runs {
        for &us in &r.turnarounds {
            turnaround.record(us);
        }
    }
    let tsnap = turnaround.snapshot();
    let p50_us = tsnap.percentile(0.50);
    let p99_us = tsnap.percentile(0.99);
    let backpressure: u64 = runs.iter().map(|r| r.backpressure_waits).sum();

    let stats = server.stats();
    let fairness = stats.completion_fairness();
    let (mut completed, mut failed, mut rej_queue, mut rej_quota, mut rej_shed, mut retries) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for t in &stats.tenants {
        completed += t.completed;
        failed += t.failed;
        rej_queue += t.rejected_queue_full;
        rej_quota += t.rejected_quota;
        rej_shed += t.rejected_shedding;
        retries += t.retries;
        println!(
            "  tenant {}: completed={} failed={} cycles={} rejected(queue={} quota={})",
            t.name, t.completed, t.failed, t.cycles, t.rejected_queue_full, t.rejected_quota
        );
    }
    let (profiles, profiles_dropped) = server.take_profiles();
    server.shutdown();
    let cache = soff_runtime::cache::stats();

    println!(
        "jobs: completed={completed} failed={failed} in {:.2}s  turnaround p50<={:.1}ms p99<={:.1}ms",
        wall.as_secs_f64(),
        p50_us as f64 / 1e3,
        p99_us as f64 / 1e3,
    );
    println!(
        "scheduling: slices={} preemptions={} fairness(max/min completed)={fairness:.2} \
         backpressure_waits={backpressure}",
        stats.slices, stats.preemptions,
    );
    println!(
        "rejections: queue_full={rej_queue} quota={rej_quota} shedding={rej_shed} retries={retries}"
    );
    println!(
        "disk cache: hits={} misses={} writes={} corrupt={}",
        cache.disk_hits, cache.disk_misses, cache.disk_writes, cache.disk_corrupt
    );
    println!("serve digest {digest:016x}");

    let row = Json::obj(vec![
        ("slots", Json::Int(if o.overload { 1 } else { o.slots as i64 })),
        ("tenants", Json::Int(o.tenants as i64)),
        ("jobs_per_tenant", Json::Int(o.jobs as i64)),
        ("seed", Json::Int(o.seed as i64)),
        ("slice_cycles", Json::Int(o.slice as i64)),
        ("overload", Json::Bool(o.overload)),
        ("completed", Json::Int(completed as i64)),
        ("failed", Json::Int(failed as i64)),
        ("rejected_queue_full", Json::Int(rej_queue as i64)),
        ("rejected_quota", Json::Int(rej_quota as i64)),
        ("backpressure_waits", Json::Int(backpressure as i64)),
        ("slices", Json::Int(stats.slices as i64)),
        ("preemptions", Json::Int(stats.preemptions as i64)),
        ("fairness", Json::Num(fairness)),
        ("wall_seconds", Json::Num(wall.as_secs_f64())),
        ("p50_ms", Json::Num(p50_us as f64 / 1e3)),
        ("p99_ms", Json::Num(p99_us as f64 / 1e3)),
        ("turnaround_count", Json::Int(tsnap.count as i64)),
        ("turnaround_sum_us", Json::Int(tsnap.sum.min(i64::MAX as u64) as i64)),
        // Nonzero log-scale buckets as [upper_bound_us, count] pairs.
        ("turnaround_buckets", Json::Arr(
            tsnap
                .nonzero_buckets()
                .iter()
                .map(|&(le, c)| {
                    Json::Arr(vec![
                        Json::Int(le.min(i64::MAX as u64) as i64),
                        Json::Int(c as i64),
                    ])
                })
                .collect(),
        )),
        ("disk_hits", Json::Int(cache.disk_hits as i64)),
        ("disk_misses", Json::Int(cache.disk_misses as i64)),
        ("disk_writes", Json::Int(cache.disk_writes as i64)),
        ("disk_corrupt", Json::Int(cache.disk_corrupt as i64)),
        ("digest", Json::str(format!("{digest:016x}"))),
    ]);
    match write_bench_rows("serve_soak", vec![row]) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_serve_soak.json: {e}"),
    }

    if let Some(path) = &o.metrics {
        // Serve histograms/counters, runtime cache counters, and the
        // turnaround histogram above all live on the global registry, so
        // one exposition covers the whole run.
        match std::fs::write(path, soff_obs::global().expose()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("could not write metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &o.trace {
        let buf = trace_buf.as_ref().expect("trace buffer exists with --trace");
        if buf.dropped() > 0 {
            eprintln!("trace ring wrapped: {} oldest events dropped", buf.dropped());
        }
        if profiles_dropped > 0 {
            eprintln!("profile reports dropped to max_reports bound: {profiles_dropped}");
        }
        // Self-check: with every job settled and the server shut down,
        // any span imbalance left in the ring is an instrumentation bug
        // (a begin without its end, or vice versa). Ring-wrap orphans
        // are truncation and do not count — `pair_spans_with_drops`
        // already classifies those separately.
        let paired = pair_spans_with_drops(&buf.snapshot(), buf.dropped());
        if !paired.balanced() {
            eprintln!(
                "FAIL: span imbalance — {} unmatched begins, {} unmatched ends",
                paired.unmatched_begins.len(),
                paired.unmatched_ends.len()
            );
            std::process::exit(1);
        }
        match write_merged_trace(path, buf, &profiles) {
            Ok(n) => println!("wrote {} ({n} serve events, {} sim profiles)", path.display(), profiles.len()),
            Err(e) => {
                eprintln!("could not write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if o.overload {
        // Self-check: overload must actually overload, and nobody may
        // starve. Everything here is a typed, accounted outcome — a
        // violation is a scheduling bug, not a flaky environment.
        let mut bad = false;
        if completed != (o.tenants * o.jobs) as u64 {
            eprintln!("FAIL: {completed} jobs completed, expected {}", o.tenants * o.jobs);
            bad = true;
        }
        if failed != 0 {
            eprintln!("FAIL: {failed} jobs failed under overload");
            bad = true;
        }
        if !(fairness.is_finite() && fairness <= 1.5) {
            eprintln!("FAIL: starvation — completion fairness {fairness:.2} (want <= 1.50)");
            bad = true;
        }
        if stats.preemptions == 0 {
            eprintln!("FAIL: overload never preempted anyone");
            bad = true;
        }
        if rej_queue + rej_quota == 0 {
            eprintln!("FAIL: overload never hit a queue bound or quota");
            bad = true;
        }
        if bad {
            std::process::exit(1);
        }
        println!("overload self-check passed");
    }
}
