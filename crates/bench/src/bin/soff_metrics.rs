//! Inspects observability artifacts produced by `serve_soak` and the
//! serve layer: validates a Prometheus-style text exposition (or a
//! Chrome-trace / registry-snapshot JSON file) and prints a per-series
//! summary, so CI can smoke-check metrics output without a Prometheus
//! server in the loop.
//!
//! Usage:
//!   soff_metrics FILE...
//!
//! `.json` files are checked for JSON well-formedness (the vendored
//! RFC 8259 checker in `soff-obs`). Anything else is parsed as text
//! exposition: every non-comment line must be `name{labels} value`,
//! every histogram must have cumulative non-decreasing `_bucket` series
//! ending in `+Inf` consistent with its `_count`. Exits non-zero on the
//! first malformed file.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed sample line.
struct Sample {
    name: String,
    labels: String,
    value: f64,
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let line = line.trim_end();
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in `{line}`"))?;
    let value: f64 = match value {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|e| format!("bad value `{v}`: {e}"))?,
    };
    let (name, labels) = match series.split_once('{') {
        Some((n, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in `{series}`"))?;
            (n, labels)
        }
        None => (series, ""),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(Sample { name: name.to_string(), labels: labels.to_string(), value })
}

/// Validates one exposition text; returns (series count, histogram count).
fn check_exposition(text: &str) -> Result<(usize, usize), String> {
    let mut samples: Vec<Sample> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at("malformed TYPE comment".into()))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(at(format!("unknown metric type `{kind}`")));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).map_err(at)?);
    }

    // Every sample must belong to a declared family (histograms declare
    // the base name; their samples are `_bucket`/`_sum`/`_count`).
    let family = |name: &str| -> Option<String> {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if types.get(base).is_some_and(|k| k == "histogram") {
                    return Some(base.to_string());
                }
            }
        }
        types.contains_key(name).then(|| name.to_string())
    };
    for s in &samples {
        if family(&s.name).is_none() {
            return Err(format!("sample `{}` has no # TYPE declaration", s.name));
        }
    }

    // Histogram shape: per (base, non-le labels), buckets must be
    // cumulative, end with +Inf, and agree with _count.
    let mut histograms: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            if types.get(base).is_some_and(|k| k == "histogram") {
                let mut le = f64::NAN;
                let rest: Vec<&str> = s
                    .labels
                    .split(',')
                    .filter(|part| match part.strip_prefix("le=\"") {
                        Some(v) => {
                            let v = v.trim_end_matches('"');
                            le = if v == "+Inf" { f64::INFINITY } else { v.parse().unwrap_or(f64::NAN) };
                            false
                        }
                        None => true,
                    })
                    .collect();
                if le.is_nan() {
                    return Err(format!("bucket of `{base}` lacks a parseable le label"));
                }
                histograms
                    .entry((base.to_string(), rest.join(",")))
                    .or_default()
                    .push((le, s.value));
            }
        } else if let Some(base) = s.name.strip_suffix("_count") {
            if types.get(base).is_some_and(|k| k == "histogram") {
                counts.insert((base.to_string(), s.labels.clone()), s.value);
            }
        }
    }
    for ((base, labels), buckets) in &histograms {
        let mut prev = -1.0f64;
        for &(le, cum) in buckets {
            if cum < prev {
                return Err(format!(
                    "histogram `{base}{{{labels}}}`: bucket le={le} count {cum} < previous {prev}"
                ));
            }
            prev = cum;
        }
        let Some(&(last_le, last_cum)) = buckets.last() else { continue };
        if !last_le.is_infinite() {
            return Err(format!("histogram `{base}{{{labels}}}` does not end with le=\"+Inf\""));
        }
        if let Some(&count) = counts.get(&(base.clone(), labels.clone())) {
            if count != last_cum {
                return Err(format!(
                    "histogram `{base}{{{labels}}}`: +Inf bucket {last_cum} != _count {count}"
                ));
            }
        } else {
            return Err(format!("histogram `{base}{{{labels}}}` has no _count sample"));
        }
    }

    Ok((samples.len(), histograms.len()))
}

fn summarize(text: &str) {
    let mut by_name: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Ok(s) = parse_line(line) {
            // Summarize base families only; bucket lines would drown them.
            if s.name.ends_with("_bucket") {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap_or("");
            let slot = by_name.entry(name).or_insert((0, 0.0));
            slot.0 += 1;
            if s.value.is_finite() {
                slot.1 += s.value;
            }
        }
    }
    for (name, (series, total)) in by_name {
        println!("  {name}: {series} series, total {total}");
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: soff_metrics FILE...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        if path.ends_with(".json") {
            match soff_obs::jsonlint::validate(&text) {
                Ok(()) => println!("{path}: well-formed JSON ({} bytes)", text.len()),
                Err(e) => {
                    eprintln!("{path}: INVALID JSON: {e}");
                    ok = false;
                }
            }
        } else {
            match check_exposition(&text) {
                Ok((samples, hists)) => {
                    println!("{path}: valid exposition — {samples} samples, {hists} histogram series");
                    summarize(&text);
                }
                Err(e) => {
                    eprintln!("{path}: INVALID exposition: {e}");
                    ok = false;
                }
            }
        }
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
