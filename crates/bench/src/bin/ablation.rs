//! Ablation study of SOFF's design choices (beyond the paper's figures;
//! DESIGN.md's per-experiment index calls these out):
//!
//! 1. **FIFO balancing off** (§IV-C): channels get capacity 1 — Case-2
//!    stalls throttle every join.
//! 2. **N_min loop limit** (§IV-E3): loops capped at the conservative
//!    minimum-cycle capacity with no back-edge FIFO — lower utilization
//!    when work-items take the long path.
//! 3. **Shared cache** (§V-A): one cache for all buffers instead of one
//!    per (buffer × datapath) — arbitration and conflict misses.
//! 4. **Near-maximum latency sweep** (§IV-A): L_F for global memory in
//!    {8, 16, 32, 64, 128}.
//! 5. **Uniform-loop SWGR elision off** (§IV-F1): every loop in a barrier
//!    kernel is serialized to one work-group at a time — measured on a
//!    separate barrier kernel whose loop bound is a kernel argument.
//!
//! ```text
//! cargo run --release -p soff-bench --bin ablation [--json] [--jobs N] [--resume <journal>]
//! ```
//!
//! `--resume <journal>` makes the study crash-recoverable: each
//! variant's cycle count is durably appended as it completes, and a
//! journal left by a killed run replays those variants instead of
//! re-simulating them.

use soff_baseline::Outcome;
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{jobs_flag, resume_flag};
use soff_datapath::hierarchy::DatapathOptions;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_ir::NdRange;
use soff_sim::{run, SimConfig};
use soff_workloads::journal::{self, Journal, JournalError, Record};
use soff_workloads::AppResult;
use std::collections::HashMap;
use std::sync::Mutex;

/// The study's journal identity: FNV-1a over the ordered variant keys
/// (a journal from a different variant list must read as stale).
fn study_identity(keys: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in keys.join("\n").as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A variant's journal record: the cycle count rides in the standard
/// sweep-record shape (`fw` marks it as an ablation row).
fn variant_record(name: &str, cycles: u64) -> Record {
    Record {
        app: name.to_string(),
        fw: "ablation".to_string(),
        scale: "-".to_string(),
        result: AppResult {
            outcome: Outcome::Ok,
            seconds: 0.0,
            cycles,
            launches: 1,
            replication: 1,
            wall_seconds: 0.0,
        },
        panicked: false,
        attempts: 1,
    }
}

/// A memory-bound reduction kernel with a branchy loop: every ablated
/// mechanism matters for it.
const SRC: &str = r#"
__kernel void reduce(__global const float* a, __global const float* b,
                     __global float* o, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < n; j++) {
        // Pseudo-random gather over a >64 KB region: misses dominate, so
        // the near-maximum latency (how many misses stay in flight) and
        // the cache organization both matter.
        float x = a[(i * 379 + j * 1543) % (n * 512)];
        if (x > 0.5f) acc += x / b[j % 16];
        else acc += x * 0.25f;
    }
    o[i] = acc;
}
"#;

struct Variant {
    name: &'static str,
    opts: DatapathOptions,
    lat: LatencyModel,
    shared_cache: bool,
}

fn run_variant(v: &Variant) -> Result<u64, String> {
    // The compile cache makes the nine variants share one frontend+lower
    // pass — only the datapath/simulation differs between them.
    let module = soff_runtime::cache::lower_cached(SRC, &[])
        .map_err(|d| format!("compile failed: {d}"))?;
    let kernel = module.kernel("reduce").ok_or("kernel `reduce` missing")?;
    let dp = Datapath::build_opts(kernel, &v.lat, v.opts);

    let n = 64u64;
    let mut gm = GlobalMemory::new();
    let a = gm.alloc((n * 512 * 4) as usize);
    let b = gm.alloc(16 * 4);
    let o = gm.alloc((n * 16 * 4) as usize);
    for i in 0..n * 512 {
        gm.buffer_mut(a).write_scalar(
            i * 4,
            soff_frontend::types::Scalar::F32,
            ((i % 17) as f32 / 16.0).to_bits() as u64,
        );
    }
    for i in 0..16 {
        gm.buffer_mut(b).write_scalar(
            i * 4,
            soff_frontend::types::Scalar::F32,
            (1.0f32 + i as f32).to_bits() as u64,
        );
    }
    let cfg = SimConfig {
        num_instances: 2,
        force_shared_cache: v.shared_cache,
        ..SimConfig::default()
    };
    let res = run(
        kernel,
        &dp,
        &cfg,
        NdRange::dim1(n * 16, 16),
        &[ArgValue::Buffer(a), ArgValue::Buffer(b), ArgValue::Buffer(o), ArgValue::Scalar(n)],
        &mut gm,
    )
    .map_err(|e| e.to_string())?;
    Ok(res.cycles)
}

fn main() {
    let base = Variant {
        name: "full SOFF (baseline)",
        opts: DatapathOptions::default(),
        lat: LatencyModel::default(),
        shared_cache: false,
    };
    let variants = [
        Variant {
            name: "no FIFO balancing (§IV-C)",
            opts: DatapathOptions { balance_fifos: false, ..Default::default() },
            ..make_like(&base)
        },
        Variant {
            name: "N_min loop limit (§IV-E3)",
            opts: DatapathOptions { loop_limit_max: false, ..Default::default() },
            ..make_like(&base)
        },
        Variant {
            name: "single shared cache (§V-A)",
            shared_cache: true,
            ..make_like(&base)
        },
        Variant {
            name: "L_F(mem)=8",
            lat: LatencyModel { global_mem: 8, ..LatencyModel::default() },
            ..make_like(&base)
        },
        Variant {
            name: "L_F(mem)=16",
            lat: LatencyModel { global_mem: 16, ..LatencyModel::default() },
            ..make_like(&base)
        },
        Variant {
            name: "L_F(mem)=32",
            lat: LatencyModel { global_mem: 32, ..LatencyModel::default() },
            ..make_like(&base)
        },
        Variant {
            name: "L_F(mem)=128",
            lat: LatencyModel { global_mem: 128, ..LatencyModel::default() },
            ..make_like(&base)
        },
    ];

    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let jobs = jobs_flag(&args);
    let resume = resume_flag(&args);
    let mut jrows = Vec::new();
    let jrow = |name: &str, cycles: Option<u64>, vs: Option<f64>| {
        Json::obj(vec![
            ("variant", Json::str(name)),
            ("cycles", cycles.map_or(Json::Null, |c| Json::Int(c as i64))),
            ("vs_baseline", vs.map_or(Json::Null, Json::Num)),
        ])
    };

    println!("Ablations on the branchy memory-bound reduction kernel");
    println!("{:-<58}", "");
    println!("{:<30} {:>10} {:>12}", "variant", "cycles", "vs baseline");
    println!("{:-<58}", "");
    // Fan all nine variants (baseline + ablations) across the pool. A
    // variant that fails — or whose task panics — becomes a failure row
    // (the deadlock forensics go to stderr); the sweep always completes.
    let all: Vec<&Variant> = std::iter::once(&base).chain(variants.iter()).collect();

    // Crash recovery: replay a resume journal (variants it holds are not
    // re-simulated) and append each fresh completion durably, in-worker.
    let barrier_keys = ["uniform-loop-on", "uniform-loop-off"];
    let keys: Vec<&str> =
        all.iter().map(|v| v.name).chain(barrier_keys.iter().copied()).collect();
    let identity = study_identity(&keys);
    let mut replayed: HashMap<String, u64> = HashMap::new();
    let journal = match &resume {
        Some(path) => {
            let opened = if path.exists() {
                journal::replay(path, identity).and_then(|records| {
                    for r in records {
                        replayed.insert(r.app, r.result.cycles);
                    }
                    Journal::append_to(path)
                })
            } else {
                Journal::create(path, identity)
            };
            match opened {
                Ok(j) => Some(j),
                Err(e) => {
                    eprintln!("cannot resume: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };
    let append_error: Mutex<Option<JournalError>> = Mutex::new(None);
    let append = |name: &str, cycles: u64| {
        if let Some(j) = &journal {
            if let Err(e) = j.append(&variant_record(name, cycles)) {
                append_error.lock().unwrap_or_else(|e| e.into_inner()).get_or_insert(e);
            }
        }
    };

    let todo: Vec<(usize, &Variant)> = all
        .iter()
        .enumerate()
        .filter(|(_, v)| !replayed.contains_key(v.name))
        .map(|(i, v)| (i, *v))
        .collect();
    let ran = soff_exec::run_tasks(jobs, todo.clone(), |_, (_, v): (usize, &Variant)| {
        let r = run_variant(v);
        if let Ok(c) = r {
            append(v.name, c);
        }
        r
    });
    let mut measured: Vec<Result<u64, String>> = all
        .iter()
        .map(|v| {
            replayed
                .get(v.name)
                .map(|&c| Ok(c))
                .unwrap_or_else(|| Err("variant did not run".to_string()))
        })
        .collect();
    for ((i, _), r) in todo.iter().zip(ran) {
        measured[*i] = match r {
            Ok(inner) => inner,
            Err(soff_exec::TaskError::Panicked { message }) => {
                Err(format!("variant panicked: {message}"))
            }
            Err(soff_exec::TaskError::Cancelled) => Err("variant cancelled".to_string()),
        };
    }
    let rest = measured.split_off(1);
    let base_cycles = match measured.remove(0) {
        Ok(c) => {
            println!("{:<30} {:>10} {:>11.2}x", base.name, c, 1.0);
            Some(c)
        }
        Err(e) => {
            eprintln!("{}", e);
            println!("{:<30} {:>10} {:>11}", base.name, "FAILED", "-");
            None
        }
    };
    jrows.push(jrow(base.name, base_cycles, base_cycles.map(|_| 1.0)));
    for (v, r) in variants.iter().zip(rest) {
        match r {
            Ok(c) => {
                let vs = base_cycles.map(|b| c as f64 / b as f64);
                match vs {
                    Some(r) => println!("{:<30} {:>10} {:>11.2}x", v.name, c, r),
                    None => println!("{:<30} {:>10} {:>11}", v.name, c, "-"),
                }
                jrows.push(jrow(v.name, Some(c), vs));
            }
            Err(e) => {
                eprintln!("{}", e);
                println!("{:<30} {:>10} {:>11}", v.name, "FAILED", "-");
                jrows.push(jrow(v.name, None, None));
            }
        }
    }
    println!("{:-<58}", "");
    println!("(>1.00x = slower than full SOFF; each mechanism should cost when removed)");
    let cache = soff_runtime::cache::stats();
    println!(
        "compile cache: {} hits / {} misses (one frontend+lower pass shared by all variants)",
        cache.frontend_hits, cache.frontend_misses
    );

    // The §IV-F1 uniform-loop optimization, on a barrier kernel.
    println!();
    println!("Uniform-trip-count loop analysis (§IV-F1), barrier kernel:");
    let barrier = |key: &str, uniform: bool| -> Result<u64, String> {
        if let Some(&c) = replayed.get(key) {
            return Ok(c);
        }
        let r = run_barrier_variant(uniform);
        if let Ok(c) = r {
            append(key, c);
        }
        r
    };
    match (barrier("uniform-loop-on", true), barrier("uniform-loop-off", false)) {
        (Ok(with), Ok(without)) => {
            println!("  with analysis (no SWGR)    : {with:>10} cycles");
            println!(
                "  without (SWGR serializes)  : {without:>10} cycles  ({:.2}x)",
                without as f64 / with as f64
            );
            jrows.push(jrow("uniform-loop analysis on (§IV-F1)", Some(with), Some(1.0)));
            jrows.push(jrow(
                "uniform-loop analysis off (SWGR)",
                Some(without),
                Some(without as f64 / with as f64),
            ));
        }
        (with, without) => {
            for (name, r) in [("with analysis", with), ("without", without)] {
                match r {
                    Ok(c) => {
                        println!("  {name:<27}: {c:>10} cycles");
                        jrows.push(jrow(name, Some(c), None));
                    }
                    Err(e) => {
                        eprintln!("{}", e);
                        println!("  {name:<27}:     FAILED");
                        jrows.push(jrow(name, None, None));
                    }
                }
            }
        }
    }

    if json {
        match write_bench_rows("ablation", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }

    // A journal append failing means durability silently degraded — the
    // next resume would redo (or worse, misreport) work. Fail loudly.
    if let Some(e) = append_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        eprintln!("journal append failed: {e}");
        std::process::exit(1);
    }
}

/// A barrier kernel whose loop bound is a kernel argument: §IV-F1's
/// analysis proves it uniform, so the loop keeps ordinary entrance glue
/// and work-groups overlap inside it; disabling the analysis serializes
/// them.
// Uses a *global*-fence barrier and no local memory, so the §V-B
// work-group slot gating does not apply and the loop's SWGR policy is the
// only thing limiting work-group overlap.
const BARRIER_SRC: &str = r#"
__kernel void neigh(__global float* tmp, __global const float* a,
                    __global float* o, int n) {
    int g = get_global_id(0);
    float s = 0.0f;
    for (int j = 0; j < n; j++) s += a[(g + j * 64) % (n * 64)];
    tmp[g] = s;
    barrier(CLK_GLOBAL_MEM_FENCE);
    o[g] = tmp[(int)((ulong)g ^ 1UL)] + s;
}
"#;

fn run_barrier_variant(uniform_opt: bool) -> Result<u64, String> {
    let module = soff_runtime::cache::lower_cached(BARRIER_SRC, &[])
        .map_err(|d| format!("compile failed: {d}"))?;
    let kernel = module.kernel("neigh").ok_or("kernel `neigh` missing")?;
    let opts = DatapathOptions { uniform_loop_opt: uniform_opt, ..Default::default() };
    let dp = Datapath::build_opts(kernel, &LatencyModel::default(), opts);
    let n = 32u64;
    let mut gm = GlobalMemory::new();
    let tmp = gm.alloc((n * 64 * 4) as usize);
    let a = gm.alloc((n * 64 * 4) as usize);
    let o = gm.alloc((n * 64 * 4) as usize);
    let cfg = SimConfig { num_instances: 2, ..SimConfig::default() };
    run(
        kernel,
        &dp,
        &cfg,
        NdRange::dim1(n * 16, 16),
        &[
            ArgValue::Buffer(tmp),
            ArgValue::Buffer(a),
            ArgValue::Buffer(o),
            ArgValue::Scalar(n),
        ],
        &mut gm,
    )
    .map(|r| r.cycles)
    .map_err(|e| e.to_string())
}

fn make_like(base: &Variant) -> Variant {
    Variant {
        name: base.name,
        opts: base.opts,
        lat: base.lat.clone(),
        shared_cache: base.shared_cache,
    }
}
