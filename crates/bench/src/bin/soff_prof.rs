//! `soff-prof` — bottleneck profiler for the simulated SOFF machine.
//!
//! Runs one benchmark application with cycle-attribution profiling on and
//! reports, per kernel: the busy / issue-stall / output-stall / idle
//! breakdown of every component and functional unit (the categories sum
//! to the observed cycles — the conservation invariant is checked and
//! printed), the per-cache counters (per buffer-group × instance, not
//! lumped), DRAM queue pressure, and the ranked dominant stall chains
//! ("cache X back-pressures pipeline Y for Z% of cycles").
//!
//! ```text
//! cargo run --release -p soff-bench --bin soff_prof -- [options] <app>
//!   --list             list application names and exit
//!   --scale small|full input scale (default small)
//!   --json             machine-readable JSON on stdout instead of tables
//!   --trace FILE       write a Chrome trace-event / Perfetto timeline of
//!                      the longest launch to FILE
//!   --sample-interval N  cycles between time-series samples (default 64)
//! ```

use soff_bench::json::Json;
use soff_mem::CacheStats;
use soff_sim::{write_chrome_trace, CycleBreakdown, ProfileConfig, ProfileReport};
use soff_workloads::data::Scale;
use soff_workloads::{all_apps, App};
use std::collections::HashMap;
use std::process::ExitCode;

struct Options {
    app: String,
    scale: Scale,
    json: bool,
    trace: Option<String>,
    sample_interval: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: soff_prof [--list] [--scale small|full] [--json] \
         [--trace FILE] [--sample-interval N] <app>"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        app: String::new(),
        scale: Scale::Small,
        json: false,
        trace: None,
        sample_interval: 64,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => {
                for app in all_apps() {
                    println!("{:<16} {}", app.name, app.suite);
                }
                std::process::exit(0);
            }
            "--scale" => match args.next().as_deref() {
                Some("small") => opts.scale = Scale::Small,
                Some("full") => opts.scale = Scale::Full,
                _ => usage(),
            },
            "--json" => opts.json = true,
            "--trace" => match args.next() {
                Some(f) => opts.trace = Some(f),
                None => usage(),
            },
            "--sample-interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.sample_interval = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            name if !name.starts_with('-') && opts.app.is_empty() => opts.app = name.to_string(),
            _ => usage(),
        }
    }
    if opts.app.is_empty() {
        usage();
    }
    opts
}

/// One functional unit's aggregated breakdown: (index, kind, breakdown).
type UnitRow = (usize, String, CycleBreakdown);

/// Per-kernel aggregation over all launches of that kernel.
struct KernelAgg {
    kernel: String,
    launches: u32,
    cycles_observed: u64,
    total_cycles: u64,
    /// (label, kind, comp breakdown, per-unit rows).
    comps: Vec<(String, String, CycleBreakdown, Vec<UnitRow>)>,
    /// (label, breakdown, final counters).
    caches: Vec<(String, CycleBreakdown, CacheStats)>,
    /// (victim, blocker, reason) → cycles.
    bottlenecks: HashMap<(String, String, String), u64>,
}

fn add_cache_stats(a: &mut CacheStats, b: &CacheStats) {
    a.accesses += b.accesses;
    a.hits += b.hits;
    a.misses += b.misses;
    a.writebacks += b.writebacks;
    a.arbitration_stalls += b.arbitration_stalls;
    a.mshr_stalls += b.mshr_stalls;
    a.lock_delay += b.lock_delay;
    a.prefetch_hits += b.prefetch_hits;
}

/// Folds per-launch reports into per-kernel aggregates (launch order
/// preserved) and verifies the conservation invariant on every report.
/// Returns the aggregates and the number of (unit, launch) pairs checked;
/// any violation is returned as a message.
fn aggregate(reports: &[ProfileReport]) -> (Vec<KernelAgg>, u64, Option<String>) {
    let mut by_kernel: Vec<KernelAgg> = Vec::new();
    let mut checked = 0u64;
    let mut violation = None;

    for rep in reports {
        let mut check = |label: &str, cyc: &CycleBreakdown| {
            checked += 1;
            if cyc.total() != rep.cycles_observed && violation.is_none() {
                violation = Some(format!(
                    "{label}: busy {} + issue {} + output {} + idle {} = {} != observed {}",
                    cyc.busy,
                    cyc.issue_stall,
                    cyc.output_stall,
                    cyc.idle,
                    cyc.total(),
                    rep.cycles_observed
                ));
            }
        };
        for c in &rep.comps {
            if c.units.is_empty() {
                check(&c.label, &c.cycles);
            } else {
                for u in &c.units {
                    check(&format!("{} unit {}", c.label, u.unit), &u.cycles);
                }
            }
        }
        for c in &rep.caches {
            check(&c.label, &c.cycles);
        }

        let agg = match by_kernel.iter_mut().find(|a| a.kernel == rep.kernel) {
            Some(a) => a,
            None => {
                by_kernel.push(KernelAgg {
                    kernel: rep.kernel.clone(),
                    launches: 0,
                    cycles_observed: 0,
                    total_cycles: 0,
                    comps: rep
                        .comps
                        .iter()
                        .map(|c| {
                            let units = c
                                .units
                                .iter()
                                .map(|u| (u.unit, u.kind.clone(), CycleBreakdown::default()))
                                .collect();
                            (
                                c.label.clone(),
                                c.kind.clone(),
                                CycleBreakdown::default(),
                                units,
                            )
                        })
                        .collect(),
                    caches: rep
                        .caches
                        .iter()
                        .map(|c| (c.label.clone(), CycleBreakdown::default(), CacheStats::default()))
                        .collect(),
                    bottlenecks: HashMap::new(),
                });
                by_kernel.last_mut().expect("just pushed")
            }
        };
        agg.launches += 1;
        agg.cycles_observed += rep.cycles_observed;
        agg.total_cycles += rep.total_cycles;
        for (slot, c) in agg.comps.iter_mut().zip(&rep.comps) {
            slot.2.add(&c.cycles);
            for (uslot, u) in slot.3.iter_mut().zip(&c.units) {
                uslot.2.add(&u.cycles);
            }
        }
        for (slot, c) in agg.caches.iter_mut().zip(&rep.caches) {
            slot.1.add(&c.cycles);
            add_cache_stats(&mut slot.2, &c.stats);
        }
        for b in &rep.bottlenecks {
            *agg.bottlenecks
                .entry((b.victim.clone(), b.blocker.clone(), b.reason.clone()))
                .or_insert(0) += b.cycles;
        }
    }
    (by_kernel, checked, violation)
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[allow(clippy::too_many_arguments)]
fn print_tables(
    app: &App,
    correct: bool,
    total_cycles: u64,
    kernels: &[KernelAgg],
    dram: &soff_mem::DramStats,
    line_buf: &soff_sim::LineBufStats,
    checked: u64,
    violation: &Option<String>,
) {
    println!("soff-prof — cycle attribution for `{}` ({})", app.name, app.suite);
    println!(
        "result: {}, {} kernel(s), {} total cycles",
        if correct { "correct" } else { "INCORRECT ANSWER" },
        kernels.len(),
        total_cycles,
    );
    match violation {
        None => println!(
            "conservation: OK — {checked} unit×launch breakdowns each sum to the \
             observed cycles"
        ),
        Some(v) => println!("conservation: VIOLATED — {v}"),
    }

    for k in kernels {
        let obs = k.cycles_observed;
        println!();
        println!(
            "kernel `{}` — {} launch(es), {} cycles observed ({} incl. flush)",
            k.kernel, k.launches, obs, k.total_cycles
        );
        println!(
            "  {:<34} {:>10} {:>10} {:>10} {:>10}",
            "component", "busy", "issue-st", "output-st", "idle"
        );
        for (label, kind, cyc, units) in &k.comps {
            println!(
                "  {:<34} {:>10} {:>10} {:>10} {:>10}",
                format!("{label} [{kind}]"),
                cyc.busy,
                cyc.issue_stall,
                cyc.output_stall,
                cyc.idle
            );
            for (ui, ukind, ucyc) in units {
                println!(
                    "  {:<34} {:>10} {:>10} {:>10} {:>10}",
                    format!("    unit {ui} [{ukind}]"),
                    ucyc.busy,
                    ucyc.issue_stall,
                    ucyc.output_stall,
                    ucyc.idle
                );
            }
        }

        if !k.caches.is_empty() {
            println!("  caches (per buffer-group × instance):");
            println!(
                "  {:<28} {:>8} {:>8} {:>8} {:>6} {:>9} {:>9} {:>9}",
                "cache", "accesses", "hits", "misses", "hit%", "arb-st", "mshr-st", "pref-hits"
            );
            let mut idle = 0usize;
            for (label, _cyc, s) in &k.caches {
                if s.accesses == 0 {
                    idle += 1;
                    continue;
                }
                println!(
                    "  {:<28} {:>8} {:>8} {:>8} {:>5.1} {:>9} {:>9} {:>9}",
                    label,
                    s.accesses,
                    s.hits,
                    s.misses,
                    pct(s.hits, s.accesses),
                    s.arbitration_stalls,
                    s.mshr_stalls,
                    s.prefetch_hits
                );
            }
            if idle > 0 {
                println!("  ({idle} caches with zero accesses omitted)");
            }
        }

        let mut ranked: Vec<(&(String, String, String), &u64)> = k.bottlenecks.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        if !ranked.is_empty() {
            println!("  dominant stall chains:");
            for ((victim, blocker, reason), cycles) in ranked.iter().take(8) {
                println!(
                    "  {:>5.1}%  {victim} ← {blocker}  [{reason}; {cycles} cycles]",
                    pct(**cycles, obs)
                );
            }
        }
    }

    println!();
    println!(
        "DRAM: {} line reads, {} line writes, {} queued requests, {} cycles total queue delay",
        dram.reads, dram.writes, dram.queued_requests, dram.queue_delay
    );
    if line_buf.accesses > 0 {
        println!(
            "line buffer: {} accesses ({} window hits, {} underruns), {} stream refills; \
             {} bytes from DRAM, {} bytes served ({} modeled bytes saved)",
            line_buf.accesses,
            line_buf.window_hits,
            line_buf.underruns,
            line_buf.stream_refills,
            line_buf.bytes_from_dram,
            line_buf.bytes_served,
            line_buf.bytes_served.saturating_sub(line_buf.bytes_from_dram),
        );
    }
}

fn breakdown_json(c: &CycleBreakdown) -> Json {
    Json::obj(vec![
        ("busy", Json::Int(c.busy as i64)),
        ("issue_stall", Json::Int(c.issue_stall as i64)),
        ("output_stall", Json::Int(c.output_stall as i64)),
        ("idle", Json::Int(c.idle as i64)),
    ])
}

fn print_json(
    app: &App,
    correct: bool,
    total_cycles: u64,
    kernels: &[KernelAgg],
    dram: &soff_mem::DramStats,
    line_buf: &soff_sim::LineBufStats,
    violation: &Option<String>,
) {
    let kernel_objs = kernels
        .iter()
        .map(|k| {
            let comps = k
                .comps
                .iter()
                .map(|(label, kind, cyc, units)| {
                    let unit_objs = units
                        .iter()
                        .map(|(ui, ukind, ucyc)| {
                            Json::obj(vec![
                                ("unit", Json::Int(*ui as i64)),
                                ("kind", Json::str(ukind.clone())),
                                ("cycles", breakdown_json(ucyc)),
                            ])
                        })
                        .collect();
                    Json::obj(vec![
                        ("label", Json::str(label.clone())),
                        ("kind", Json::str(kind.clone())),
                        ("cycles", breakdown_json(cyc)),
                        ("units", Json::Arr(unit_objs)),
                    ])
                })
                .collect();
            let caches = k
                .caches
                .iter()
                .map(|(label, cyc, s)| {
                    Json::obj(vec![
                        ("label", Json::str(label.clone())),
                        ("cycles", breakdown_json(cyc)),
                        ("accesses", Json::Int(s.accesses as i64)),
                        ("hits", Json::Int(s.hits as i64)),
                        ("misses", Json::Int(s.misses as i64)),
                        ("writebacks", Json::Int(s.writebacks as i64)),
                        ("arbitration_stalls", Json::Int(s.arbitration_stalls as i64)),
                        ("mshr_stalls", Json::Int(s.mshr_stalls as i64)),
                        ("prefetch_hits", Json::Int(s.prefetch_hits as i64)),
                    ])
                })
                .collect();
            let mut ranked: Vec<(&(String, String, String), &u64)> =
                k.bottlenecks.iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            let bottlenecks = ranked
                .iter()
                .map(|((victim, blocker, reason), cycles)| {
                    Json::obj(vec![
                        ("victim", Json::str(victim.clone())),
                        ("blocker", Json::str(blocker.clone())),
                        ("reason", Json::str(reason.clone())),
                        ("cycles", Json::Int(**cycles as i64)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("kernel", Json::str(k.kernel.clone())),
                ("launches", Json::Int(k.launches as i64)),
                ("cycles_observed", Json::Int(k.cycles_observed as i64)),
                ("total_cycles", Json::Int(k.total_cycles as i64)),
                ("comps", Json::Arr(comps)),
                ("caches", Json::Arr(caches)),
                ("bottlenecks", Json::Arr(bottlenecks)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("app", Json::str(app.name)),
        ("correct", Json::Bool(correct)),
        ("total_cycles", Json::Int(total_cycles as i64)),
        (
            "conservation",
            match violation {
                None => Json::str("ok"),
                Some(v) => Json::str(v.clone()),
            },
        ),
        ("kernels", Json::Arr(kernel_objs)),
        (
            "dram",
            Json::obj(vec![
                ("reads", Json::Int(dram.reads as i64)),
                ("writes", Json::Int(dram.writes as i64)),
                ("queued_requests", Json::Int(dram.queued_requests as i64)),
                ("queue_delay", Json::Int(dram.queue_delay as i64)),
            ]),
        ),
        (
            // `bytes_saved` is modeled: bytes delivered to the datapath
            // minus bytes actually streamed from DRAM.
            "line_buf",
            Json::obj(vec![
                ("accesses", Json::Int(line_buf.accesses as i64)),
                ("window_hits", Json::Int(line_buf.window_hits as i64)),
                ("underruns", Json::Int(line_buf.underruns as i64)),
                ("stream_refills", Json::Int(line_buf.stream_refills as i64)),
                ("bytes_from_dram", Json::Int(line_buf.bytes_from_dram as i64)),
                ("bytes_served", Json::Int(line_buf.bytes_served as i64)),
                (
                    "bytes_saved",
                    Json::Int(line_buf.bytes_served.saturating_sub(line_buf.bytes_from_dram) as i64),
                ),
            ]),
        ),
    ]);
    println!("{doc}");
}

fn main() -> ExitCode {
    let opts = parse_args();
    let apps = all_apps();
    let Some(app) = apps.iter().find(|a| a.name == opts.app) else {
        eprintln!("unknown application `{}`; --list prints all names", opts.app);
        return ExitCode::from(2);
    };

    let mut runner =
        match soff_workloads::runner::SimRunner::new(soff_baseline::Framework::Soff, app.source, &[])
        {
            Ok(r) => r,
            Err(outcome) => {
                eprintln!("SOFF cannot build `{}`: {}", app.name, outcome.code());
                return ExitCode::FAILURE;
            }
        };
    runner.enable_profiling(ProfileConfig {
        sample_interval: opts.sample_interval,
        ..ProfileConfig::default()
    });
    let correct = match (app.run)(&mut runner, opts.scale) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("`{}` failed to run: {e}", app.name);
            return ExitCode::FAILURE;
        }
    };

    let (kernels, checked, violation) = aggregate(&runner.profiles);
    let mut dram = soff_mem::DramStats::default();
    let mut line_buf = soff_sim::LineBufStats::default();
    for r in &runner.launch_results {
        dram.reads += r.dram.reads;
        dram.writes += r.dram.writes;
        dram.queued_requests += r.dram.queued_requests;
        dram.queue_delay += r.dram.queue_delay;
        line_buf.merge(&r.line_buf);
    }

    if opts.json {
        print_json(app, correct, runner.total_cycles, &kernels, &dram, &line_buf, &violation);
    } else {
        print_tables(
            app,
            correct,
            runner.total_cycles,
            &kernels,
            &dram,
            &line_buf,
            checked,
            &violation,
        );
    }

    if let Some(path) = &opts.trace {
        // The longest launch carries the most interesting timeline.
        match runner.profiles.iter().max_by_key(|r| r.cycles_observed) {
            Some(rep) => {
                let mut buf = Vec::new();
                if let Err(e) = write_chrome_trace(rep, &mut buf) {
                    eprintln!("could not serialize trace: {e}");
                    return ExitCode::FAILURE;
                }
                if let Err(e) = std::fs::write(path, buf) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {path} (kernel `{}`, {} cycles; load in Perfetto or chrome://tracing)",
                    rep.kernel, rep.cycles_observed
                );
            }
            None => eprintln!("no profiled launches; {path} not written"),
        }
    }

    if violation.is_some() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
