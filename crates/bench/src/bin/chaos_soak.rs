//! Deterministic cross-layer chaos soak for the serve stack.
//!
//! Two phases over the *same* seeded job mix:
//!
//! 1. **Reference** — a chaos-free run records every job's cycle count
//!    and read-back bytes.
//! 2. **Chaos** — a fresh server (supervision on: quarantine, breakers,
//!    checkpoint slot recovery) runs the identical mix while a seeded
//!    [`ChaosSchedule`] injects simulator faults, host panics, a poison
//!    job, device-slot deaths, disk-store I/O faults (EIO / ENOSPC /
//!    torn / bit-flip), and torn journal appends — all through the
//!    deterministic shims, no wall-clock anywhere.
//!
//! The soak then asserts the crash-only contract and exits non-zero on
//! any violation:
//!
//! - **Conservation** — every admitted job settles exactly once
//!   (client outcomes == jobs; server accounting agrees; a second wait
//!   is `UnknownJob`). Nothing lost, nothing double-completed.
//! - **Bit-identity** — every *surviving* job's cycles and bytes equal
//!   the reference run exactly; every *failed* job's buffer equals its
//!   original input (containment rollback).
//! - **Bounded recovery** — slot re-admissions and quarantines are
//!   bounded by what the schedule injected.
//! - **Self-healing** — after the chaos window [`Server::health`]
//!   reports `Ok` again, and the journal replays clean (unique keys,
//!   one record per settled job).
//! - **Determinism** — the schedule digest is a pure function of the
//!   seed (printed and written to `BENCH_chaos.json` so two runs of the
//!   same seed can be diffed).
//!
//! Usage:
//!   chaos_soak [--slots N] [--tenants N] [--jobs N] [--seed S]
//!              [--slice CYCLES] [--events N] [--cache-dir DIR]

use soff_bench::json::{write_bench_rows, Json};
use soff_obs::Registry;
use soff_serve::{
    chaos::{stall_all_channels, ChaosConfig, ChaosEvent, ChaosSchedule},
    BreakerConfig, HealthState, JobId, NdRange, RetryPolicy, ServeError, Server, ServerConfig,
    Session, Supervision,
};
use soff_workloads::journal::{self, Journal, JournalFaults, Record};
use soff_workloads::AppResult;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Three kernel variants (as in `serve_soak`) so the chaos run exercises
/// more than one disk-store object; variant 7 is reserved for the heal
/// build.
fn source(variant: u64) -> String {
    format!(
        r#"
__kernel void chaos{variant}(__global float* a, int iters, float bias) {{
    int i = get_global_id(0);
    float x = a[i];
    for (int k = 0; k < iters; k++) {{
        x = x * 0.99{variant}f + bias;
    }}
    a[i] = x;
}}
"#
    )
}

/// splitmix64 (project-standard seedable stream) for the job mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn unit(&mut self) -> f32 {
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
    }
}

#[derive(Clone, Copy)]
struct JobSpec {
    n: usize,
    iters: i32,
    bias: f32,
    input_seed: u64,
}

/// The job mix for one tenant, a pure function of (seed, tenant index) —
/// identical across the reference and chaos phases.
fn tenant_jobs(seed: u64, tenant: usize, jobs: usize) -> Vec<JobSpec> {
    let mut rng = Rng(seed ^ (tenant as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    (0..jobs)
        .map(|_| JobSpec {
            n: (16 + 4 * rng.below(12)) as usize,
            // Long enough that every job spans several slices (so slot
            // deaths usually hit a checkpointed job).
            iters: (150 + rng.below(200)) as i32,
            bias: rng.unit() * 0.25,
            input_seed: rng.next(),
        })
        .collect()
}

fn input_bytes(spec: &JobSpec) -> Vec<u8> {
    let mut rng = Rng(spec.input_seed);
    (0..spec.n).flat_map(|_| rng.unit().to_le_bytes()).collect()
}

/// What a job injection does to its first attempt(s).
#[derive(Clone, Copy, PartialEq)]
enum Injection {
    None,
    SimFault,
    Panic,
    Sticky(u32),
}

/// One settled job as a client saw it.
struct JobResult {
    outcome: Result<(u64, u32), String>,
    bytes: Vec<u8>,
    input: Vec<u8>,
}

/// Probes the channel count of the machine a (variant, spec) launch
/// instantiates, so `stall_all_channels` wedges every channel exactly.
fn probe_nchans(variant: u64, spec: &JobSpec) -> usize {
    let device = soff_serve::Device::system_a();
    let src = source(variant);
    let program = soff_runtime::Program::build(&src, &[], &device).expect("probe build");
    let mut ctx = soff_runtime::Context::new(device);
    let buf = ctx.create_buffer(spec.n * 4);
    let mut k = program.kernel(&format!("chaos{variant}")).expect("probe kernel");
    k.set_arg_buffer(0, buf).set_arg_i32(1, spec.iters).set_arg_f32(2, spec.bias);
    let nd = NdRange::dim1(spec.n as u64, 4);
    let args = ctx.prepare_launch(&k, nd).expect("probe launch");
    let ck = k.compiled();
    let cfg = ctx.launch_config(ck);
    soff_sim::Machine::new(&ck.kernel, &ck.datapath, &cfg, nd, &args)
        .expect("probe machine")
        .num_channels()
}

/// Crash-only journal handle: a torn append triggers `Journal::recover`
/// (truncate the torn tail, reopen) and a bounded re-append.
struct ChaosJournal {
    path: PathBuf,
    identity: u64,
    inner: Mutex<(Journal, u64)>,
}

impl ChaosJournal {
    fn create(path: PathBuf, identity: u64) -> ChaosJournal {
        let j = Journal::create(&path, identity).expect("create chaos journal");
        ChaosJournal { path, identity, inner: Mutex::new((j, 0)) }
    }

    fn append(&self, record: &Record) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for _ in 0..4 {
            match g.0.append(record) {
                Ok(()) => return,
                Err(_) => {
                    // Crash-only: recover (truncates the torn tail) and
                    // try again; the shim injects at op indices, so the
                    // retry is a different op and eventually lands.
                    g.1 += 1;
                    let (_, fresh) = Journal::recover(&self.path, self.identity)
                        .expect("journal recovery after torn append");
                    g.0 = fresh;
                }
            }
        }
        panic!("journal append failed 4 times in a row");
    }

    fn recoveries(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).1
    }
}

/// Runs one tenant's whole job list; `injections[j]` poisons job j's
/// early attempts. Backpressure (queue/quota/breaker rejections) drains
/// the oldest pending job and retries.
#[allow(clippy::too_many_arguments)]
fn run_tenant(
    sess: &Session,
    tenant: usize,
    specs: &[JobSpec],
    variant: u64,
    injections: &[Injection],
    journal: Option<&ChaosJournal>,
) -> Vec<JobResult> {
    let src = source(variant);
    let program = sess.build_program(&src, &[]).expect("soak build");
    let name = format!("chaos{variant}");

    let inputs: Vec<Vec<u8>> = specs.iter().map(input_bytes).collect();
    let buffers: Vec<soff_serve::Buffer> = specs
        .iter()
        .zip(&inputs)
        .map(|(spec, input)| {
            let buf = sess.create_buffer(spec.n * 4).expect("create buffer");
            sess.write_buffer(buf, input).expect("write buffer");
            buf
        })
        .collect();

    let mut outcomes: Vec<Option<Result<(u64, u32), String>>> = vec![None; specs.len()];
    let mut pending: VecDeque<(usize, JobId)> = VecDeque::new();
    let settle = |pending: &mut VecDeque<(usize, JobId)>,
                      outcomes: &mut Vec<Option<Result<(u64, u32), String>>>| {
        let (j, id) = pending.pop_front().expect("settle with empty pending");
        let outcome = match sess.wait(id) {
            Ok(out) => Ok((out.cycles, out.attempts)),
            Err(e) => Err(e.class().to_string()),
        };
        // No job settles twice: a second wait on a settled id is typed.
        assert!(
            matches!(sess.wait(id), Err(ServeError::UnknownJob)),
            "job t{tenant}/j{j} was waitable twice"
        );
        if let Some(journal) = journal {
            journal.append(&job_record(tenant, j, &outcome));
        }
        assert!(outcomes[j].replace(outcome).is_none(), "job t{tenant}/j{j} settled twice");
    };

    for (j, (spec, &buf)) in specs.iter().zip(&buffers).enumerate() {
        let mut k = sess.kernel(&program, &name).expect("kernel");
        k.set_arg_buffer(0, buf).set_arg_i32(1, spec.iters).set_arg_f32(2, spec.bias);
        match injections[j] {
            Injection::None => {}
            Injection::SimFault => {
                sess.inject_faults_next(stall_all_channels(probe_nchans(variant, spec)));
            }
            Injection::Panic => sess.inject_panic_next(),
            Injection::Sticky(n) => sess.inject_sticky_panics_next(n),
        }
        loop {
            match sess.enqueue(&k, NdRange::dim1(spec.n as u64, 4)) {
                Ok(id) => {
                    pending.push_back((j, id));
                    break;
                }
                Err(ServeError::QueueFull { .. } | ServeError::QuotaExceeded { .. }) => {
                    settle(&mut pending, &mut outcomes);
                }
                Err(ServeError::CircuitOpen) => {
                    // Shed: drain if anything is in flight (its settle
                    // feeds the breaker), else keep pressing — rejections
                    // are the breaker's clock and half-open is bounded by
                    // its shed budget.
                    if pending.is_empty() {
                        std::thread::yield_now();
                    } else {
                        settle(&mut pending, &mut outcomes);
                    }
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
    }
    while !pending.is_empty() {
        settle(&mut pending, &mut outcomes);
    }

    specs
        .iter()
        .enumerate()
        .map(|(j, _)| JobResult {
            outcome: outcomes[j].take().expect("every job settled"),
            bytes: sess.read_buffer(buffers[j]).expect("read back"),
            input: inputs[j].clone(),
        })
        .collect()
}

/// Renders one settled job as a journal record (`app` carries the
/// (tenant, job) key; cycles 0 and a non-Ok outcome mark failures).
fn job_record(tenant: usize, job: usize, outcome: &Result<(u64, u32), String>) -> Record {
    let (ok, cycles, attempts) = match outcome {
        Ok((cycles, attempts)) => (true, *cycles, *attempts),
        Err(_) => (false, 0, 0),
    };
    Record {
        app: format!("t{tenant}j{job}"),
        fw: "Soff".to_string(),
        scale: "Small".to_string(),
        result: AppResult {
            outcome: if ok {
                soff_baseline::Outcome::Ok
            } else {
                soff_baseline::Outcome::RuntimeError
            },
            seconds: 0.0,
            cycles,
            launches: 1,
            replication: 1,
            wall_seconds: 0.0,
        },
        panicked: false,
        attempts: attempts.max(1),
    }
}

struct Opts {
    slots: usize,
    tenants: usize,
    jobs: usize,
    seed: u64,
    slice: u64,
    events: u32,
    cache_dir: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_soak [--slots N] [--tenants N] [--jobs N] [--seed S] \
         [--slice CYCLES] [--events N] [--cache-dir DIR]"
    );
    std::process::exit(2);
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        slots: 2,
        tenants: 3,
        jobs: 8,
        seed: 1,
        slice: 2_000,
        events: 14,
        cache_dir: None,
    };
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--slots" => o.slots = val("--slots").parse().unwrap_or_else(|_| usage()),
            "--tenants" => o.tenants = val("--tenants").parse().unwrap_or_else(|_| usage()),
            "--jobs" => o.jobs = val("--jobs").parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--slice" => o.slice = val("--slice").parse().unwrap_or_else(|_| usage()),
            "--events" => o.events = val("--events").parse().unwrap_or_else(|_| usage()),
            "--cache-dir" => o.cache_dir = Some(PathBuf::from(val("--cache-dir"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if o.slots == 0 || o.tenants == 0 || o.jobs < 4 {
        eprintln!("--slots/--tenants must be positive, --jobs at least 4");
        usage();
    }
    o
}

fn run_phase(
    server: &Server,
    o: &Opts,
    injections: &HashMap<(usize, usize), Injection>,
    journal: Option<&ChaosJournal>,
) -> Vec<Vec<JobResult>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..o.tenants)
            .map(|t| {
                let specs = tenant_jobs(o.seed, t, o.jobs);
                let inj: Vec<Injection> = (0..o.jobs)
                    .map(|j| injections.get(&(t, j)).copied().unwrap_or(Injection::None))
                    .collect();
                s.spawn(move || {
                    let sess = server.connect(&format!("t{t}")).expect("connect");
                    let run = run_tenant(&sess, t, &specs, (t % 3) as u64, &inj, journal);
                    sess.close();
                    run
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    })
}

fn cleanup(dir: &Path, journal_path: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_file(journal_path);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let o = parse(&args);

    let chaos_cfg = ChaosConfig {
        seed: o.seed,
        tenants: o.tenants as u32,
        jobs_per_tenant: o.jobs as u32,
        events: o.events,
    };
    let schedule = ChaosSchedule::generate(chaos_cfg);
    assert_eq!(
        schedule.digest(),
        ChaosSchedule::generate(chaos_cfg).digest(),
        "schedule must be a pure function of its config"
    );
    let digest = schedule.digest();

    // Render the schedule into per-layer plans.
    let mut injections: HashMap<(usize, usize), Injection> = HashMap::new();
    let mut slot_deaths: Vec<u64> = Vec::new();
    let mut io = soff_runtime::store::IoFaultPlan::default();
    let mut torn_appends: Vec<u64> = Vec::new();
    for e in schedule.events() {
        match *e {
            ChaosEvent::SimFault { tenant, job } => {
                injections.insert((tenant as usize, job as usize), Injection::SimFault);
            }
            ChaosEvent::JobPanic { tenant, job } => {
                injections.insert((tenant as usize, job as usize), Injection::Panic);
            }
            ChaosEvent::StickyPanic { tenant, job, attempts } => {
                injections
                    .insert((tenant as usize, job as usize), Injection::Sticky(attempts));
            }
            ChaosEvent::SlotDeath { slice } => slot_deaths.push(slice),
            ChaosEvent::DiskReadError { op } => io.read_errors.push(op),
            ChaosEvent::DiskWriteError { op } => io.write_errors.push(op),
            ChaosEvent::DiskTornWrite { op } => io.torn_writes.push(op),
            ChaosEvent::DiskBitFlip { op } => io.bit_flips.push(op),
            ChaosEvent::JournalTear { append } => torn_appends.push(append),
        }
    }
    let stickies =
        injections.values().filter(|i| matches!(i, Injection::Sticky(_))).count() as u64;
    println!(
        "chaos_soak: seed={} tenants={} jobs={} slots={} slice={} schedule={:016x}",
        o.seed, o.tenants, o.jobs, o.slots, o.slice, digest
    );
    println!(
        "schedule: {} events ({} job injections, {} slot deaths, {} disk faults, {} journal tears)",
        schedule.events().len(),
        injections.len(),
        slot_deaths.len(),
        io.read_errors.len() + io.write_errors.len() + io.torn_writes.len() + io.bit_flips.len(),
        torn_appends.len(),
    );

    // ------------------------------------------------- phase 1: reference
    soff_runtime::cache::clear();
    soff_runtime::cache::reset_stats();
    let reference_server = Server::new(ServerConfig {
        device_slots: o.slots,
        slice_cycles: o.slice,
        ..ServerConfig::default()
    })
    .expect("start reference server");
    let t0 = Instant::now();
    let reference = run_phase(&reference_server, &o, &HashMap::new(), None);
    reference_server.shutdown();
    let ref_wall = t0.elapsed();
    for (t, run) in reference.iter().enumerate() {
        for (j, r) in run.iter().enumerate() {
            assert!(r.outcome.is_ok(), "reference job t{t}/j{j} failed: {:?}", r.outcome);
        }
    }
    println!("reference: {} jobs in {:.2}s", o.tenants * o.jobs, ref_wall.as_secs_f64());

    // ----------------------------------------------------- phase 2: chaos
    let cache_dir = o.cache_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("soff-chaos-soak-{}-{}", std::process::id(), o.seed))
    });
    let _ = std::fs::remove_dir_all(&cache_dir);
    let journal_path = cache_dir.with_extension("journal");
    let _ = std::fs::remove_file(&journal_path);
    let journal = ChaosJournal::create(journal_path.clone(), o.seed);

    soff_runtime::cache::clear();
    soff_runtime::cache::reset_stats();
    soff_runtime::store::set_io_faults(Some(io.clone()));
    journal::set_journal_faults(Some(JournalFaults { torn_appends: torn_appends.clone() }));

    let registry = std::sync::Arc::new(Registry::new());
    let chaos_server = Server::new(ServerConfig {
        device_slots: o.slots,
        slice_cycles: o.slice,
        cache_dir: Some(cache_dir.clone()),
        retry: RetryPolicy { max_attempts: 3, ..Default::default() },
        supervision: Supervision {
            quarantine_after: 3,
            max_slot_recoveries: 5,
            breaker: BreakerConfig { failure_threshold: 2, open_budget: 2, probe_budget: 1 },
        },
        registry: Some(std::sync::Arc::clone(&registry)),
        ..ServerConfig::default()
    })
    .expect("start chaos server");
    chaos_server.inject_slot_deaths(&slot_deaths);

    let t1 = Instant::now();
    let chaos = run_phase(&chaos_server, &o, &injections, Some(&journal));
    let chaos_wall = t1.elapsed();

    // Chaos window over: snapshot the shim counters (clearing a plan
    // resets them), then clear every shim and heal the store with one
    // clean write (self-healing is part of the contract under test).
    let injected_io = soff_runtime::store::injected_io_faults();
    let injected_journal = journal::injected_journal_faults();
    soff_runtime::store::set_io_faults(None);
    journal::set_journal_faults(None);
    {
        let healer = chaos_server.connect("healer").expect("connect healer");
        healer.build_program(&source(7), &[]).expect("heal build");
        healer.close();
    }
    let health = chaos_server.health();
    let stats = chaos_server.stats();
    chaos_server.shutdown();

    // ------------------------------------------------------- invariants
    let mut violations: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            eprintln!("VIOLATION: {what}");
            violations.push(what);
        }
    };

    // Conservation: every job settled exactly once, client and server
    // agree. (run_tenant already asserted no job settles twice.)
    let (mut survived, mut failed_jobs) = (0u64, 0u64);
    let mut identical = 0u64;
    for (t, run) in chaos.iter().enumerate() {
        check(
            run.len() == o.jobs,
            format!("tenant {t}: {} outcomes for {} jobs", run.len(), o.jobs),
        );
        for (j, r) in run.iter().enumerate() {
            let reference = &reference[t][j];
            let (ref_cycles, _) = reference.outcome.as_ref().expect("reference all-ok");
            match &r.outcome {
                Ok((cycles, attempts)) => {
                    survived += 1;
                    check(
                        cycles == ref_cycles,
                        format!("t{t}/j{j}: {cycles} cycles, reference {ref_cycles}"),
                    );
                    check(
                        r.bytes == reference.bytes,
                        format!("t{t}/j{j}: surviving bytes differ from reference"),
                    );
                    check(
                        *attempts <= 3,
                        format!("t{t}/j{j}: {attempts} attempts exceeds the retry budget"),
                    );
                    if cycles == ref_cycles && r.bytes == reference.bytes {
                        identical += 1;
                    }
                }
                Err(class) => {
                    failed_jobs += 1;
                    check(
                        class == "quarantined",
                        format!("t{t}/j{j}: failed with `{class}`, only quarantine may kill"),
                    );
                    check(
                        r.bytes == r.input,
                        format!("t{t}/j{j}: failed job's memory not rolled back"),
                    );
                }
            }
        }
    }
    let total = (o.tenants * o.jobs) as u64;
    check(
        survived + failed_jobs == total,
        format!("{survived} + {failed_jobs} settled != {total} admitted"),
    );
    check(
        failed_jobs == stickies,
        format!("{failed_jobs} failed jobs but {stickies} poison jobs scheduled"),
    );
    let (srv_completed, srv_failed): (u64, u64) = stats
        .tenants
        .iter()
        .filter(|t| t.name != "healer")
        .fold((0, 0), |(c, f), t| (c + t.completed, f + t.failed));
    check(
        srv_completed == survived && srv_failed == failed_jobs,
        format!(
            "server accounting ({srv_completed} ok, {srv_failed} failed) disagrees with \
             clients ({survived} ok, {failed_jobs} failed)"
        ),
    );

    // Bounded recovery: what recovered is bounded by what was injected.
    let slot_recoveries =
        registry.counter("soff_serve_recoveries_total", &[("kind", "slot")]).get();
    let quarantines: u64 = stats.tenants.iter().map(|t| t.quarantined).sum();
    check(
        slot_recoveries <= slot_deaths.len() as u64,
        format!("{slot_recoveries} slot recoveries from {} scheduled deaths", slot_deaths.len()),
    );
    check(
        quarantines == stickies,
        format!("{quarantines} quarantines from {stickies} poison jobs"),
    );

    // Self-healing: health is Ok again and the journal replays clean.
    check(
        health.state == HealthState::Ok,
        format!("health did not return to Ok: {:?}", health.causes),
    );
    match journal::replay(&journal_path, o.seed) {
        Err(e) => check(false, format!("journal replay failed: {e}")),
        Ok(replayed) => {
            let mut keys: Vec<String> = replayed.iter().map(|r| r.app.clone()).collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            check(
                keys.len() == n,
                format!("journal replayed {} records, {} unique", n, keys.len()),
            );
            check(
                n as u64 == total,
                format!("journal holds {n} records for {total} settled jobs"),
            );
        }
    }

    let cache = soff_runtime::cache::stats();
    println!(
        "chaos: {survived} survived ({identical} bit-identical), {failed_jobs} quarantined, \
         in {:.2}s",
        chaos_wall.as_secs_f64()
    );
    println!(
        "recoveries: retry={} slot={} breaker={} quarantines={quarantines} \
         journal_recoveries={}",
        registry.counter("soff_serve_recoveries_total", &[("kind", "retry")]).get(),
        slot_recoveries,
        registry.counter("soff_serve_recoveries_total", &[("kind", "breaker")]).get(),
        journal.recoveries(),
    );
    println!(
        "injected: store_io={injected_io} journal={injected_journal}  \
         disk: io_errors={} corrupt={} heals={}",
        cache.disk_io_errors, cache.disk_corrupt, cache.disk_heals
    );
    println!("schedule digest {digest:016x}");

    let row = Json::obj(vec![
        ("seed", Json::Int(o.seed as i64)),
        ("tenants", Json::Int(o.tenants as i64)),
        ("jobs_per_tenant", Json::Int(o.jobs as i64)),
        ("slots", Json::Int(o.slots as i64)),
        ("slice_cycles", Json::Int(o.slice as i64)),
        ("events", Json::Int(schedule.events().len() as i64)),
        ("schedule_digest", Json::str(format!("{digest:016x}"))),
        ("survived", Json::Int(survived as i64)),
        ("bit_identical", Json::Int(identical as i64)),
        ("quarantined", Json::Int(failed_jobs as i64)),
        ("slot_deaths_scheduled", Json::Int(slot_deaths.len() as i64)),
        ("slot_recoveries", Json::Int(slot_recoveries as i64)),
        (
            "retry_recoveries",
            Json::Int(
                registry.counter("soff_serve_recoveries_total", &[("kind", "retry")]).get()
                    as i64,
            ),
        ),
        ("journal_recoveries", Json::Int(journal.recoveries() as i64)),
        ("store_faults_injected", Json::Int(injected_io as i64)),
        ("journal_faults_injected", Json::Int(injected_journal as i64)),
        ("disk_io_errors", Json::Int(cache.disk_io_errors as i64)),
        ("disk_corrupt", Json::Int(cache.disk_corrupt as i64)),
        ("disk_heals", Json::Int(cache.disk_heals as i64)),
        ("health_ok", Json::Bool(health.state == HealthState::Ok)),
        ("reference_wall_seconds", Json::Num(ref_wall.as_secs_f64())),
        ("chaos_wall_seconds", Json::Num(chaos_wall.as_secs_f64())),
        ("violations", Json::Int(violations.len() as i64)),
    ]);
    match write_bench_rows("chaos", vec![row]) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
    }

    if o.cache_dir.is_none() {
        cleanup(&cache_dir, &journal_path);
    }
    if !violations.is_empty() {
        eprintln!("chaos_soak: {} invariant violation(s)", violations.len());
        std::process::exit(1);
    }
    println!("chaos_soak: all invariants held");
}
