//! Regenerates **Table II** (functional correctness of Intel OpenCL,
//! Xilinx SDAccel, and SOFF on all 34 applications).
//!
//! ```text
//! cargo run --release -p soff-bench --bin table2 [--json] [--jobs N]
//! ```

use soff_baseline::{Framework, Outcome};
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{jobs_flag, paper, sweep_options};
use soff_workloads::sweep::run_suite_parallel;
use soff_workloads::{all_apps, data::Scale, Suite};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::Small;
    let json = args.iter().any(|a| a == "--json");
    let jobs = jobs_flag(&args);
    let mut jrows = Vec::new();
    println!("Table II: Applications (L = local memory, B = barrier, A = atomics)");
    println!("{:-<72}", "");
    println!(
        "{:<16} {:<8} {:>2}{:>2}{:>2}  {:>8} {:>8} {:>8}",
        "Application", "Suite", "L", "B", "A", "Intel", "Xilinx", "SOFF"
    );
    println!("{:-<72}", "");
    let mut fails = [0u32; 3];
    let mut soff_correct = 0u32;
    let apps = all_apps();
    // Fan the whole 34 × 3 grid across the pool; rows come back in
    // app-major input order, so printing stays a straight walk.
    let fws = [Framework::IntelLike, Framework::XilinxLike, Framework::Soff];
    let grid = run_suite_parallel(&apps, &fws, scale, &sweep_options(jobs));
    for (app, row) in apps.iter().zip(grid.chunks(fws.len())) {
        let intel = row[0].result.outcome;
        let xilinx = row[1].result.outcome;
        let soff = row[2].result.outcome;
        for (i, o) in [intel, xilinx, soff].iter().enumerate() {
            if *o != Outcome::Ok {
                fails[i] += 1;
            }
        }
        if soff == Outcome::Ok {
            soff_correct += 1;
        }
        let suite = match app.suite {
            Suite::SpecAccel => "SPEC",
            Suite::PolyBench => "Poly",
        };
        let mark = |b: bool| if b { "x" } else { "" };
        println!(
            "{:<16} {:<8} {:>2}{:>2}{:>2}  {:>8} {:>8} {:>8}",
            app.name,
            suite,
            mark(app.features.local),
            mark(app.features.barrier),
            mark(app.features.atomics),
            intel.code(),
            xilinx.code(),
            soff.code(),
        );
        if json {
            jrows.push(Json::obj(vec![
                ("app", Json::str(app.name)),
                ("suite", Json::str(suite)),
                ("local", Json::Bool(app.features.local)),
                ("barrier", Json::Bool(app.features.barrier)),
                ("atomics", Json::Bool(app.features.atomics)),
                ("intel", Json::str(intel.code())),
                ("xilinx", Json::str(xilinx.code())),
                ("soff", Json::str(soff.code())),
            ]));
        }
    }
    println!("{:-<72}", "");
    println!(
        "Failures — Intel: {}, Xilinx: {}, SOFF: {} (paper: {}, {}, {})",
        fails[0], fails[1], fails[2], paper::TABLE2_FAILS.0, paper::TABLE2_FAILS.1, paper::TABLE2_FAILS.2
    );
    println!(
        "SOFF correctly executes {soff_correct} of 34 applications \
         (paper: 31 of 34; the rest exceed the Arria 10's capacity)."
    );
    println!(
        "Codes: CE compile error, IA incorrect answer, RE run-time error, \
         H hang, IR insufficient FPGA resources."
    );

    if json {
        match write_bench_rows("table2", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}
