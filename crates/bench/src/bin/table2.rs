//! Regenerates **Table II** (functional correctness of Intel OpenCL,
//! Xilinx SDAccel, and SOFF), extended beyond the paper's 34 applications
//! with the temporally-blocked stencil suite (column `W`: sliding-window
//! kernels served by the line buffer).
//!
//! ```text
//! cargo run --release -p soff-bench --bin table2 \
//!     [--json] [--jobs N] [--resume <journal>] [--digest]
//! ```
//!
//! `--resume <journal>` makes the sweep crash-recoverable: completed
//! cells are durably appended to the journal, and a journal left by a
//! killed run of the same sweep is replayed (its cells skipped) — the
//! resumed output is byte-identical to an uninterrupted run. `--digest`
//! prints the sweep-digest fingerprint on its own line so the CI smoke
//! can compare runs with `grep`.

use soff_baseline::{Framework, Outcome};
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{jobs_flag, paper, resume_flag, sweep_options};
use soff_workloads::sweep::{digest_fingerprint, run_suite_resumable};
use soff_workloads::{all_apps, data::Scale, Suite};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::Small;
    let json = args.iter().any(|a| a == "--json");
    let want_digest = args.iter().any(|a| a == "--digest");
    let jobs = jobs_flag(&args);
    let resume = resume_flag(&args);
    let mut jrows = Vec::new();
    println!(
        "Table II: Applications (L = local memory, B = barrier, A = atomics, \
         W = sliding window)"
    );
    println!("{:-<72}", "");
    println!(
        "{:<16} {:<8} {:>2}{:>2}{:>2}{:>2}  {:>8} {:>8} {:>8}",
        "Application", "Suite", "L", "B", "A", "W", "Intel", "Xilinx", "SOFF"
    );
    println!("{:-<72}", "");
    let mut fails = [0u32; 3];
    let mut soff_correct = 0u32;
    let apps = all_apps();
    // Fan the whole app × framework grid across the pool; rows come back in
    // app-major input order, so printing stays a straight walk.
    let fws = [Framework::IntelLike, Framework::XilinxLike, Framework::Soff];
    let mut opts = sweep_options(jobs);
    opts.journal = resume;
    let grid = match run_suite_resumable(&apps, &fws, scale, &opts) {
        Ok(grid) => grid,
        // Typed journal failures (stale, corrupt, unwritable) — never a
        // panic, never a silently mixed resume.
        Err(e) => {
            eprintln!("cannot resume: {e}");
            std::process::exit(1);
        }
    };
    for (app, row) in apps.iter().zip(grid.chunks(fws.len())) {
        let intel = row[0].result.outcome;
        let xilinx = row[1].result.outcome;
        let soff = row[2].result.outcome;
        for (i, o) in [intel, xilinx, soff].iter().enumerate() {
            if *o != Outcome::Ok {
                fails[i] += 1;
            }
        }
        if soff == Outcome::Ok {
            soff_correct += 1;
        }
        let suite = match app.suite {
            Suite::SpecAccel => "SPEC",
            Suite::PolyBench => "Poly",
            Suite::Stencil => "Stencil",
        };
        let mark = |b: bool| if b { "x" } else { "" };
        println!(
            "{:<16} {:<8} {:>2}{:>2}{:>2}{:>2}  {:>8} {:>8} {:>8}",
            app.name,
            suite,
            mark(app.features.local),
            mark(app.features.barrier),
            mark(app.features.atomics),
            mark(app.features.window),
            intel.code(),
            xilinx.code(),
            soff.code(),
        );
        if json {
            jrows.push(Json::obj(vec![
                ("app", Json::str(app.name)),
                ("suite", Json::str(suite)),
                ("local", Json::Bool(app.features.local)),
                ("barrier", Json::Bool(app.features.barrier)),
                ("atomics", Json::Bool(app.features.atomics)),
                ("window", Json::Bool(app.features.window)),
                ("intel", Json::str(intel.code())),
                ("xilinx", Json::str(xilinx.code())),
                ("soff", Json::str(soff.code())),
            ]));
        }
    }
    println!("{:-<72}", "");
    println!(
        "Failures — Intel: {}, Xilinx: {}, SOFF: {} (paper: {}, {}, {})",
        fails[0], fails[1], fails[2], paper::TABLE2_FAILS.0, paper::TABLE2_FAILS.1, paper::TABLE2_FAILS.2
    );
    println!(
        "SOFF correctly executes {soff_correct} of {} applications \
         (paper: 31 of 34; the stencil suite extends the original grid).",
        apps.len()
    );
    println!(
        "Codes: CE compile error, IA incorrect answer, RE run-time error, \
         H hang, IR insufficient FPGA resources."
    );

    let resumed = grid.iter().filter(|c| c.from_journal).count();
    let retried = grid.iter().filter(|c| c.attempts > 1).count();
    let cancelled = grid.iter().filter(|c| c.cancelled).count();
    let partial = cancelled > 0;
    if resumed > 0 {
        println!("resumed: {resumed} of {} cells replayed from the journal", grid.len());
    }
    if want_digest {
        println!("sweep digest: {:016x}", digest_fingerprint(&grid));
    }

    if json {
        // The audit trailer: enough to tell a resumed run from a fresh
        // one (and a partial, cancelled run from a complete one).
        let cache = soff_runtime::cache::stats();
        jrows.push(Json::obj(vec![
            ("partial", Json::Bool(partial)),
            ("cancelled_cells", Json::Int(cancelled as i64)),
            ("resumed_cells", Json::Int(resumed as i64)),
            ("retried_cells", Json::Int(retried as i64)),
            ("digest", Json::str(format!("{:016x}", digest_fingerprint(&grid)))),
            ("frontend_hits", Json::Int(cache.frontend_hits as i64)),
            ("frontend_misses", Json::Int(cache.frontend_misses as i64)),
            ("program_hits", Json::Int(cache.program_hits as i64)),
            ("program_misses", Json::Int(cache.program_misses as i64)),
        ]));
        match write_bench_rows("table2", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}
