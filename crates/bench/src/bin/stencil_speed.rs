//! Cycle-count benchmark of the sliding-window line buffer.
//!
//! Runs each stencil application with the line buffer on and off, each
//! under all three schedulers, and reports the simulated-cycle speedup
//! plus the cache-miss and DRAM-traffic deltas the window path buys.
//! Within each mode the three schedulers must agree bit-for-bit, and the
//! output buffers must be byte-identical across all six runs (the line
//! buffer is a performance feature, never a semantic one). Exits nonzero
//! on any disagreement, any incorrect answer, or — the CI self-check —
//! if the line-buffer path is slower than the cache path on `2dconv`.
//!
//! ```text
//! cargo run --release -p soff-bench --bin stencil_speed [--apps 2dconv,jacobi] [--jobs N]
//! ```
//!
//! Writes `BENCH_stencil.json` in the repo root.

use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{fmt_geomean, geomean, jobs_flag};
use soff_sim::Scheduler;
use soff_workloads::data::Scale;
use soff_workloads::stencil::{run_stencil, stencil_app_names, StencilRun};
use soff_workloads::{all_apps, App};

const SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Dense,
    Scheduler::EventDriven,
    Scheduler::Compiled,
];

/// One line-buffer mode: the dense-scheduler run plus agreement across
/// the other two backends.
struct Mode {
    run: StencilRun,
    agree: bool,
}

fn run_mode(app: &App, line_buffer: bool) -> Result<Mode, String> {
    let mut first: Option<StencilRun> = None;
    let mut agree = true;
    for sched in SCHEDULERS {
        let run = run_stencil(app, Scale::Small, sched, line_buffer)
            .map_err(|o| format!("{sched:?} failed ({})", o.code()))?;
        if !run.correct {
            return Err(format!("incorrect answer ({sched:?})"));
        }
        match &first {
            None => first = Some(run),
            Some(f) => {
                agree &= f.cycles == run.cycles
                    && f.buffers == run.buffers
                    && f.line_buf == run.line_buf
                    && f.cache_misses == run.cache_misses
                    && f.dram_lines == run.dram_lines;
            }
        }
    }
    Ok(Mode { run: first.unwrap(), agree })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect());

    let registry = all_apps();
    let apps: Vec<App> = stencil_app_names()
        .iter()
        .filter(|n| match &only {
            Some(names) => names.iter().any(|m| m == *n),
            None => true,
        })
        .map(|n| *registry.iter().find(|a| a.name == *n).expect("registry"))
        .collect();
    if apps.is_empty() {
        eprintln!("no matching applications");
        std::process::exit(2);
    }

    println!("Line buffer vs. per-access cache: simulated cycles (Small scale)");
    println!("{:-<96}", "");
    println!(
        "{:<16} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "app", "cache (cyc)", "LB (cyc)", "speedup", "miss-off", "miss-on", "dram-off", "dram-on", "agree"
    );
    println!("{:-<96}", "");

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut blocked_speedups = Vec::new();
    let mut conv2d_self_check_ok = true;
    let mut failed = false;
    // One pool task per app runs its six configurations back to back.
    let jobs = jobs_flag(&args);
    let pairs = soff_exec::run_tasks(jobs, apps.clone(), |_, app: App| {
        let off = run_mode(&app, false);
        let on = run_mode(&app, true);
        (off, on)
    });
    for (app, pair) in apps.iter().zip(pairs) {
        let (off, on) = match pair {
            Ok(p) => p,
            Err(soff_exec::TaskError::Panicked { message }) => {
                println!("{:<16} failed: task panicked: {message}", app.name);
                failed = true;
                continue;
            }
            Err(soff_exec::TaskError::Cancelled) => {
                println!("{:<16} failed: cancelled", app.name);
                failed = true;
                continue;
            }
        };
        let (off, on) = match (off, on) {
            (Ok(off), Ok(on)) => (off, on),
            (off, on) => {
                let why = off.err().or_else(|| on.err()).unwrap_or_default();
                println!("{:<16} failed: {why}", app.name);
                failed = true;
                continue;
            }
        };
        // Cross-mode bit-identity on the functional state.
        let agree = off.agree && on.agree && off.run.buffers == on.run.buffers;
        if !agree {
            failed = true;
        }
        let speedup = off.run.cycles as f64 / (on.run.cycles as f64).max(1.0);
        speedups.push(speedup);
        if app.name.ends_with("-blocked") {
            blocked_speedups.push(speedup);
        }
        if app.name == "2dconv" && on.run.cycles > off.run.cycles {
            conv2d_self_check_ok = false;
        }
        let lb = &on.run.line_buf;
        println!(
            "{:<16} {:>12} {:>12} {:>7.2}x {:>10} {:>10} {:>10} {:>10} {:>6}",
            app.name,
            off.run.cycles,
            on.run.cycles,
            speedup,
            off.run.cache_misses,
            on.run.cache_misses,
            off.run.dram_lines,
            on.run.dram_lines,
            if agree { "yes" } else { "NO" },
        );
        rows.push(Json::obj(vec![
            ("app", Json::str(app.name)),
            ("cycles_off", Json::Int(off.run.cycles as i64)),
            ("cycles_on", Json::Int(on.run.cycles as i64)),
            ("speedup", Json::Num(speedup)),
            ("cache_misses_off", Json::Int(off.run.cache_misses as i64)),
            ("cache_misses_on", Json::Int(on.run.cache_misses as i64)),
            ("dram_lines_off", Json::Int(off.run.dram_lines as i64)),
            ("dram_lines_on", Json::Int(on.run.dram_lines as i64)),
            ("window_hits", Json::Int(lb.window_hits as i64)),
            ("stream_refills", Json::Int(lb.stream_refills as i64)),
            ("bytes_from_dram", Json::Int(lb.bytes_from_dram as i64)),
            ("bytes_served", Json::Int(lb.bytes_served as i64)),
            ("agree", Json::Bool(agree)),
        ]));
    }
    println!("{:-<96}", "");
    println!(
        "geomean cycle speedup: all {}, blocked {}",
        fmt_geomean(&speedups),
        fmt_geomean(&blocked_speedups),
    );
    let mut trailer = vec![("self_check_2dconv", Json::Bool(conv2d_self_check_ok))];
    if let Some(g) = geomean(&speedups) {
        trailer.push(("geomean_speedup", Json::Num(g)));
    }
    if let Some(g) = geomean(&blocked_speedups) {
        trailer.push(("geomean_blocked_speedup", Json::Num(g)));
    }
    rows.push(Json::obj(trailer));
    match write_bench_rows("stencil", rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write results: {e}");
            failed = true;
        }
    }
    if !conv2d_self_check_ok {
        eprintln!("FAILED: line buffer slower than cache on 2dconv");
        failed = true;
    }
    if failed {
        eprintln!("FAILED: disagreement or app failure (see above)");
        std::process::exit(1);
    }
}
