//! Regenerates **Fig. 12** (the two indirect Xilinx SDAccel comparisons).
//!
//! * **Xilinx-vs-SOFF I** (Fig. 12 (a)): SOFF on System A vs. SDAccel on
//!   System B with its default single compute unit.
//! * **Xilinx-vs-SOFF II** (Fig. 12 (b)): the optimistic assumption that
//!   SDAccel scaled linearly over the datapath instances the FPGA could
//!   hold — divide its time by SOFF's replication factor.
//!
//! ```text
//! cargo run --release -p soff-bench --bin fig12 [--full] [--json] [--jobs N]
//! ```

use soff_baseline::Framework;
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{fmt_geomean, fmt_ratio, jobs_flag, paper, resume_flag, speedups_vs_resumable};
use soff_workloads::data::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Small };
    let json = args.iter().any(|a| a == "--json");
    let resume = resume_flag(&args);
    let rows =
        speedups_vs_resumable(Framework::XilinxLike, scale, jobs_flag(&args), resume.as_deref())
            .unwrap_or_else(|e| {
                eprintln!("cannot resume: {e}");
                std::process::exit(1);
            });

    println!("Fig. 12 (a): Xilinx-vs-SOFF I — SOFF speedup over SDAccel ({scale:?} scale)");
    println!("{:-<56}", "");
    println!("{:<16} {:>9} {:>11} {:>11}", "Application", "speedup", "SOFF s", "Xilinx s");
    println!("{:-<56}", "");
    let mut sp1 = Vec::new();
    let mut sp2 = Vec::new();
    for (name, sp, soff, xil) in &rows {
        let _ = soff;
        sp1.push(*sp);
        println!(
            "{:<16} {:>9} {:>11.3e} {:>11.3e}",
            name,
            fmt_ratio(*sp),
            soff.seconds,
            xil.seconds
        );
        // Fig. 12 (b): extrapolate SDAccel linearly over the instances it
        // could replicate on the VU9P (the paper's optimistic assumption).
        // SDAccel caps compute units per kernel at 16, which bounds the
        // extrapolation.
        let linear = sp / xil.replication.clamp(1, 16) as f64;
        sp2.push((name, linear));
    }
    println!("{:-<56}", "");
    println!(
        "Geomean: {}x  (paper: {:.1}x — SDAccel ~25x slower despite the larger FPGA)",
        fmt_geomean(&sp1),
        paper::FIG12A_GEOMEAN
    );

    println!();
    println!("Fig. 12 (b): Xilinx-vs-SOFF II — with SDAccel extrapolated linearly");
    println!("{:-<40}", "");
    for (name, sp) in &sp2 {
        println!("{:<16} {:>9}", name, fmt_ratio(*sp));
    }
    println!("{:-<40}", "");
    println!(
        "Geomean: {}x  (paper: {:.2}x — SOFF still ~30% faster under the optimistic assumption)",
        fmt_geomean(&sp2.iter().map(|(_, s)| *s).collect::<Vec<_>>()),
        paper::FIG12B_GEOMEAN
    );

    if json {
        let jrows = rows
            .iter()
            .zip(&sp2)
            .map(|((name, sp, soff, xil), (_, linear))| {
                Json::obj(vec![
                    ("app", Json::str(*name)),
                    ("speedup_a", Json::Num(*sp)),
                    ("speedup_b_linear", Json::Num(*linear)),
                    ("soff_seconds", Json::Num(soff.seconds)),
                    ("xilinx_seconds", Json::Num(xil.seconds)),
                ])
            })
            .collect();
        match write_bench_rows("fig12", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}
