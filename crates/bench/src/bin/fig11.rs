//! Regenerates **Fig. 11** (speedup of SOFF over Intel FPGA SDK for
//! OpenCL, 26 applications, geometric mean).
//!
//! ```text
//! cargo run --release -p soff-bench --bin fig11 [--full] [--json] [--jobs N]
//! ```
//!
//! Both stacks maximally replicate datapath instances (the paper inserts
//! `num_compute_units(N)` into Intel's builds for fairness; our harness
//! forces the same replication on both). `--json` additionally writes the
//! rows to `BENCH_fig11.json`.

use soff_baseline::Framework;
use soff_bench::json::{write_bench_rows, Json};
use soff_bench::{fmt_geomean, fmt_ratio, jobs_flag, paper, resume_flag, speedups_vs_resumable};
use soff_workloads::data::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Small };
    let json = args.iter().any(|a| a == "--json");
    let jobs = jobs_flag(&args);
    let resume = resume_flag(&args);
    println!("Fig. 11: Speedup of SOFF over Intel FPGA SDK for OpenCL ({scale:?} scale)");
    println!("{:-<64}", "");
    println!("{:<16} {:>9} {:>11} {:>11} {:>6}", "Application", "speedup", "SOFF cyc", "Intel cyc", "inst");
    println!("{:-<64}", "");
    let rows = speedups_vs_resumable(Framework::IntelLike, scale, jobs, resume.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("cannot resume: {e}");
            std::process::exit(1);
        });
    let mut wins = 0;
    for (name, sp, soff, intel) in &rows {
        if *sp > 1.0 {
            wins += 1;
        }
        println!(
            "{:<16} {:>9} {:>11} {:>11} {:>6}",
            name,
            fmt_ratio(*sp),
            soff.cycles,
            intel.cycles,
            soff.replication,
        );
    }
    let sps: Vec<f64> = rows.iter().map(|(_, s, _, _)| *s).collect();
    println!("{:-<64}", "");
    println!(
        "Geomean speedup: {}   (paper: {:.2});  SOFF wins {wins}/{} (paper: {}/{})",
        fmt_geomean(&sps),
        paper::FIG11_GEOMEAN,
        rows.len(),
        paper::FIG11_WINS.0,
        paper::FIG11_WINS.1
    );
    println!("Paper's annotated outliers for comparison:");
    for (name, v) in paper::FIG11_OUTLIERS {
        let got = rows.iter().find(|(n, ..)| n == name).map(|(_, s, ..)| *s);
        match got {
            Some(s) => println!("  {name:<10} paper {v:>6.2}x   measured {s:>6.2}x"),
            None => println!("  {name:<10} paper {v:>6.2}x   (not run)"),
        }
    }

    if json {
        let jrows = rows
            .iter()
            .map(|(name, sp, soff, intel)| {
                Json::obj(vec![
                    ("app", Json::str(*name)),
                    ("speedup", Json::Num(*sp)),
                    ("soff_cycles", Json::Int(soff.cycles as i64)),
                    ("intel_cycles", Json::Int(intel.cycles as i64)),
                    ("instances", Json::Int(soff.replication as i64)),
                ])
            })
            .collect();
        match write_bench_rows("fig11", jrows) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write JSON: {e}"),
        }
    }
}
