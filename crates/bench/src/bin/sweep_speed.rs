//! Wall-clock benchmark of the parallel sweep engine + compile cache.
//!
//! Runs the combined §VI evaluation sweep — for every selected app, the
//! cells Table II, Fig. 11, and Fig. 12 each execute (7 cells per app, 3
//! unique (app, framework, scale) identities) — twice:
//!
//! 1. **sequential**: `--jobs 1`, no memoization — the exact legacy loop;
//! 2. **parallel**: `--jobs N` workers with identical-cell memoization.
//!
//! It checks the two runs' canonical digests are byte-identical (exit 1
//! otherwise), reports the wall-clock speedup and the compile-cache hit
//! rates of both phases, and writes `BENCH_sweep_speed.json` in the repo
//! root.
//!
//! ```text
//! cargo run --release -p soff-bench --bin sweep_speed [--apps atax,mvt] [--jobs N] [--full]
//! ```

use soff_baseline::Framework;
use soff_bench::jobs_flag;
use soff_bench::json::{write_bench_rows, Json};
use soff_runtime::cache;
use soff_workloads::data::Scale;
use soff_workloads::sweep::{digest, run_cells, Cell, CellResult, SweepOptions};
use soff_workloads::{all_apps, App, Suite};
use std::time::Instant;

/// The cells the §VI tables/figures execute for one app, in the order
/// the bins run them: Table II's three frameworks, then Fig. 11's SOFF
/// + Intel pair, then Fig. 12's SOFF + Xilinx pair.
fn evaluation_cells(app: App, scale: Scale) -> Vec<Cell> {
    [
        Framework::IntelLike,
        Framework::XilinxLike,
        Framework::Soff,
        Framework::Soff,
        Framework::IntelLike,
        Framework::Soff,
        Framework::XilinxLike,
    ]
    .into_iter()
    .map(|fw| Cell::new(app, fw, scale))
    .collect()
}

struct Phase {
    wall_seconds: f64,
    results: Vec<CellResult>,
    cache: cache::CacheStats,
}

fn run_phase(cells: &[Cell], opts: &SweepOptions) -> Phase {
    // Each phase measures a cold cache: hits within a phase come from
    // the phase's own repeated configurations, not from the other phase.
    cache::clear();
    cache::reset_stats();
    let start = Instant::now();
    let results = run_cells(cells, opts);
    Phase { wall_seconds: start.elapsed().as_secs_f64(), results, cache: cache::stats() }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") { Scale::Full } else { Scale::Small };
    let jobs = jobs_flag(&args);
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect());

    let apps: Vec<App> = all_apps()
        .into_iter()
        .filter(|a| match &only {
            Some(names) => names.iter().any(|n| n == a.name),
            // Default sweep: the PolyBench suite (every app runs on SOFF).
            None => a.suite == Suite::PolyBench,
        })
        .collect();
    if apps.is_empty() {
        eprintln!("no matching applications");
        std::process::exit(2);
    }

    let cells: Vec<Cell> =
        apps.iter().flat_map(|&app| evaluation_cells(app, scale)).collect();
    let per_app = cells.len() / apps.len();

    println!(
        "Sweep engine: sequential vs. {jobs} jobs + memoization ({scale:?} scale, \
         {} cells over {} apps)",
        cells.len(),
        apps.len()
    );

    let seq = run_phase(&cells, &SweepOptions::sequential());
    let par = run_phase(&cells, &SweepOptions { jobs, dedup: true, ..SweepOptions::default() });

    // Soundness gate: the deterministic content of the two sweeps must
    // be byte-identical.
    let (dseq, dpar) = (digest(&seq.results), digest(&par.results));
    let identical = dseq == dpar;

    println!("{:-<68}", "");
    println!(
        "{:<12} {:>5} {:>6} {:>12} {:>12} {:>9}",
        "app", "cells", "uniq", "seq (ms)", "par (ms)", "ratio"
    );
    println!("(per-app columns sum each executed cell's own wall time; with more");
    println!(" jobs than cores, timeslicing inflates them — the headline wall-clock");
    println!(" line below is the end-to-end comparison)");
    println!("{:-<68}", "");
    let mut memoized_total = 0usize;
    for (i, app) in apps.iter().enumerate() {
        let rows = i * per_app..(i + 1) * per_app;
        // Executed wall time per app: memoized cells cost (almost)
        // nothing, so only count cells that actually ran.
        let seq_ms: f64 =
            seq.results[rows.clone()].iter().map(|c| c.result.wall_seconds).sum::<f64>() * 1e3;
        let par_ms: f64 = par.results[rows.clone()]
            .iter()
            .filter(|c| c.memo_of.is_none())
            .map(|c| c.result.wall_seconds)
            .sum::<f64>()
            * 1e3;
        let memoized = par.results[rows].iter().filter(|c| c.memo_of.is_some()).count();
        memoized_total += memoized;
        println!(
            "{:<12} {:>5} {:>6} {:>12.1} {:>12.1} {:>8.2}x",
            app.name,
            per_app,
            per_app - memoized,
            seq_ms,
            par_ms,
            seq_ms / par_ms.max(1e-9),
        );
    }
    println!("{:-<68}", "");

    let speedup = seq.wall_seconds / par.wall_seconds.max(1e-9);
    println!(
        "wall clock: sequential {:.2}s, parallel {:.2}s  ->  {speedup:.2}x \
         ({jobs} jobs, {} core(s) available, {memoized_total} of {} cells memoized)",
        seq.wall_seconds,
        par.wall_seconds,
        soff_exec::default_jobs(),
        cells.len()
    );
    println!(
        "compile cache: sequential {}+{} hits / {}+{} misses (hit rate {:.0}%), \
         parallel {}+{} hits / {}+{} misses (hit rate {:.0}%)",
        seq.cache.frontend_hits,
        seq.cache.program_hits,
        seq.cache.frontend_misses,
        seq.cache.program_misses,
        seq.cache.hit_rate() * 100.0,
        par.cache.frontend_hits,
        par.cache.program_hits,
        par.cache.frontend_misses,
        par.cache.program_misses,
        par.cache.hit_rate() * 100.0,
    );
    println!("digests {}", if identical { "identical" } else { "DIVERGED" });

    let mut rows: Vec<Json> = par
        .results
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("app", Json::str(c.app)),
                ("fw", Json::str(format!("{}", c.fw))),
                ("outcome", Json::str(c.result.outcome.code())),
                ("seconds", Json::Num(c.result.seconds)),
                ("cycles", Json::Int(c.result.cycles as i64)),
                ("launches", Json::Int(c.result.launches as i64)),
                ("replication", Json::Int(c.result.replication as i64)),
                ("memoized", Json::Bool(c.memo_of.is_some())),
            ])
        })
        .collect();
    let cache_pairs = |s: &cache::CacheStats| {
        vec![
            ("frontend_hits", Json::Int(s.frontend_hits as i64)),
            ("frontend_misses", Json::Int(s.frontend_misses as i64)),
            ("program_hits", Json::Int(s.program_hits as i64)),
            ("program_misses", Json::Int(s.program_misses as i64)),
            ("cache_hit_rate", Json::Num(s.hit_rate())),
        ]
    };
    let mut summary = vec![
        ("jobs", Json::Int(jobs as i64)),
        ("cores", Json::Int(soff_exec::default_jobs() as i64)),
        ("cells", Json::Int(cells.len() as i64)),
        ("unique_cells", Json::Int((cells.len() - memoized_total) as i64)),
        ("memoized", Json::Int(memoized_total as i64)),
        ("sequential_seconds", Json::Num(seq.wall_seconds)),
        ("parallel_seconds", Json::Num(par.wall_seconds)),
        ("speedup", Json::Num(speedup)),
        ("identical", Json::Bool(identical)),
    ];
    summary.extend(
        cache_pairs(&seq.cache)
            .into_iter()
            .map(|(k, v)| (match k {
                "frontend_hits" => "seq_frontend_hits",
                "frontend_misses" => "seq_frontend_misses",
                "program_hits" => "seq_program_hits",
                "program_misses" => "seq_program_misses",
                _ => "seq_cache_hit_rate",
            }, v)),
    );
    summary.extend(cache_pairs(&par.cache));
    rows.push(Json::obj(summary));
    match write_bench_rows("sweep_speed", rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write results: {e}"),
    }

    if !identical {
        eprintln!("FAILED: parallel sweep diverged from sequential");
        eprintln!("--- sequential\n{dseq}\n--- parallel\n{dpar}");
        std::process::exit(1);
    }
}
