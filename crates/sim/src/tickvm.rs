//! Tick-program encoding for the compiled scheduler
//! ([`crate::machine::Scheduler::Compiled`]).
//!
//! The machine's component graph is *resolved* at build time — every
//! channel, decision FIFO, and loop counter a component touches is a
//! fixed dense index — yet the interpreted main loop re-discovers that
//! structure every cycle: it walks a `Vec` of large `Comp` enum values
//! and re-derives each component's skip condition from its fields. The
//! elaboration pass here lowers the graph *once* into a flat
//! [`TickProgram`]: one compact [`Op`] per component, in component
//! order, with the channel indices its skip condition needs pre-resolved
//! into the operand slots. The dispatch loop
//! ([`crate::compiled::exec_cycle`]) then decides skip-or-tick from the
//! op stream alone and only dereferences the big `Comp` value when the
//! component actually executes.
//!
//! ## Opcode table
//!
//! | opcode    | component            | `a`          | `b`            | `c`       |
//! |-----------|----------------------|--------------|----------------|-----------|
//! | `Unit`    | pipelined datapath   | input chan   | —              | —         |
//! | `Branch`  | cond. branch glue    | input chan   | —              | —         |
//! | `Select`  | merge glue           | taken chan   | not-taken chan | —         |
//! | `Enter`   | loop-entry glue      | output chan  | backedge chan  | outside chan |
//! | `Exit`    | loop-exit glue       | input chan   | output chan    | —         |
//! | `Barrier` | work-group barrier   | input chan   | output chan    | —         |
//! | `LineBuf` | line-buffer observer | —            | —              | —         |
//!
//! ## The hot-state mirror
//!
//! Two skip conditions read component-*internal* state that is expensive
//! or awkward to reach from the op stream: a pipeline's emptiness
//! (`PipelineSim::is_empty` is O(units + edges), the dominant cost of the
//! event-driven scheduler's skip scan) and a barrier's release/occupancy
//! state. Both are mirrored into one byte per op (`TickProgram::hot`),
//! kept fresh by the dispatch loop. The mirror is sound because both
//! facts can only change inside the component's *own* tick: tokens enter
//! and leave a pipeline only when it ticks (a tick that moves nothing
//! leaves emptiness unchanged, so the O(units) recomputation is paid only
//! on movement), and a barrier's buffer and release counter are touched
//! by nothing but its tick. Fault injection perturbs channels, caches,
//! and DRAM — never component-internal state — so the mirror survives it;
//! [`crate::machine::Machine::restore`] rebuilds the mirror from the
//! restored state via [`TickProgram::resync`].
//!
//! `LineBuf` deliberately has **no** hot byte: the component is a pure
//! observer of a [`soff_mem::LineBuffer`] that lives in the memory
//! subsystem, and the buffer's state changes on *memory* ticks — foreign
//! to the component — so any mirrored byte would go stale without the
//! component ever ticking. Its skip decision needs no state anyway: the
//! tick only advances attribution counters, so it is skipped exactly
//! when skipping is enabled (profiling off), like the event-driven
//! scheduler's unconditional `continue`.

use crate::machine::Comp;

/// Which tick routine an [`Op`] dispatches to (one per [`Comp`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// A pipelined datapath segment (`Comp::Pipe`).
    Unit,
    /// Conditional-branch glue (`Comp::Branch`).
    Branch,
    /// Merge glue (`Comp::Select`).
    Select,
    /// Loop-entry glue (`Comp::Enter`).
    Enter,
    /// Loop-exit glue (`Comp::Exit`).
    Exit,
    /// Work-group barrier (`Comp::Barrier`).
    Barrier,
    /// Line-buffer attribution observer (`Comp::LineBuf`).
    LineBuf,
}

/// `hot` bit: the pipeline holds at least one work-item token.
pub const HOT_NONEMPTY: u8 = 1 << 0;
/// `hot` bit: the barrier is mid-release (`releasing > 0`).
pub const HOT_RELEASING: u8 = 1 << 1;
/// `hot` bit: the barrier holds a full work-group and is not yet
/// releasing (`releasing == 0 && buf.len() >= wg_size`).
pub const HOT_FULL_GROUP: u8 = 1 << 2;

/// One lowered component: opcode, component index, and the pre-resolved
/// channel indices its skip condition reads (see the module-level opcode
/// table for the operand meaning per opcode).
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// Dispatch target.
    pub code: OpCode,
    /// Index into the machine's component vector.
    pub comp: u32,
    /// First operand channel index.
    pub a: u32,
    /// Second operand channel index (unused: 0).
    pub b: u32,
    /// Third operand channel index (unused: 0).
    pub c: u32,
}

/// A lowered tick program: the static op stream plus the per-op dynamic
/// hot-state mirror. Built once per machine ([`TickProgram::lower`]);
/// the ops never change, the mirror is maintained by the dispatch loop
/// and rebuilt on snapshot restore ([`TickProgram::resync`]).
#[derive(Debug, Clone)]
pub struct TickProgram {
    /// One op per component, in component order (the order is
    /// semantically load-bearing: loop counters and decision FIFOs are
    /// read and written non-snapshot within a cycle).
    pub ops: Vec<Op>,
    /// Per-op hot-state byte (`HOT_*` bits), parallel to `ops`.
    pub hot: Vec<u8>,
}

impl TickProgram {
    /// Lowers a resolved component vector into a tick program, preserving
    /// component order, and initializes the hot mirror from the current
    /// state.
    pub(crate) fn lower(comps: &[Comp]) -> TickProgram {
        let ops = comps
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let comp = i as u32;
                match c {
                    Comp::Pipe(p) => Op {
                        code: OpCode::Unit,
                        comp,
                        a: p.in_chan.0 as u32,
                        b: 0,
                        c: 0,
                    },
                    Comp::Branch(x) => Op {
                        code: OpCode::Branch,
                        comp,
                        a: x.inp.0 as u32,
                        b: 0,
                        c: 0,
                    },
                    Comp::Select(x) => Op {
                        code: OpCode::Select,
                        comp,
                        a: x.from_taken.0 as u32,
                        b: x.from_not_taken.0 as u32,
                        c: 0,
                    },
                    Comp::Enter(x) => Op {
                        code: OpCode::Enter,
                        comp,
                        a: x.out.0 as u32,
                        b: x.backedge.0 as u32,
                        c: x.outside.0 as u32,
                    },
                    Comp::Exit(x) => Op {
                        code: OpCode::Exit,
                        comp,
                        a: x.inp.0 as u32,
                        b: x.out.0 as u32,
                        c: 0,
                    },
                    Comp::Barrier(x) => Op {
                        code: OpCode::Barrier,
                        comp,
                        a: x.inp.0 as u32,
                        b: x.out.0 as u32,
                        c: 0,
                    },
                    Comp::LineBuf(_) => Op { code: OpCode::LineBuf, comp, a: 0, b: 0, c: 0 },
                }
            })
            .collect();
        let mut prog = TickProgram { ops, hot: vec![0; comps.len()] };
        prog.resync(comps);
        prog
    }

    /// Rebuilds the hot-state mirror from the component vector. Called
    /// after a snapshot restore, which replaces the components wholesale.
    pub(crate) fn resync(&mut self, comps: &[Comp]) {
        debug_assert_eq!(self.ops.len(), comps.len(), "program lowered from these components");
        for (hot, c) in self.hot.iter_mut().zip(comps.iter()) {
            *hot = match c {
                Comp::Pipe(p) => {
                    if p.is_empty() {
                        0
                    } else {
                        HOT_NONEMPTY
                    }
                }
                Comp::Barrier(x) => barrier_hot(x),
                _ => 0,
            };
        }
    }
}

/// The barrier's hot bits, recomputed from its live state (called by the
/// dispatch loop after every barrier tick).
pub(crate) fn barrier_hot(x: &crate::glue::BarrierUnit) -> u8 {
    if x.releasing > 0 {
        HOT_RELEASING
    } else if x.buf.len() as u64 >= x.wg_size {
        HOT_FULL_GROUP
    } else {
        0
    }
}
