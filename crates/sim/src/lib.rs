//! # soff-sim
//!
//! Cycle-level simulator of SOFF's synthesized circuits — the substitute
//! for the FPGA in this reproduction. Every functional unit, FIFO channel,
//! glue device, cache, and arbiter of §III–§V is modeled with the
//! synchronous valid/stall handshake (one-cycle stall recognition), so the
//! dynamic effects the paper's architecture is about — Case-1/Case-2
//! stalls, loop occupancy limits, work-group-order preservation, barrier
//! release, cache misses, and the final flush — all emerge from the model
//! rather than being postulated.
//!
//! The simulator is also *functionally exact*: it computes real values,
//! and its memory contents after a run are bit-identical to the reference
//! interpreter's (`soff_ir::interp`), which the integration tests assert.
//!
//! ## Example
//!
//! ```
//! use soff_datapath::{Datapath, LatencyModel};
//! use soff_ir::{build, ir::NdRange, mem::{ArgValue, GlobalMemory}};
//! use soff_sim::machine::{run, SimConfig};
//!
//! let src = "__kernel void inc(__global int* a) {
//!     int i = get_global_id(0);
//!     a[i] = a[i] + 1;
//! }";
//! let parsed = soff_frontend::compile(src, &[]).unwrap();
//! let module = build::lower(&parsed).unwrap();
//! let kernel = module.kernel("inc").unwrap();
//! let dp = Datapath::build(kernel, &LatencyModel::default());
//!
//! let mut gm = GlobalMemory::new();
//! let buf = gm.alloc(16 * 4);
//! let result = run(kernel, &dp, &SimConfig::default(),
//!                  NdRange::dim1(16, 4), &[ArgValue::Buffer(buf)], &mut gm).unwrap();
//! assert_eq!(result.retired, 16);
//! assert!(result.cycles > 0);
//! ```

pub mod channel;
pub(crate) mod compiled;
pub mod diag;
pub mod fault;
pub mod glue;
pub mod launch;
pub mod machine;
pub mod memsys;
pub mod profile;
pub mod tickvm;
pub mod token;
pub mod units;

pub use diag::{derived_deadlock_window, DeadlockReport, HangKind};
pub use fault::{Fault, FaultPlan};
pub use machine::{
    run, CancelToken, ConfigError, Machine, RunControl, Scheduler, SimConfig, SimError,
    SimResult, Snapshot,
};
pub use profile::{
    chrome_trace_events, write_chrome_trace, Bottleneck, CacheProfile, CompProfile,
    CycleBreakdown, FifoDepth, ProfileConfig, ProfileReport, Sample, Span, SpanTrack,
    UnitProfile,
};
pub use soff_mem::linebuf::LineBufStats;

// Compile-time audit for the parallel sweep engine: simulation results —
// including the profiler's reports with their sampled ring buffers and
// span tracks — are produced inside worker threads and shipped back to
// the reassembling thread, so every type crossing that boundary must be
// `Send`; the configs are shared by reference across cells (`Sync`).
const _: () = {
    const fn shared<T: Send + Sync>() {}
    const fn owned<T: Send>() {}
    shared::<SimConfig>();
    shared::<ProfileConfig>();
    shared::<Scheduler>();
    owned::<SimResult>();
    owned::<SimError>();
    owned::<ProfileReport>();
    owned::<Sample>();
    owned::<SpanTrack>();
    owned::<DeadlockReport>();
    owned::<FaultPlan>();
    // Resilient-execution layer: cancel tokens are cloned across threads
    // (shared), and snapshots ride inside `SimError` back to the
    // reassembling thread (owned).
    shared::<CancelToken>();
    shared::<RunControl>();
    owned::<Snapshot>();
    owned::<ConfigError>();
};
