//! Glue-logic components (§IV-D, §IV-E3, §IV-F).
//!
//! * [`Branch`] routes a work-item to one of two successors based on the
//!   live-out condition value; with order preservation it also records its
//!   decision into a side FIFO.
//! * [`Select`] merges two streams; the ordered variant uses the paper's
//!   work-group-id queue (Fig. 8 (a)): the branch enqueues the work-group
//!   id of every routed work-item, and the select only delivers work-items
//!   whose work-group matches the queue head. Note that replaying exact
//!   per-work-item decisions instead would deadlock: with a barrier inside
//!   the branch, a work-item that lapped the loop could be ordered *before*
//!   a slower work-item the barrier still waits for. Intra-group reorder
//!   must remain legal; only the group order is preserved.
//! * [`LoopEnter`]/[`LoopExit`] share a work-item counter and cap loop
//!   occupancy at `N_max` (deadlock prevention, Theorem 1); the SWGR
//!   variants additionally admit only one work-group at a time
//!   (Fig. 8 (d)).
//! * [`BarrierUnit`] is the work-group barrier FIFO (§IV-F1).

use crate::channel::{ChanId, Channel};
use crate::profile::CycleBreakdown;
use crate::token::{Mapping, Token};
use std::collections::VecDeque;

/// Branch glue.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Input channel (raw live-out signature of the condition block).
    pub inp: ChanId,
    /// Index of the condition value within the input signature.
    pub cond_idx: usize,
    /// Taken output (channel, mapping).
    pub taken: (ChanId, Mapping),
    /// Not-taken output.
    pub not_taken: (ChanId, Mapping),
    /// Order-preservation side FIFO of work-group ids (shared with the
    /// matching select glue).
    pub decisions: Option<usize>,
    /// Cycle attribution (exactly one category per tick).
    pub cycles: CycleBreakdown,
}

/// Select glue merging the two arms of a branch.
#[derive(Debug, Clone)]
pub struct Select {
    /// Arm delivering "taken" work-items.
    pub from_taken: ChanId,
    /// Arm delivering "not taken" work-items.
    pub from_not_taken: ChanId,
    /// Output channel (inputs are already in the output signature).
    pub out: ChanId,
    /// Decision FIFO index (ordered variant) or `None` (free round-robin).
    pub decisions: Option<usize>,
    /// Round-robin pointer for the unordered variant.
    pub rr: bool,
    /// Cycle attribution (exactly one category per tick).
    pub cycles: CycleBreakdown,
}

/// Loop entrance glue (plain or SWGR).
#[derive(Debug, Clone)]
pub struct LoopEnter {
    /// Channel from outside the loop.
    pub outside: ChanId,
    /// Back-edge channel (priority — this is what prevents deadlock when
    /// the loop is at capacity).
    pub backedge: ChanId,
    /// Output toward the loop's first pipeline.
    pub out: ChanId,
    /// Shared occupancy counter index.
    pub counter: usize,
    /// Occupancy bound `N_max`.
    pub nmax: u64,
    /// Single-work-group-region behaviour (Fig. 8 (d)).
    pub swgr: bool,
    /// Current work-group when `swgr` (valid while the loop is non-empty).
    pub cur_wg: u32,
    /// Cycle attribution (exactly one category per tick).
    pub cycles: CycleBreakdown,
}

/// Loop exit glue: decrements the shared counter.
#[derive(Debug, Clone)]
pub struct LoopExit {
    /// Input (the not-taken arm of the loop condition's branch).
    pub inp: ChanId,
    /// Output toward the code after the loop.
    pub out: ChanId,
    /// Shared occupancy counter index.
    pub counter: usize,
    /// Sticky flag: a work-item left the loop while the occupancy counter
    /// was already zero (e.g. a duplicated token). The machine surfaces
    /// this as an invariant violation instead of wrapping the counter.
    pub underflow: bool,
    /// Cycle attribution (exactly one category per tick).
    pub cycles: CycleBreakdown,
}

/// The work-group barrier unit: a FIFO that releases one complete
/// work-group at a time (§IV-F1).
#[derive(Debug, Clone)]
pub struct BarrierUnit {
    /// Input channel.
    pub inp: ChanId,
    /// Output channel (same signature).
    pub out: ChanId,
    /// Work-group size of the current launch.
    pub wg_size: u64,
    /// Stored live-variable tokens.
    pub buf: VecDeque<Token>,
    /// Tokens of the released work-group still to emit.
    pub releasing: u64,
    /// Sticky flag: a release window contained work-items of more than one
    /// work-group — the upstream order-preservation machinery failed (or a
    /// token was dropped/duplicated by fault injection). The machine
    /// surfaces this as an invariant violation.
    pub order_violation: bool,
    /// Cycle attribution (exactly one category per tick).
    pub cycles: CycleBreakdown,
}

/// A bounded side FIFO of work-group ids (§IV-F1: "the branch glue
/// enqueues the work-group ID of every incoming work-item").
#[derive(Debug, Clone)]
pub struct DecisionFifo {
    /// Stored work-group ids, one per routed work-item.
    pub q: VecDeque<u32>,
    /// Capacity (must cover the construct's work-item capacity).
    pub cap: usize,
}

impl Branch {
    /// Advances one cycle.
    pub fn tick(&mut self, chans: &mut [Channel<Token>], fifos: &mut [DecisionFifo]) {
        let Some(front) = chans[self.inp.0].front() else {
            self.cycles.idle += 1;
            return;
        };
        let taken = front.vals[self.cond_idx] != 0;
        let (dst, map) = if taken { &self.taken } else { &self.not_taken };
        if !chans[dst.0].can_push() {
            self.cycles.output_stall += 1;
            return;
        }
        if let Some(f) = self.decisions {
            if fifos[f].q.len() >= fifos[f].cap {
                self.cycles.output_stall += 1;
                return;
            }
        }
        let tok = chans[self.inp.0].pop();
        let wg = tok.wg;
        let mapped = map.apply(&tok);
        chans[dst.0].push(mapped);
        if let Some(f) = self.decisions {
            fifos[f].q.push_back(wg);
        }
        self.cycles.busy += 1;
    }
}

impl Select {
    /// Advances one cycle (delivers at most one work-item).
    pub fn tick(&mut self, chans: &mut [Channel<Token>], fifos: &mut [DecisionFifo]) {
        let has_input =
            chans[self.from_taken.0].can_pop() || chans[self.from_not_taken.0].can_pop();
        if !chans[self.out.0].can_push() {
            if has_input {
                self.cycles.output_stall += 1;
            } else {
                self.cycles.idle += 1;
            }
            return;
        }
        match self.decisions {
            Some(f) => {
                // Work-group-order preservation: deliver any work-item of
                // the work-group at the head of the id queue, from either
                // arm (both arms preserve work-group order internally).
                let Some(&head_wg) = fifos[f].q.front() else {
                    // An input without a decision means the branch has not
                    // recorded the routing yet: the merge cannot issue.
                    if has_input {
                        self.cycles.issue_stall += 1;
                    } else {
                        self.cycles.idle += 1;
                    }
                    return;
                };
                let order = if self.rr {
                    [self.from_taken, self.from_not_taken]
                } else {
                    [self.from_not_taken, self.from_taken]
                };
                for src in order {
                    let matches =
                        chans[src.0].front().map(|t| t.wg == head_wg).unwrap_or(false);
                    if matches {
                        fifos[f].q.pop_front();
                        let tok = chans[src.0].pop();
                        chans[self.out.0].push(tok);
                        self.rr = !self.rr;
                        self.cycles.busy += 1;
                        return;
                    }
                }
                // Waiting on the ordered work-group to arrive upstream.
                self.cycles.idle += 1;
            }
            None => {
                // Free merging: round-robin between the arms.
                let order = if self.rr {
                    [self.from_taken, self.from_not_taken]
                } else {
                    [self.from_not_taken, self.from_taken]
                };
                for src in order {
                    if chans[src.0].can_pop() {
                        let tok = chans[src.0].pop();
                        chans[self.out.0].push(tok);
                        self.rr = !self.rr;
                        self.cycles.busy += 1;
                        return;
                    }
                }
                self.cycles.idle += 1;
            }
        }
    }
}

impl LoopEnter {
    /// Advances one cycle. Back-edge work-items have priority — a
    /// work-item re-entering the loop must never be blocked by new
    /// arrivals, or the loop deadlocks at capacity.
    pub fn tick(&mut self, chans: &mut [Channel<Token>], counters: &mut [u64]) {
        let has_input =
            chans[self.backedge.0].can_pop() || chans[self.outside.0].can_pop();
        if !chans[self.out.0].can_push() {
            if has_input {
                self.cycles.output_stall += 1;
            } else {
                self.cycles.idle += 1;
            }
            return;
        }
        if chans[self.backedge.0].can_pop() {
            let tok = chans[self.backedge.0].pop();
            chans[self.out.0].push(tok);
            self.cycles.busy += 1;
            return;
        }
        if counters[self.counter] >= self.nmax {
            // Occupancy at N_max: new arrivals cannot be admitted (Case-1).
            if chans[self.outside.0].can_pop() {
                self.cycles.issue_stall += 1;
            } else {
                self.cycles.idle += 1;
            }
            return;
        }
        let Some(front) = chans[self.outside.0].front() else {
            self.cycles.idle += 1;
            return;
        };
        if self.swgr {
            // Admit only work-items of the current work-group; adopt a new
            // group only when the loop is empty.
            if counters[self.counter] == 0 {
                self.cur_wg = front.wg;
            } else if front.wg != self.cur_wg {
                self.cycles.issue_stall += 1;
                return;
            }
        }
        let tok = chans[self.outside.0].pop();
        counters[self.counter] += 1;
        chans[self.out.0].push(tok);
        self.cycles.busy += 1;
    }
}

impl LoopExit {
    /// Advances one cycle.
    pub fn tick(&mut self, chans: &mut [Channel<Token>], counters: &mut [u64]) {
        if !chans[self.inp.0].can_pop() {
            self.cycles.idle += 1;
            return;
        }
        if !chans[self.out.0].can_push() {
            self.cycles.output_stall += 1;
            return;
        }
        let tok = chans[self.inp.0].pop();
        if counters[self.counter] == 0 {
            // Never happens in a correct machine (Theorem 1); reachable
            // under token-duplication fault injection. Saturate instead
            // of wrapping and let the machine report it.
            self.underflow = true;
        } else {
            counters[self.counter] -= 1;
        }
        chans[self.out.0].push(tok);
        self.cycles.busy += 1;
    }
}

impl BarrierUnit {
    /// Advances one cycle: accepts one arrival and emits one release.
    pub fn tick(&mut self, chans: &mut [Channel<Token>]) {
        // Accept (the barrier's storage is its own embedded-memory FIFO).
        let mut accepted = false;
        if chans[self.inp.0].can_pop() {
            let tok = chans[self.inp.0].pop();
            self.buf.push_back(tok);
            accepted = true;
        }
        // Begin releasing when a full work-group has arrived.
        if self.releasing == 0 && self.buf.len() as u64 >= self.wg_size {
            let wg = self.buf[0].wg;
            if !self.buf.iter().take(self.wg_size as usize).all(|t| t.wg == wg) {
                // Work-group order violated upstream; record it (the
                // machine reports it when invariant checking is on) and
                // release anyway so the hang does not mask the root cause.
                self.order_violation = true;
            }
            self.releasing = self.wg_size;
        }
        let mut released = false;
        if self.releasing > 0 && chans[self.out.0].can_push() {
            let tok = self.buf.pop_front().expect("releasing implies non-empty");
            chans[self.out.0].push(tok);
            self.releasing -= 1;
            released = true;
        }
        if accepted || released {
            self.cycles.busy += 1;
        } else if self.releasing > 0 {
            // Wanted to release but the output channel refused (Case-2).
            self.cycles.output_stall += 1;
        } else {
            // Empty, or holding a partial work-group waiting for stragglers.
            self.cycles.idle += 1;
        }
    }

    /// Whether the barrier holds no work-items.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(wi: u32, wg: u32, vals: &[u64]) -> Token {
        Token { wi, wg, vals: vals.to_vec().into_boxed_slice() }
    }

    fn begin(chans: &mut [Channel<Token>]) {
        for c in chans {
            c.begin_cycle();
        }
    }

    #[test]
    fn branch_routes_by_condition() {
        let mut chans = vec![Channel::new(4), Channel::new(4), Channel::new(4)];
        let mut b = Branch {
            inp: ChanId(0),
            cond_idx: 0,
            taken: (ChanId(1), Mapping::identity()),
            not_taken: (ChanId(2), Mapping::identity()),
            decisions: None,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        chans[0].push(tok(1, 0, &[1]));
        chans[0].push(tok(2, 0, &[0]));
        begin(&mut chans);
        b.tick(&mut chans, &mut []);
        b.tick(&mut chans, &mut []);
        begin(&mut chans);
        assert_eq!(chans[1].pop().wi, 1);
        assert_eq!(chans[2].pop().wi, 2);
    }

    #[test]
    fn ordered_select_preserves_work_group_order() {
        // Work-group 0's items (wi 1 taken, wi 2 not-taken) must all be
        // delivered before work-group 1's item (wi 3, taken), even though
        // wi 3 is already waiting in the taken arm.
        let mut chans: Vec<Channel<Token>> =
            vec![Channel::new(8), Channel::new(8), Channel::new(8)];
        let mut fifos = vec![DecisionFifo { q: VecDeque::new(), cap: 16 }];
        fifos[0].q.extend([0u32, 0, 1]); // branch saw wg 0, wg 0, wg 1
        let mut s = Select {
            from_taken: ChanId(0),
            from_not_taken: ChanId(1),
            out: ChanId(2),
            decisions: Some(0),
            rr: false,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        chans[0].push(tok(1, 0, &[]));
        chans[0].push(tok(3, 1, &[])); // wg 1 queued behind wg 0 in-arm
        chans[1].push(tok(2, 0, &[]));
        for _ in 0..6 {
            begin(&mut chans);
            s.tick(&mut chans, &mut fifos);
        }
        begin(&mut chans);
        let order: Vec<u32> = (0..3).map(|_| chans[2].pop().wg).collect();
        assert_eq!(order, vec![0, 0, 1], "work-group order must be preserved");
    }

    #[test]
    fn ordered_select_allows_intra_group_reorder() {
        // Within one work-group the select may deliver from either arm —
        // required so a barrier inside one arm cannot deadlock the merge.
        let mut chans: Vec<Channel<Token>> =
            vec![Channel::new(8), Channel::new(8), Channel::new(8)];
        let mut fifos = vec![DecisionFifo { q: VecDeque::new(), cap: 16 }];
        fifos[0].q.extend([0u32, 0]);
        let mut s = Select {
            from_taken: ChanId(0),
            from_not_taken: ChanId(1),
            out: ChanId(2),
            decisions: Some(0),
            rr: false,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        // Only the not-taken arm has a token (the taken one is stuck at a
        // barrier); the select must still deliver it.
        chans[1].push(tok(7, 0, &[]));
        begin(&mut chans);
        s.tick(&mut chans, &mut fifos);
        begin(&mut chans);
        assert_eq!(chans[2].pop().wi, 7);
        assert_eq!(fifos[0].q.len(), 1);
    }

    #[test]
    fn loop_enter_enforces_nmax_and_prioritizes_backedge() {
        let mut chans: Vec<Channel<Token>> =
            vec![Channel::new(8), Channel::new(8), Channel::new(8)];
        let mut counters = vec![0u64];
        let mut e = LoopEnter {
            outside: ChanId(0),
            backedge: ChanId(1),
            out: ChanId(2),
            counter: 0,
            nmax: 1,
            swgr: false,
            cur_wg: 0,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        chans[0].push(tok(1, 0, &[]));
        chans[0].push(tok(2, 0, &[]));
        begin(&mut chans);
        e.tick(&mut chans, &mut counters);
        assert_eq!(counters[0], 1);
        begin(&mut chans);
        e.tick(&mut chans, &mut counters); // nmax reached: wi 2 must wait
        assert_eq!(counters[0], 1);
        assert_eq!(chans[2].len(), 1);
        // A back-edge token goes through even at capacity.
        chans[1].push(tok(1, 0, &[]));
        begin(&mut chans);
        e.tick(&mut chans, &mut counters);
        assert_eq!(chans[2].len(), 2);
        assert_eq!(counters[0], 1);
    }

    #[test]
    fn swgr_admits_one_group_at_a_time() {
        let mut chans: Vec<Channel<Token>> =
            vec![Channel::new(8), Channel::new(8), Channel::new(8)];
        let mut counters = vec![0u64];
        let mut e = LoopEnter {
            outside: ChanId(0),
            backedge: ChanId(1),
            out: ChanId(2),
            counter: 0,
            nmax: 100,
            swgr: true,
            cur_wg: 0,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        chans[0].push(tok(1, 0, &[]));
        chans[0].push(tok(2, 1, &[])); // different work-group
        begin(&mut chans);
        e.tick(&mut chans, &mut counters);
        begin(&mut chans);
        e.tick(&mut chans, &mut counters);
        assert_eq!(chans[2].len(), 1, "wg 1 must wait until the loop drains");
        // Drain the loop (simulate exit): counter to 0.
        counters[0] = 0;
        begin(&mut chans);
        e.tick(&mut chans, &mut counters);
        assert_eq!(chans[2].len(), 2);
    }

    #[test]
    fn barrier_releases_full_group() {
        let mut chans: Vec<Channel<Token>> = vec![Channel::new(8), Channel::new(8)];
        let mut b = BarrierUnit {
            inp: ChanId(0),
            out: ChanId(1),
            wg_size: 2,
            buf: VecDeque::new(),
            releasing: 0,
            order_violation: false,
            cycles: CycleBreakdown::default(),
        };
        begin(&mut chans);
        chans[0].push(tok(1, 0, &[]));
        begin(&mut chans);
        b.tick(&mut chans);
        assert!(chans[1].is_empty(), "half a group must not release");
        chans[0].push(tok(2, 0, &[]));
        begin(&mut chans);
        b.tick(&mut chans);
        begin(&mut chans);
        b.tick(&mut chans);
        begin(&mut chans);
        b.tick(&mut chans);
        assert_eq!(chans[1].len(), 2, "full group releases");
    }
}
