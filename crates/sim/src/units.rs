//! Basic-pipeline simulation: functional units, internal channels, and the
//! run-time pipelining handshake (§IV-A/B/C).
//!
//! Each [`PipelineSim`] instantiates one functional unit per DFG node and
//! one internal channel per DFG edge (capacity `1 + q_e` from the FIFO
//! balancing ILP). Units are fully pipelined: they hold at most `L_F + 1`
//! work-items and never stall while holding `≤ L_F` (§IV-C), which the
//! deadlock argument of §IV-E depends on — this invariant is enforced with
//! debug assertions.

use crate::channel::{ChanId, Channel};
use crate::launch::LaunchCtx;
use crate::memsys::{MemTarget, MemorySystem};
use crate::profile::{CycleBreakdown, UnitProfile};
use crate::token::{Mapping, Token};
use soff_datapath::pipeline::BasicPipeline;
use soff_datapath::UnitClass;
use soff_frontend::builtins::WorkItemQuery;
use soff_ir::dfg::{EdgeKind, Node};
use soff_ir::eval;
use soff_ir::ir::{InstKind, Kernel, ValueId};
use soff_mem::{MemOp, MemRequest, PortId};
use std::collections::VecDeque;

/// A value-granularity token flowing inside a basic pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Micro {
    /// Work-item serial.
    pub wi: u32,
    /// Work-group serial.
    pub wg: u32,
    /// The carried value (0 for pure ordering tokens).
    pub val: u64,
}

/// Source of one instruction operand.
#[derive(Debug, Clone, Copy)]
enum OpSrc {
    /// Operand arrives on in-edge slot `.0` (index into `UnitSim::ins`).
    In(usize),
    /// Launch-constant.
    Uniform(u64),
}

/// What a source unit drives onto one of its out edges.
#[derive(Debug, Clone, Copy)]
enum SourceOut {
    /// `token.vals[i]` of the incoming context token.
    LiveIn(usize),
    /// A launch constant (e.g. a uniform branch condition).
    Uniform(u64),
    /// Pure ordering token.
    Order,
}

#[derive(Debug, Clone)]
enum Engine {
    Source {
        /// Per out-edge value source (parallel to `outs`).
        drive: Vec<SourceOut>,
    },
    Sink {
        /// For each data in-edge slot, the destination index in the
        /// live-out signature (`None` for order edges).
        out_pos: Vec<Option<usize>>,
        /// Live-out signature length.
        width: usize,
    },
    Compute {
        value: ValueId,
        ops: Vec<OpSrc>,
    },
    Mem {
        value: ValueId,
        target: MemTarget,
        port: PortId,
        ops: Vec<OpSrc>,
        /// Work-items with an issued request awaiting a response.
        pending: VecDeque<(u32, u32)>,
    },
}

#[derive(Debug, Clone)]
struct UnitSim {
    engine: Engine,
    lf: u32,
    /// In-edge indices (into `PipelineSim::edges`).
    ins: Vec<usize>,
    /// Out-edge indices.
    outs: Vec<usize>,
    /// Completed results waiting for out-channel space.
    internal: VecDeque<(u64, Micro)>,
}

impl UnitSim {
    fn held(&self) -> usize {
        let pending = match &self.engine {
            Engine::Mem { pending, .. } => pending.len(),
            _ => 0,
        };
        self.internal.len() + pending
    }
}

/// Statistics of one pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Tokens that completed the pipeline.
    pub completed: u64,
    /// Cycles any unit wanted to fire but an output channel was full
    /// (Case-2 stalls, §IV-C).
    pub output_stalls: u64,
    /// Cycles a memory unit could not issue (port busy or `L_F` reached —
    /// Case-1 stalls).
    pub issue_stalls: u64,
}

/// Simulates one basic pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    /// External input channel (tokens with the block's live-in signature).
    pub in_chan: ChanId,
    /// External output channel.
    pub out_chan: ChanId,
    /// Mapping applied by the sink before pushing to `out_chan`
    /// (`None` = raw live-out signature, used before branch glue).
    pub out_map: Option<Mapping>,
    units: Vec<UnitSim>,
    edges: Vec<Channel<Micro>>,
    /// Statistics.
    pub stats: PipelineStats,
    /// Per-unit cycle attribution, allocated only when profiling is on
    /// (the machine's flag gate — `None` keeps the per-cycle cost at one
    /// branch per unit).
    unit_stats: Option<Vec<CycleBreakdown>>,
}

/// Exclusive per-cycle activity classification of one unit.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Act {
    Busy,
    IssueStall,
    OutputStall,
    Idle,
}

/// What the output stage of a unit did this cycle.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Drain {
    /// No finished token was due.
    NoneReady,
    /// A finished token moved onto the out edges.
    Emitted,
    /// A finished token was due but an out edge was full (Case-2).
    Blocked,
}

impl PipelineSim {
    /// Builds the simulation of `bp` for datapath instance `inst`.
    ///
    /// `port_of` assigns each memory instruction its memory target and
    /// port (built by the machine).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        k: &Kernel,
        bp: &BasicPipeline,
        in_chan: ChanId,
        out_chan: ChanId,
        out_map: Option<Mapping>,
        launch_params: &[u64],
        profile: bool,
        mut port_of: impl FnMut(ValueId, UnitClass) -> (MemTarget, PortId),
    ) -> PipelineSim {
        let dfg = &bp.dfg;
        let edges: Vec<Channel<Micro>> = dfg
            .edges
            .iter()
            .enumerate()
            .map(|(ei, _)| Channel::new(1 + bp.fifo_extra[ei] as usize))
            .collect();

        let mut units = Vec::with_capacity(dfg.nodes.len());
        for (ni, node) in dfg.nodes.iter().enumerate() {
            let ins: Vec<usize> = dfg
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.to.0 as usize == ni)
                .map(|(ei, _)| ei)
                .collect();
            let outs: Vec<usize> = dfg
                .edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.from.0 as usize == ni)
                .map(|(ei, _)| ei)
                .collect();
            let unit = &bp.units[ni];
            let engine = match node {
                Node::Source => {
                    let drive = outs
                        .iter()
                        .map(|&ei| match dfg.edges[ei].kind {
                            EdgeKind::Data(v, _) => {
                                if k.instr(v).is_uniform() {
                                    SourceOut::Uniform(crate::token::uniform_value(
                                        k,
                                        v,
                                        launch_params,
                                    ))
                                } else {
                                    let idx = dfg
                                        .live_in
                                        .iter()
                                        .position(|&l| l == v)
                                        .unwrap_or_else(|| {
                                            panic!("{v} driven by source but not live-in")
                                        });
                                    SourceOut::LiveIn(idx)
                                }
                            }
                            EdgeKind::Order => SourceOut::Order,
                        })
                        .collect();
                    Engine::Source { drive }
                }
                Node::Sink => {
                    let out_pos = ins
                        .iter()
                        .map(|&ei| match dfg.edges[ei].kind {
                            EdgeKind::Data(_, pos) => Some(pos as usize),
                            EdgeKind::Order => None,
                        })
                        .collect();
                    Engine::Sink { out_pos, width: dfg.live_out.len() }
                }
                Node::Instr(v) => {
                    let ops = operand_sources(k, *v, dfg, &ins, launch_params);
                    if k.instr(*v).is_memory() {
                        let (target, port) = port_of(*v, unit.class);
                        Engine::Mem { value: *v, target, port, ops, pending: VecDeque::new() }
                    } else {
                        Engine::Compute { value: *v, ops }
                    }
                }
            };
            units.push(UnitSim { engine, lf: unit.lf, ins, outs, internal: VecDeque::new() });
        }

        let unit_stats = profile.then(|| vec![CycleBreakdown::default(); units.len()]);
        PipelineSim {
            in_chan,
            out_chan,
            out_map,
            units,
            edges,
            stats: PipelineStats::default(),
            unit_stats,
        }
    }

    /// Per-unit cycle attribution (`None` unless built with profiling).
    pub(crate) fn unit_profiles(&self) -> Option<Vec<UnitProfile>> {
        let us = self.unit_stats.as_ref()?;
        Some(
            self.units
                .iter()
                .enumerate()
                .map(|(i, u)| UnitProfile {
                    unit: i,
                    kind: match &u.engine {
                        Engine::Source { .. } => "source",
                        Engine::Sink { .. } => "sink",
                        Engine::Compute { .. } => "compute",
                        Engine::Mem { .. } => "mem",
                    }
                    .to_string(),
                    cycles: us[i],
                })
                .collect(),
        )
    }

    /// Issue-stall cycles per memory unit with its static target, for the
    /// bottleneck analyzer (empty unless built with profiling).
    pub(crate) fn mem_unit_issue_stalls(&self) -> Vec<(MemTarget, u64)> {
        let Some(us) = self.unit_stats.as_ref() else { return Vec::new() };
        self.units
            .iter()
            .enumerate()
            .filter_map(|(i, u)| match &u.engine {
                Engine::Mem { target, .. } => Some((*target, us[i].issue_stall)),
                _ => None,
            })
            .collect()
    }

    /// Whether the pipeline holds no work-items.
    pub fn is_empty(&self) -> bool {
        self.units.iter().all(|u| u.held() == 0) && self.edges.iter().all(|e| e.is_empty())
    }

    /// Total work-item tokens inside the pipeline (units + internal edges).
    pub fn holding(&self) -> usize {
        self.units.iter().map(|u| u.held()).sum::<usize>()
            + self.edges.iter().map(|e| e.len()).sum::<usize>()
    }

    /// Memory targets this pipeline is currently waiting on: one entry per
    /// memory unit with issued-but-unanswered requests (target, count).
    pub fn mem_waits(&self) -> Vec<(MemTarget, usize)> {
        self.units
            .iter()
            .filter_map(|u| match &u.engine {
                Engine::Mem { target, pending, .. } if !pending.is_empty() => {
                    Some((*target, pending.len()))
                }
                _ => None,
            })
            .collect()
    }

    /// Per-unit hold state for deadlock forensics: `(unit index, kind,
    /// held, capacity L_F + 1)` for every unit currently holding tokens.
    pub fn unit_holds(&self) -> Vec<(usize, &'static str, usize, usize)> {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.held() > 0)
            .map(|(i, u)| {
                let kind = match &u.engine {
                    Engine::Source { .. } => "source",
                    Engine::Sink { .. } => "sink",
                    Engine::Compute { .. } => "compute",
                    Engine::Mem { .. } => "mem",
                };
                (i, kind, u.held(), u.lf as usize + 1)
            })
            .collect()
    }

    /// Memory targets this pipeline wants to issue to but cannot: a unit
    /// has operands ready and free capacity, yet the target refuses the
    /// request (port latch busy or jammed). Distinguishes "waiting on a
    /// wedged cache" from ordinary pipeline stalls in the wait-for graph.
    pub fn mem_issue_blocked(&self, mem: &MemorySystem) -> Vec<MemTarget> {
        self.units
            .iter()
            .filter_map(|u| match &u.engine {
                Engine::Mem { target, port, pending, .. } => {
                    let ready = !u.ins.is_empty()
                        && u.ins.iter().all(|&ei| self.edges[ei].can_pop());
                    let has_room = pending.len() + u.internal.len() < u.lf as usize + 1;
                    if ready && has_room && !mem.can_request(*target, *port) {
                        Some(*target)
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect()
    }

    /// Checks the fully-pipelined capacity invariant (§IV-C): no unit may
    /// ever hold more than `L_F + 1` work-items. Returns a description of
    /// the first violation found.
    pub fn check_capacity_invariant(&self) -> Option<String> {
        self.units.iter().enumerate().find_map(|(i, u)| {
            let cap = u.lf as usize + 1;
            if u.held() > cap {
                Some(format!("unit {i} holds {} work-items, capacity L_F+1 = {cap}", u.held()))
            } else {
                None
            }
        })
    }

    /// Whether the pipeline provably does nothing this cycle: it holds no
    /// work and its input channel offers no token. Ticking it would only
    /// classify every unit as idle. The event-driven scheduler skips such
    /// pipelines (never under profiling, which wants the idle attribution).
    pub fn quiescent(&self, ext: &[Channel<Token>]) -> bool {
        !ext[self.in_chan.0].can_pop() && self.is_empty()
    }

    /// The earliest future cycle at which a unit-internal completion
    /// becomes emittable (the only time-driven transition inside a
    /// pipeline); `None` when no unit holds a future-dated result.
    pub fn next_internal_event(&self, now: u64) -> Option<u64> {
        self.units
            .iter()
            .filter_map(|u| u.internal.front().map(|&(ready, _)| ready))
            .filter(|&r| r > now)
            .min()
    }

    /// Advances one cycle. Returns whether any token moved: a unit fired,
    /// a memory response was delivered, or a completed result drained onto
    /// an edge or the output channel.
    pub fn tick(
        &mut self,
        now: u64,
        ext: &mut [Channel<Token>],
        mem: &mut MemorySystem,
        launch: &LaunchCtx,
        k: &Kernel,
    ) -> bool {
        self.step(now, ext, mem, launch, k, 1)
    }

    /// Replays `cycles` consecutive stalled cycles in one pass: every
    /// stall counter a dense tick would bump gets bumped `cycles` times,
    /// and nothing moves. Only valid when the machine state is frozen
    /// across the window (the tick at `now` reported no movement and no
    /// internal completion or memory response matures inside it), which
    /// makes every per-cycle decision identical to the one at `now`.
    pub fn replay_stalls(
        &mut self,
        now: u64,
        ext: &mut [Channel<Token>],
        mem: &mut MemorySystem,
        launch: &LaunchCtx,
        k: &Kernel,
        cycles: u64,
    ) {
        if cycles == 0 {
            return;
        }
        let moved = self.step(now, ext, mem, launch, k, cycles);
        debug_assert!(!moved, "replay of a stalled pipeline must not move tokens");
    }

    fn step(
        &mut self,
        now: u64,
        ext: &mut [Channel<Token>],
        mem: &mut MemorySystem,
        launch: &LaunchCtx,
        k: &Kernel,
        mult: u64,
    ) -> bool {
        for e in &mut self.edges {
            e.begin_cycle();
        }
        let mut moved = false;
        for ui in 0..self.units.len() {
            moved |= self.tick_unit(ui, now, ext, mem, launch, k, mult);
        }
        moved
    }

    #[allow(clippy::too_many_arguments)]
    fn tick_unit(
        &mut self,
        ui: usize,
        now: u64,
        ext: &mut [Channel<Token>],
        mem: &mut MemorySystem,
        launch: &LaunchCtx,
        k: &Kernel,
        mult: u64,
    ) -> bool {
        // Split-borrow: temporarily take the unit out.
        let mut unit = std::mem::replace(
            &mut self.units[ui],
            UnitSim {
                engine: Engine::Source { drive: Vec::new() },
                lf: 0,
                ins: Vec::new(),
                outs: Vec::new(),
                internal: VecDeque::new(),
            },
        );

        let (act, moved) = match &mut unit.engine {
            Engine::Source { drive } => {
                // Fire: needs an input token and space on every out edge.
                if ext[self.in_chan.0].can_pop() {
                    if unit.outs.iter().all(|&ei| self.edges[ei].can_push()) {
                        let t = ext[self.in_chan.0].pop();
                        for (oi, &ei) in unit.outs.iter().enumerate() {
                            let val = match drive[oi] {
                                SourceOut::LiveIn(i) => t.vals[i],
                                SourceOut::Uniform(v) => v,
                                SourceOut::Order => 0,
                            };
                            self.edges[ei].push(Micro { wi: t.wi, wg: t.wg, val });
                        }
                        (Act::Busy, true)
                    } else {
                        self.stats.output_stalls += mult;
                        (Act::OutputStall, false)
                    }
                } else {
                    (Act::Idle, false)
                }
            }
            Engine::Sink { out_pos, width } => {
                if unit.ins.iter().all(|&ei| self.edges[ei].can_pop())
                    && !unit.ins.is_empty()
                {
                    if ext[self.out_chan.0].can_push() {
                        let mut vals = vec![0u64; *width];
                        let mut wi = 0;
                        let mut wg = 0;
                        for (slot, &ei) in unit.ins.iter().enumerate() {
                            let m = self.edges[ei].pop();
                            debug_assert!(
                                slot == 0 || m.wi == wi,
                                "sink received interleaved work-items"
                            );
                            wi = m.wi;
                            wg = m.wg;
                            if let Some(pos) = out_pos[slot] {
                                vals[pos] = m.val;
                            }
                        }
                        let tok = Token { wi, wg, vals: vals.into_boxed_slice() };
                        let tok = match &self.out_map {
                            Some(m) => m.apply(&tok),
                            None => tok,
                        };
                        ext[self.out_chan.0].push(tok);
                        self.stats.completed += 1;
                        (Act::Busy, true)
                    } else {
                        self.stats.output_stalls += mult;
                        (Act::OutputStall, false)
                    }
                } else {
                    (Act::Idle, false)
                }
            }
            Engine::Compute { value, ops } => {
                // Output stage.
                let drained = drain_internal(
                    &mut unit.internal,
                    &mut self.edges,
                    &unit.outs,
                    now,
                    &mut self.stats,
                    mult,
                );
                // Fire stage (fully pipelined: capacity L_F + 1).
                let inputs_ready = unit.ins.iter().all(|&ei| self.edges[ei].can_pop())
                    && !unit.ins.is_empty();
                let capacity_ok = unit.internal.len() < (unit.lf as usize + 1);
                let mut fired = false;
                if inputs_ready && capacity_ok {
                    let (wi, wg, vals) = pop_operands(&mut self.edges, &unit.ins);
                    let opvals: Vec<u64> = ops
                        .iter()
                        .map(|s| match s {
                            OpSrc::In(i) => vals[*i],
                            OpSrc::Uniform(u) => *u,
                        })
                        .collect();
                    let result = eval_compute(k, *value, &opvals, wi, launch);
                    unit.internal.push_back((now + unit.lf as u64, Micro { wi, wg, val: result }));
                    fired = true;
                }
                let act = if drained == Drain::Blocked {
                    Act::OutputStall
                } else if inputs_ready && !fired {
                    Act::IssueStall
                } else if fired || drained == Drain::Emitted || !unit.internal.is_empty() {
                    Act::Busy
                } else {
                    Act::Idle
                };
                (act, fired || drained == Drain::Emitted)
            }
            Engine::Mem { value, target, port, ops, pending } => {
                // Drain a memory response (at most one per cycle).
                let mut delivered = false;
                if let Some(resp) = mem.pop_response(*target, *port, now) {
                    let (wi, wg) = pending.pop_front().expect("response without pending request");
                    unit.internal.push_back((now, Micro { wi, wg, val: resp.value }));
                    delivered = true;
                }
                // Output stage.
                let drained = drain_internal(
                    &mut unit.internal,
                    &mut self.edges,
                    &unit.outs,
                    now,
                    &mut self.stats,
                    mult,
                );
                // Fire stage: the unit never stalls while holding ≤ L_F
                // work-items (§IV-C); enforce the capacity L_F + 1.
                let held = unit.internal.len() + pending.len();
                let inputs_ready = unit.ins.iter().all(|&ei| self.edges[ei].can_pop())
                    && !unit.ins.is_empty();
                let mut fired = false;
                if inputs_ready {
                    if held < (unit.lf as usize + 1) && mem.can_request(*target, *port) {
                        let (wi, wg, vals) = pop_operands(&mut self.edges, &unit.ins);
                        let opvals: Vec<u64> = ops
                            .iter()
                            .map(|s| match s {
                                OpSrc::In(i) => vals[*i],
                                OpSrc::Uniform(u) => *u,
                            })
                            .collect();
                        let req = build_request(k, *value, &opvals, wi, wg);
                        mem.request(*target, *port, req, now);
                        pending.push_back((wi, wg));
                        fired = true;
                    } else {
                        self.stats.issue_stalls += mult;
                    }
                }
                let act = if drained == Drain::Blocked {
                    Act::OutputStall
                } else if inputs_ready && !fired {
                    Act::IssueStall
                } else if fired
                    || delivered
                    || drained == Drain::Emitted
                    || !unit.internal.is_empty()
                    || !pending.is_empty()
                {
                    Act::Busy
                } else {
                    Act::Idle
                };
                (act, fired || delivered || drained == Drain::Emitted)
            }
        };

        if let Some(us) = self.unit_stats.as_mut() {
            let c = &mut us[ui];
            match act {
                Act::Busy => c.busy += mult,
                Act::IssueStall => c.issue_stall += mult,
                Act::OutputStall => c.output_stall += mult,
                Act::Idle => c.idle += mult,
            }
        }

        self.units[ui] = unit;
        moved
    }
}

/// Observational stand-in for one shift-register line buffer
/// ([`soff_mem::LineBuffer`]). All serve/stream behaviour runs inside
/// `MemorySystem::tick` (the line buffer is a memory component, like a
/// cache); this component exists so the profiler can attribute the line
/// buffer's cycles under the conservation invariant and the forensics
/// can name it. Its tick reads the buffer's state and mutates nothing
/// the simulation observes, so the event-driven scheduler skips it
/// unconditionally (profiling disables skipping, which is exactly when
/// the attribution matters).
#[derive(Debug, Clone)]
pub struct LineBufUnit {
    /// Index into `MemorySystem::line_bufs`.
    pub lb: usize,
    /// Cycle attribution (meaningful under dense stepping / profiling).
    pub cycles: CycleBreakdown,
}

impl LineBufUnit {
    /// Classifies the cycle from the buffer's pre-memory-tick state:
    /// streaming fills in flight is busy work, latched requests with no
    /// fill traffic are waiting on residency (issue side), undelivered
    /// responses are waiting on the datapath (output side).
    pub fn tick(&mut self, mem: &MemorySystem) {
        let b = &mem.line_bufs[self.lb];
        if b.inflight_fills() > 0 {
            self.cycles.busy += 1;
        } else if b.latched_requests() > 0 {
            self.cycles.issue_stall += 1;
        } else if b.pending_responses() > 0 {
            self.cycles.output_stall += 1;
        } else {
            self.cycles.idle += 1;
        }
    }
}

fn drain_internal(
    internal: &mut VecDeque<(u64, Micro)>,
    edges: &mut [Channel<Micro>],
    outs: &[usize],
    now: u64,
    stats: &mut PipelineStats,
    mult: u64,
) -> Drain {
    if let Some((ready, _)) = internal.front() {
        if *ready <= now {
            if outs.iter().all(|&ei| edges[ei].can_push()) {
                let (_, m) = internal.pop_front().expect("front checked");
                for &ei in outs {
                    edges[ei].push(m);
                }
                return Drain::Emitted;
            }
            stats.output_stalls += mult;
            return Drain::Blocked;
        }
    }
    Drain::NoneReady
}

fn pop_operands(edges: &mut [Channel<Micro>], ins: &[usize]) -> (u32, u32, Vec<u64>) {
    let mut wi = 0;
    let mut wg = 0;
    let mut vals = Vec::with_capacity(ins.len());
    for (i, &ei) in ins.iter().enumerate() {
        let m = edges[ei].pop();
        debug_assert!(i == 0 || m.wi == wi, "unit received interleaved work-items");
        wi = m.wi;
        wg = m.wg;
        vals.push(m.val);
    }
    (wi, wg, vals)
}

/// Builds per-operand sources for instruction `v`: data in-edges by their
/// operand position, uniforms resolved to constants.
fn operand_sources(
    k: &Kernel,
    v: ValueId,
    dfg: &soff_ir::dfg::Dfg,
    ins: &[usize],
    params: &[u64],
) -> Vec<OpSrc> {
    let mut ops = Vec::new();
    k.instr(v).operands(&mut ops);
    ops.iter()
        .enumerate()
        .map(|(pos, &o)| {
            if k.instr(o).is_uniform() {
                OpSrc::Uniform(crate::token::uniform_value(k, o, params))
            } else {
                // Find the in-edge carrying operand position `pos`.
                let slot = ins
                    .iter()
                    .position(|&ei| matches!(dfg.edges[ei].kind, EdgeKind::Data(_, p) if p as usize == pos))
                    .unwrap_or_else(|| panic!("operand {pos} of {v} has no in-edge"));
                OpSrc::In(slot)
            }
        })
        .collect()
}

/// Evaluates a non-memory instruction.
fn eval_compute(k: &Kernel, v: ValueId, ops: &[u64], wi: u32, launch: &LaunchCtx) -> u64 {
    match &k.instr(v).kind {
        InstKind::Bin { op, ty, .. } => eval::eval_bin(*op, *ty, ops[0], ops[1]),
        InstKind::Un { op, ty, .. } => eval::eval_un(*op, *ty, ops[0]),
        InstKind::Cast { from, to, .. } => eval::eval_cast(*from, *to, ops[0]),
        InstKind::Select { .. } => {
            if ops[0] != 0 {
                ops[1]
            } else {
                ops[2]
            }
        }
        InstKind::Math { func, ty, .. } => eval::eval_math(*func, *ty, ops),
        InstKind::WorkItem(q, dim) => {
            let info = launch.wi_info(wi);
            let d = *dim as usize;
            match q {
                WorkItemQuery::GlobalId => info.gid[d],
                WorkItemQuery::LocalId => info.lid[d],
                WorkItemQuery::GroupId => info.group[d],
                WorkItemQuery::GlobalSize => launch.nd.global[d],
                WorkItemQuery::LocalSize => launch.nd.local[d],
                WorkItemQuery::NumGroups => launch.nd.global[d] / launch.nd.local[d],
                WorkItemQuery::WorkDim => launch.nd.work_dim as u64,
                WorkItemQuery::GlobalOffset => 0,
            }
        }
        other => panic!("eval_compute on {other:?}"),
    }
}

/// Builds the memory request for a load/store/atomic instruction.
fn build_request(k: &Kernel, v: ValueId, ops: &[u64], wi: u32, wg: u32) -> MemRequest {
    match &k.instr(v).kind {
        InstKind::Load { ty, .. } => {
            MemRequest { op: MemOp::Load, addr: ops[0], ty: *ty, wi, wg }
        }
        InstKind::Store { ty, .. } => MemRequest {
            op: MemOp::Store { value: ops[1] },
            addr: ops[0],
            ty: *ty,
            wi,
            wg,
        },
        InstKind::Atomic { op, ty, .. } => MemRequest {
            op: MemOp::Atomic { op: *op, operands: ops[1..].to_vec() },
            addr: ops[0],
            ty: *ty,
            wi,
            wg,
        },
        other => panic!("build_request on {other:?}"),
    }
}
