//! Deterministic fault injection for the cycle simulator.
//!
//! A [`FaultPlan`] is a list of [`Fault`]s with absolute activation
//! cycles, carried inside [`crate::machine::SimConfig`]. The machine
//! applies the plan once per cycle *before* any component ticks, so a
//! plan is a pure function of the cycle number: the same plan against the
//! same launch always perturbs the machine identically, which is what
//! makes the deadlock-forensics self-tests (and bug reproductions)
//! deterministic.
//!
//! The fault classes mirror the ways a real synthesized design wedges:
//!
//! * [`Fault::ChannelStuckStall`] — a valid/stall handshake pair stuck
//!   asserted, so the channel neither accepts nor delivers tokens.
//! * [`Fault::DramLatencySpike`] — every external-memory access pays
//!   extra latency for a while (refresh storm, thermal throttling). A
//!   healthy machine must *tolerate* this: the watchdog may not cry
//!   deadlock while memory merely runs slow.
//! * [`Fault::CachePortJam`] — the request wires between the datapath
//!   and one cache wedge: no new request latches.
//! * [`Fault::ArbiterWithhold`] — the datapath-cache arbiter stops
//!   granting: latched requests are never accepted.
//! * [`Fault::LineBufJam`] — the request wires between the datapath and
//!   one shift-register line buffer wedge: no new request latches
//!   (already-latched requests still serve, and streaming continues).
//! * [`Fault::TokenDrop`] / [`Fault::TokenDup`] — a single valid pulse
//!   lost or repeated on one channel. These corrupt the work-item
//!   accounting and exist to self-test the detectors: a drop must be
//!   classified as token loss, a dup must trip an invariant check.
//!
//! Channel and cache indices in a plan must target components the
//! machine actually has: the machine validates the plan against its real
//! channel/cache counts at build time ([`FaultPlan::validate`]) and
//! returns a typed [`crate::machine::SimError::Config`] for
//! out-of-range targets instead of silently wrapping or dropping them.
//! Randomly generated plans ([`FaultPlan::random`]) draw indices from a
//! fixed universe and must be fitted to a concrete machine with
//! [`FaultPlan::normalized`] before use.

use crate::channel::Channel;
use crate::machine::ConfigError;
use crate::memsys::MemorySystem;
use crate::token::Token;
use rand::{Rng, SeedableRng};

/// One injected hardware fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Channel `chan` is stuck-stalled for `cycles` starting at `from`.
    ChannelStuckStall {
        /// Machine channel index (must be in range; see
        /// [`FaultPlan::validate`]).
        chan: usize,
        /// First affected cycle.
        from: u64,
        /// Duration; `u64::MAX` = forever.
        cycles: u64,
    },
    /// Every DRAM access pays `extra_latency` more cycles during the window.
    DramLatencySpike {
        /// First affected cycle.
        from: u64,
        /// Duration.
        cycles: u64,
        /// Additional cycles per access.
        extra_latency: u32,
    },
    /// Cache `cache` refuses to latch new requests during the window.
    CachePortJam {
        /// Cache index (must be in range; see [`FaultPlan::validate`]).
        cache: usize,
        /// First affected cycle.
        from: u64,
        /// Duration; `u64::MAX` = forever.
        cycles: u64,
    },
    /// Cache `cache`'s arbiter withholds all grants during the window.
    ArbiterWithhold {
        /// Cache index (must be in range; see [`FaultPlan::validate`]).
        cache: usize,
        /// First affected cycle.
        from: u64,
        /// Duration; `u64::MAX` = forever.
        cycles: u64,
    },
    /// Line buffer `lb` refuses to latch new requests during the window.
    LineBufJam {
        /// Line-buffer index (must be in range; see
        /// [`FaultPlan::validate`]).
        lb: usize,
        /// First affected cycle.
        from: u64,
        /// Duration; `u64::MAX` = forever.
        cycles: u64,
    },
    /// A single token vanishes from channel `chan`: the fault arms at
    /// cycle `at` and fires once, at the first cycle the channel has a
    /// front token.
    TokenDrop {
        /// Machine channel index (must be in range; see
        /// [`FaultPlan::validate`]).
        chan: usize,
        /// The cycle the fault arms.
        at: u64,
    },
    /// The front token of channel `chan` is repeated: the fault arms at
    /// cycle `at` and fires once, at the first cycle the channel holds a
    /// token and has room for the copy.
    TokenDup {
        /// Machine channel index (must be in range; see
        /// [`FaultPlan::validate`]).
        chan: usize,
        /// The cycle the fault arms.
        at: u64,
    },
}

/// A deterministic schedule of faults for one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults (order irrelevant; effects are idempotent
    /// within a cycle).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the default: no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder-style: adds one fault.
    #[must_use]
    pub fn with(mut self, f: Fault) -> FaultPlan {
        self.faults.push(f);
        self
    }

    /// Generates `count` random faults from `seed`, all activating inside
    /// `[0, horizon)`. Fully deterministic: the same seed always yields
    /// the same plan.
    pub fn random(seed: u64, count: usize, horizon: u64) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let faults = (0..count)
            .map(|_| {
                let from = rng.gen_range(0..horizon);
                let cycles = rng.gen_range(1..horizon.saturating_mul(2).max(2));
                match rng.gen_range(0..7u32) {
                    0 => Fault::ChannelStuckStall { chan: rng.gen_range(0..64), from, cycles },
                    1 => Fault::DramLatencySpike {
                        from,
                        cycles,
                        extra_latency: rng.gen_range(1..2048),
                    },
                    2 => Fault::CachePortJam { cache: rng.gen_range(0..8), from, cycles },
                    3 => Fault::ArbiterWithhold { cache: rng.gen_range(0..8), from, cycles },
                    4 => Fault::TokenDrop { chan: rng.gen_range(0..64), at: from },
                    5 => Fault::TokenDup { chan: rng.gen_range(0..64), at: from },
                    _ => Fault::LineBufJam { lb: rng.gen_range(0..4), from, cycles },
                }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Checks every fault against a machine's actual channel and cache
    /// counts. Called by `Machine::new` at config time so out-of-range
    /// injections fail with a typed error instead of silently doing
    /// nothing (or perturbing the wrong component).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Fault`] naming the first offending fault.
    pub fn validate(
        &self,
        nchans: usize,
        ncaches: usize,
        nlinebufs: usize,
    ) -> Result<(), ConfigError> {
        for (index, f) in self.faults.iter().enumerate() {
            match f {
                Fault::ChannelStuckStall { chan, .. }
                | Fault::TokenDrop { chan, .. }
                | Fault::TokenDup { chan, .. } => {
                    if *chan >= nchans {
                        return Err(ConfigError::Fault {
                            index,
                            what: format!(
                                "channel {chan} out of range (machine has {nchans} channels)"
                            ),
                        });
                    }
                }
                Fault::CachePortJam { cache, .. } | Fault::ArbiterWithhold { cache, .. } => {
                    if *cache >= ncaches {
                        return Err(ConfigError::Fault {
                            index,
                            what: format!(
                                "cache {cache} out of range (machine has {ncaches} caches)"
                            ),
                        });
                    }
                }
                Fault::LineBufJam { lb, .. } => {
                    if *lb >= nlinebufs {
                        return Err(ConfigError::Fault {
                            index,
                            what: format!(
                                "line buffer {lb} out of range (machine has {nlinebufs} \
                                 line buffers)"
                            ),
                        });
                    }
                }
                Fault::DramLatencySpike { .. } => {}
            }
        }
        Ok(())
    }

    /// Fits a plan (typically a [`FaultPlan::random`] one, whose indices
    /// are drawn from a fixed universe) to a concrete machine: channel
    /// and cache indices are reduced modulo the machine's counts, and
    /// cache faults are dropped entirely when the machine has no caches.
    /// The result always passes [`FaultPlan::validate`] for those counts.
    #[must_use]
    pub fn normalized(mut self, nchans: usize, ncaches: usize, nlinebufs: usize) -> FaultPlan {
        let nchans = nchans.max(1);
        self.faults.retain_mut(|f| match f {
            Fault::ChannelStuckStall { chan, .. }
            | Fault::TokenDrop { chan, .. }
            | Fault::TokenDup { chan, .. } => {
                *chan %= nchans;
                true
            }
            Fault::CachePortJam { cache, .. } | Fault::ArbiterWithhold { cache, .. } => {
                if ncaches == 0 {
                    false
                } else {
                    *cache %= ncaches;
                    true
                }
            }
            Fault::LineBufJam { lb, .. } => {
                if nlinebufs == 0 {
                    false
                } else {
                    *lb %= nlinebufs;
                    true
                }
            }
            Fault::DramLatencySpike { .. } => true,
        });
        self
    }
}

fn window_active(now: u64, from: u64, cycles: u64) -> bool {
    now >= from && now - from < cycles
}

/// Applies the plan's effects for cycle `now`. Called by the machine
/// right after `begin_cycle` and before any component ticks; recomputes
/// every wedge flag from scratch so overlapping windows compose and
/// expired windows release cleanly. `fired` has one slot per fault and
/// records which one-shot faults (token drop/dup) already went off, so
/// an armed fault waits for its first opportunity but never repeats.
pub(crate) fn apply(
    plan: &FaultPlan,
    fired: &mut [bool],
    now: u64,
    chans: &mut [Channel<Token>],
    mem: &mut MemorySystem,
) {
    for c in chans.iter_mut() {
        c.set_jammed(false);
    }
    for c in &mut mem.caches {
        c.set_fault_jam_ports(false);
        c.set_fault_withhold_grants(false);
    }
    for b in &mut mem.line_bufs {
        b.set_fault_jam(false);
    }
    let mut dram_extra = 0u32;
    // Indices are in range by construction: the machine validated the
    // plan against its real component counts before the clock started.
    for (f, fired) in plan.faults.iter().zip(fired.iter_mut()) {
        match f {
            Fault::ChannelStuckStall { chan, from, cycles } => {
                if window_active(now, *from, *cycles) {
                    chans[*chan].set_jammed(true);
                }
            }
            Fault::DramLatencySpike { from, cycles, extra_latency } => {
                if window_active(now, *from, *cycles) {
                    dram_extra = dram_extra.max(*extra_latency);
                }
            }
            Fault::CachePortJam { cache, from, cycles } => {
                if window_active(now, *from, *cycles) {
                    mem.caches[*cache].set_fault_jam_ports(true);
                }
            }
            Fault::ArbiterWithhold { cache, from, cycles } => {
                if window_active(now, *from, *cycles) {
                    mem.caches[*cache].set_fault_withhold_grants(true);
                }
            }
            Fault::LineBufJam { lb, from, cycles } => {
                if window_active(now, *from, *cycles) {
                    mem.line_bufs[*lb].set_fault_jam(true);
                }
            }
            Fault::TokenDrop { chan, at } => {
                if now >= *at && !*fired {
                    *fired = chans[*chan].fault_drop_front();
                }
            }
            Fault::TokenDup { chan, at } => {
                if now >= *at && !*fired {
                    *fired = chans[*chan].fault_duplicate_front();
                }
            }
        }
    }
    mem.dram.set_fault_extra_latency(dram_extra);
}

/// The earliest cycle after `now` at which the plan's effect on the
/// machine could change: a window fault opening or closing, or a
/// not-yet-fired one-shot arming. The event-driven scheduler never
/// fast-forwards past such a boundary, so `apply`'s cycle-by-cycle
/// recomputation observes every window edge. One-shots already armed
/// (`at <= now`) but still unfired contribute nothing: they trigger on
/// channel occupancy, which a globally idle machine cannot change.
pub(crate) fn next_boundary(plan: &FaultPlan, fired: &[bool], now: u64) -> Option<u64> {
    let mut next: Option<u64> = None;
    let mut consider = |c: u64| {
        if c > now && next.is_none_or(|n| c < n) {
            next = Some(c);
        }
    };
    for (f, fired) in plan.faults.iter().zip(fired.iter()) {
        match f {
            Fault::ChannelStuckStall { from, cycles, .. }
            | Fault::DramLatencySpike { from, cycles, .. }
            | Fault::CachePortJam { from, cycles, .. }
            | Fault::ArbiterWithhold { from, cycles, .. }
            | Fault::LineBufJam { from, cycles, .. } => {
                consider(*from);
                consider(from.saturating_add(*cycles));
            }
            Fault::TokenDrop { at, .. } | Fault::TokenDup { at, .. } => {
                if !*fired {
                    consider(*at);
                }
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_edges() {
        assert!(!window_active(9, 10, 5));
        assert!(window_active(10, 10, 5));
        assert!(window_active(14, 10, 5));
        assert!(!window_active(15, 10, 5));
        assert!(window_active(u64::MAX - 1, 0, u64::MAX));
    }

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8, 10_000);
        let b = FaultPlan::random(42, 8, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        let c = FaultPlan::random(43, 8, 10_000);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let p = FaultPlan::none().with(Fault::ChannelStuckStall { chan: 9, from: 0, cycles: 5 });
        assert!(p.validate(10, 0, 0).is_ok());
        assert!(matches!(p.validate(9, 0, 0), Err(ConfigError::Fault { index: 0, .. })));
        let p = FaultPlan::none().with(Fault::CachePortJam { cache: 2, from: 0, cycles: 5 });
        assert!(p.validate(1, 3, 0).is_ok());
        assert!(matches!(p.validate(1, 2, 0), Err(ConfigError::Fault { index: 0, .. })));
        let p = FaultPlan::none().with(Fault::LineBufJam { lb: 1, from: 0, cycles: 5 });
        assert!(p.validate(1, 0, 2).is_ok());
        assert!(matches!(p.validate(1, 0, 1), Err(ConfigError::Fault { index: 0, .. })));
        // DRAM spikes target no indexed component and always pass.
        let p = FaultPlan::none()
            .with(Fault::DramLatencySpike { from: 0, cycles: 5, extra_latency: 9 });
        assert!(p.validate(0, 0, 0).is_ok());
    }

    #[test]
    fn normalized_always_validates() {
        for seed in 0..32 {
            let p = FaultPlan::random(seed, 12, 1000);
            for &(nchans, ncaches, nlbs) in
                &[(1usize, 0usize, 0usize), (7, 1, 0), (64, 8, 4), (3, 5, 1)]
            {
                let n = p.clone().normalized(nchans, ncaches, nlbs);
                assert_eq!(n.validate(nchans, ncaches, nlbs), Ok(()));
            }
        }
    }

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::none()
            .with(Fault::TokenDrop { chan: 3, at: 100 })
            .with(Fault::DramLatencySpike { from: 0, cycles: 50, extra_latency: 10 });
        assert_eq!(p.faults.len(), 2);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
