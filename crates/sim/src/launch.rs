//! Launch context: the NDRange, bound argument values, and work-item
//! identity arithmetic.

use soff_ir::interp::InterpError;
use soff_ir::ir::{Kernel, NdRange, ParamKind};
use soff_ir::mem::{self, ArgValue};

/// Identity of one work-item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WiInfo {
    /// Global id per dimension.
    pub gid: [u64; 3],
    /// Local id per dimension.
    pub lid: [u64; 3],
    /// Work-group id per dimension.
    pub group: [u64; 3],
    /// Linear work-group serial.
    pub wg: u32,
}

/// Everything about one kernel launch the datapath needs.
#[derive(Debug, Clone)]
pub struct LaunchCtx {
    /// The NDRange.
    pub nd: NdRange,
    /// Argument values in [`Kernel::params`] order (buffer base addresses
    /// for buffers, encoded local bases for local pointers).
    pub params: Vec<u64>,
    /// Byte sizes of the kernel's local variables (host-set for
    /// `__local` pointer arguments).
    pub local_sizes: Vec<u64>,
}

impl LaunchCtx {
    /// Binds `args` against the kernel signature (same rules as the
    /// reference interpreter).
    ///
    /// # Errors
    ///
    /// [`InterpError::BadArguments`] on arity or kind mismatch.
    pub fn bind(kernel: &Kernel, nd: NdRange, args: &[ArgValue]) -> Result<LaunchCtx, InterpError> {
        if args.len() != kernel.params.len() {
            return Err(InterpError::BadArguments(format!(
                "expected {} arguments, got {}",
                kernel.params.len(),
                args.len()
            )));
        }
        let mut local_sizes: Vec<u64> = kernel.local_vars.iter().map(|v| v.size).collect();
        let mut params = Vec::with_capacity(args.len());
        for (p, a) in kernel.params.iter().zip(args) {
            let v = match (&p.kind, a) {
                (ParamKind::Scalar(s), ArgValue::Scalar(bits)) => {
                    soff_ir::eval::canonical(*s, *bits)
                }
                (ParamKind::Buffer { .. }, ArgValue::Buffer(id)) => mem::global_addr(*id, 0),
                (ParamKind::LocalPointer { var, .. }, ArgValue::LocalSize(sz)) => {
                    local_sizes[*var] = *sz;
                    mem::local_addr(*var, 0)
                }
                (k, a) => {
                    return Err(InterpError::BadArguments(format!(
                        "argument `{}` is {k:?} but got {a:?}",
                        p.name
                    )))
                }
            };
            params.push(v);
        }
        Ok(LaunchCtx { nd, params, local_sizes })
    }

    /// Total work-items.
    pub fn total_work_items(&self) -> u64 {
        self.nd.total_work_items()
    }

    /// Work-group size.
    pub fn wg_size(&self) -> u64 {
        self.nd.work_group_size()
    }

    /// Computes the identity of work-item `serial` (work-groups are
    /// linearized x-fastest, work-items within a group likewise, matching
    /// the dispatcher and the reference interpreter).
    pub fn wi_info(&self, serial: u32) -> WiInfo {
        let wg_size = self.wg_size();
        let serial = serial as u64;
        let wg = serial / wg_size;
        let lin_l = serial % wg_size;
        let lid = unflatten(lin_l, self.nd.local);
        let groups = [
            self.nd.groups_in_dim(0),
            self.nd.groups_in_dim(1),
            self.nd.groups_in_dim(2),
        ];
        let group = unflatten(wg, groups);
        let gid = [
            group[0] * self.nd.local[0] + lid[0],
            group[1] * self.nd.local[1] + lid[1],
            group[2] * self.nd.local[2] + lid[2],
        ];
        WiInfo { gid, lid, group, wg: wg as u32 }
    }
}

fn unflatten(mut lin: u64, dims: [u64; 3]) -> [u64; 3] {
    let x = lin % dims[0];
    lin /= dims[0];
    let y = lin % dims[1];
    lin /= dims[1];
    [x, y, lin]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wi_info_matches_linearization() {
        let l = LaunchCtx {
            nd: NdRange::dim2([8, 4], [4, 2]),
            params: vec![],
            local_sizes: vec![],
        };
        // wg_size = 8; serial 10 → wg 1, lin_l 2 → lid (2,0); wg 1 → group (1,0).
        let info = l.wi_info(10);
        assert_eq!(info.wg, 1);
        assert_eq!(info.lid, [2, 0, 0]);
        assert_eq!(info.group, [1, 0, 0]);
        assert_eq!(info.gid, [6, 0, 0]);
    }

    #[test]
    fn wi_info_third_dimension() {
        let l = LaunchCtx {
            nd: NdRange::dim3([2, 2, 2], [1, 1, 1]),
            params: vec![],
            local_sizes: vec![],
        };
        let info = l.wi_info(7);
        assert_eq!(info.group, [1, 1, 1]);
        assert_eq!(info.gid, [1, 1, 1]);
    }
}
