//! Deadlock forensics: structured hang reports for the cycle simulator.
//!
//! When the progress watchdog in [`crate::machine`] fires, the machine is
//! frozen mid-hang and every piece of evidence is still in place. This
//! module turns that state into a [`DeadlockReport`]: per-channel
//! occupancy, per-component hold/releasing state, decision-FIFO heads,
//! loop occupancy counters against their `N_max` bounds, and a
//! **wait-for graph** derived from the valid/stall handshake (who is
//! stalled, and on whom). The graph is then classified:
//!
//! * a cycle of blocked components is a **true deadlock** (cyclic wait) —
//!   impossible in a fault-free machine by Theorem 1, so seeing one means
//!   either fault injection or a glue-logic bug, and the report names the
//!   components on the cycle;
//! * tokens still circulating (channel pushes keep happening) while
//!   nothing ever retires is a **livelock / infinite loop** — the report
//!   names the loops currently holding work-items;
//! * blocked components all waiting on something idle (a decision FIFO
//!   head that never arrives, a half-full barrier, a wedged channel or
//!   cache) is **starvation**, and the terminal blocker is the culprit;
//! * a fully drained machine with `retired < total` is **token loss**.
//!
//! The report attaches to [`crate::machine::SimError::Deadlock`] and
//! renders through `Display`; the legacy `SOFF_SIM_DEBUG=1` dump is now a
//! thin wrapper that prints the same rendering.

use crate::channel::Channel;
use crate::glue::DecisionFifo;
use crate::machine::{Comp, SimConfig};
use crate::memsys::{MemTarget, MemorySystem};
use crate::token::Token;
use std::collections::HashMap;
use std::fmt;

/// What kind of hang the forensic pass concluded this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HangKind {
    /// A cycle of components each stalled on the next (true deadlock).
    CyclicWait,
    /// Tokens keep moving but none ever retire (infinite loop).
    Livelock,
    /// Components starve waiting on something that never produces.
    Starvation,
    /// The machine drained but fewer work-items retired than launched.
    TokenLoss,
}

impl fmt::Display for HangKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HangKind::CyclicWait => write!(f, "true deadlock (cyclic wait)"),
            HangKind::Livelock => write!(f, "livelock / infinite loop"),
            HangKind::Starvation => write!(f, "starvation"),
            HangKind::TokenLoss => write!(f, "token loss"),
        }
    }
}

/// Snapshot of one (non-empty or wedged) channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    /// Machine channel index.
    pub id: usize,
    /// Occupancy.
    pub len: usize,
    /// Capacity.
    pub cap: usize,
    /// Front token's work-item serial, if visible.
    pub front_wi: Option<u32>,
    /// Front token's work-group serial, if visible.
    pub front_wg: Option<u32>,
    /// Wedged by fault injection.
    pub jammed: bool,
}

/// Snapshot of one component that still holds work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentState {
    /// Component index.
    pub id: usize,
    /// Human-readable name (assigned at build time).
    pub name: String,
    /// Hold/releasing detail.
    pub detail: String,
}

/// Snapshot of one non-empty decision FIFO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoState {
    /// FIFO index.
    pub id: usize,
    /// Entries.
    pub len: usize,
    /// Capacity.
    pub cap: usize,
    /// Work-group id at the head (what the paired select waits for).
    pub head_wg: Option<u32>,
}

/// Snapshot of one loop's occupancy counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopState {
    /// Shared counter index.
    pub counter: usize,
    /// Name of the loop's entrance glue.
    pub enter: String,
    /// Current occupancy.
    pub occupancy: u64,
    /// The `N_max` bound.
    pub nmax: u64,
}

/// One edge of the wait-for graph: `from` is stalled until `to` acts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The waiting party.
    pub from: String,
    /// The party being waited on.
    pub to: String,
    /// Which handshake is stuck and why.
    pub reason: String,
}

/// The full forensic report attached to a deadlock error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle at which progress stopped.
    pub cycle: u64,
    /// Classification.
    pub kind: HangKind,
    /// Named culprits: the cyclic-wait members, the starved-on terminal
    /// blockers, the live loops, or the incomplete work-groups.
    pub culprits: Vec<String>,
    /// Work-items retired before the hang.
    pub retired: u64,
    /// Work-items launched.
    pub total: u64,
    /// Non-empty (or wedged) channels.
    pub channels: Vec<ChannelState>,
    /// Components holding work.
    pub components: Vec<ComponentState>,
    /// Non-empty decision FIFOs.
    pub fifos: Vec<FifoState>,
    /// Loop occupancy counters.
    pub loops: Vec<LoopState>,
    /// The wait-for graph.
    pub waits: Vec<WaitEdge>,
}

impl DeadlockReport {
    /// One-line summary used by `SimError`'s `Display`.
    pub fn summary(&self) -> String {
        if self.culprits.is_empty() {
            format!("{}", self.kind)
        } else {
            format!("{}; culprit: {}", self.kind, self.culprits.join(", "))
        }
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "=== hang forensics (cycle {}) ===", self.cycle)?;
            writeln!(f, "classification: {}", self.kind)?;
            for c in &self.culprits {
                writeln!(f, "culprit: {c}")?;
            }
            writeln!(f, "retired {} of {} work-items", self.retired, self.total)?;
            if !self.channels.is_empty() {
                writeln!(f, "channels:")?;
                for c in &self.channels {
                    writeln!(
                        f,
                        "  chan {}: {}/{} tokens, front wi={:?} wg={:?}{}",
                        c.id,
                        c.len,
                        c.cap,
                        c.front_wi,
                        c.front_wg,
                        if c.jammed { " [JAMMED]" } else { "" }
                    )?;
                }
            }
            if !self.components.is_empty() {
                writeln!(f, "components holding work:")?;
                for c in &self.components {
                    writeln!(f, "  [{}] {}: {}", c.id, c.name, c.detail)?;
                }
            }
            if !self.fifos.is_empty() {
                writeln!(f, "decision fifos:")?;
                for q in &self.fifos {
                    writeln!(
                        f,
                        "  fifo {}: {}/{} entries, head wg={:?}",
                        q.id, q.len, q.cap, q.head_wg
                    )?;
                }
            }
            if !self.loops.is_empty() {
                writeln!(f, "loops:")?;
                for l in &self.loops {
                    writeln!(
                        f,
                        "  counter #{} ({}): occupancy {}/{} (N_max)",
                        l.counter, l.enter, l.occupancy, l.nmax
                    )?;
                }
            }
            if !self.waits.is_empty() {
                writeln!(f, "wait-for graph:")?;
                for w in &self.waits {
                    writeln!(f, "  {} -> {}: {}", w.from, w.to, w.reason)?;
                }
            }
            Ok(())
    }
}

/// Per-dispatcher view the machine hands to [`build_report`].
#[derive(Debug, Clone)]
pub(crate) struct DispatcherView {
    /// Entry channel index.
    pub entry: usize,
    /// Retire channel index.
    pub retire: usize,
    /// Whether it still has work-items to dispatch.
    pub pending: bool,
    /// Whether dispatch is gated on a free work-group slot.
    pub slots_full: bool,
    /// In-flight work-groups and their remaining (unretired) work-items.
    pub active: Vec<(u32, u64)>,
}

/// Everything the forensic pass needs, borrowed from the frozen machine.
pub(crate) struct MachineView<'a> {
    pub chans: &'a [Channel<Token>],
    pub comps: &'a [Comp],
    pub metas: &'a [String],
    pub counters: &'a [u64],
    pub fifos: &'a [DecisionFifo],
    pub mem: &'a MemorySystem,
    pub dispatchers: Vec<DispatcherView>,
    pub retired: u64,
    pub total: u64,
    /// Cycle at which progress stopped.
    pub stalled_since: u64,
    /// True when invoked from the retire-progress (livelock) watchdog:
    /// tokens are still moving, only retirement is stuck.
    pub tokens_flowing: bool,
}

/// Wait-for graph node. Shared with the profiler's bottleneck analyzer
/// ([`crate::profile`]), which ranks stall chains over the same topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Comp(usize),
    Cache(usize),
    LineBuf(usize),
    Chan(usize),
    Dispatcher(usize),
}

/// Static channel/FIFO/counter wiring of a built machine: who produces
/// into and consumes from each channel, which select drains each decision
/// FIFO, and which exit glue frees each loop counter. Built once from the
/// component list; used by both the deadlock forensics and the profiler's
/// bottleneck analyzer.
#[derive(Debug, Default)]
pub(crate) struct ChannelWiring {
    pub producer: HashMap<usize, Node>,
    pub consumer: HashMap<usize, Node>,
    pub fifo_select: HashMap<usize, Node>,
    pub counter_exit: HashMap<usize, Node>,
}

/// Derives the [`ChannelWiring`] from the component list.
pub(crate) fn channel_wiring(comps: &[Comp]) -> ChannelWiring {
    let mut w = ChannelWiring::default();
    for (ci, comp) in comps.iter().enumerate() {
        let me = Node::Comp(ci);
        match comp {
            Comp::Pipe(p) => {
                w.consumer.insert(p.in_chan.0, me);
                w.producer.insert(p.out_chan.0, me);
            }
            Comp::Branch(b) => {
                w.consumer.insert(b.inp.0, me);
                w.producer.insert(b.taken.0 .0, me);
                w.producer.insert(b.not_taken.0 .0, me);
            }
            Comp::Select(s) => {
                w.consumer.insert(s.from_taken.0, me);
                w.consumer.insert(s.from_not_taken.0, me);
                w.producer.insert(s.out.0, me);
                if let Some(fi) = s.decisions {
                    w.fifo_select.insert(fi, me);
                }
            }
            Comp::Enter(e) => {
                w.consumer.insert(e.outside.0, me);
                w.consumer.insert(e.backedge.0, me);
                w.producer.insert(e.out.0, me);
            }
            Comp::Exit(x) => {
                w.consumer.insert(x.inp.0, me);
                w.producer.insert(x.out.0, me);
                w.counter_exit.insert(x.counter, me);
            }
            Comp::Barrier(b) => {
                w.consumer.insert(b.inp.0, me);
                w.producer.insert(b.out.0, me);
            }
            // Line-buffer observers touch no channels; datapath units
            // reach the line buffer through `MemTarget::LineBuf`, which
            // the wait-for pass attributes directly.
            Comp::LineBuf(_) => {}
        }
    }
    w
}

struct Graph {
    edges: Vec<(Node, Node, String)>,
    /// Nodes blocked for a reason of their own (wedged channel, faulted
    /// cache, slot-starved dispatcher) — terminal suspects.
    terminal: HashMap<Node, String>,
}

impl Graph {
    fn blocked(&self) -> Vec<Node> {
        let mut nodes: Vec<Node> = self.edges.iter().map(|(a, _, _)| *a).collect();
        nodes.extend(self.terminal.keys().copied());
        nodes.sort_by_key(|n| format!("{n:?}"));
        nodes.dedup();
        nodes
    }

    /// Finds a cycle among blocked nodes (iterative DFS, 3-color).
    fn find_cycle(&self) -> Option<Vec<Node>> {
        let mut adj: HashMap<Node, Vec<Node>> = HashMap::new();
        for (a, b, _) in &self.edges {
            adj.entry(*a).or_default().push(*b);
        }
        let mut color: HashMap<Node, u8> = HashMap::new(); // 0 white 1 grey 2 black
        for &start in adj.keys() {
            if color.get(&start).copied().unwrap_or(0) != 0 {
                continue;
            }
            // Stack of (node, next-child-index); path = grey chain.
            let mut stack: Vec<(Node, usize)> = vec![(start, 0)];
            color.insert(start, 1);
            while let Some(&mut (n, ref mut i)) = stack.last_mut() {
                let children = adj.get(&n).map(|v| v.as_slice()).unwrap_or(&[]);
                if *i < children.len() {
                    let c = children[*i];
                    *i += 1;
                    match color.get(&c).copied().unwrap_or(0) {
                        0 => {
                            color.insert(c, 1);
                            stack.push((c, 0));
                        }
                        1 => {
                            // Found a back edge: the cycle is the grey
                            // suffix of the stack from `c` onward.
                            let pos = stack
                                .iter()
                                .position(|(m, _)| *m == c)
                                .unwrap_or(0);
                            return Some(stack[pos..].iter().map(|(m, _)| *m).collect());
                        }
                        _ => {}
                    }
                } else {
                    color.insert(n, 2);
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Builds the full forensic report from the frozen machine state.
pub(crate) fn build_report(v: &MachineView<'_>) -> DeadlockReport {
    let name = |n: Node| -> String {
        match n {
            Node::Comp(i) => v.metas.get(i).cloned().unwrap_or_else(|| format!("comp {i}")),
            Node::Cache(i) => format!("cache {i}"),
            Node::LineBuf(i) => format!("line buffer {i}"),
            Node::Chan(i) => format!("channel {i}"),
            Node::Dispatcher(i) => format!("dispatcher {i}"),
        }
    };

    // Static wiring, shared with the profiler's bottleneck analyzer.
    let ChannelWiring { mut producer, mut consumer, fifo_select, counter_exit } =
        channel_wiring(v.comps);
    for (di, d) in v.dispatchers.iter().enumerate() {
        producer.insert(d.entry, Node::Dispatcher(di));
        consumer.insert(d.retire, Node::Dispatcher(di));
    }

    let chan = |i: usize| &v.chans[i];
    let full = |i: usize| chan(i).len() >= chan(i).capacity();
    let has = |i: usize| !chan(i).is_empty();
    let jammed = |i: usize| chan(i).is_jammed();

    let mut g = Graph { edges: Vec::new(), terminal: HashMap::new() };
    // Attribute a stuck output handshake: a wedged channel is its own
    // culprit, a full one points at its consumer.
    let out_edge = |g: &mut Graph, me: Node, out: usize, what: &str| {
        if jammed(out) {
            g.edges.push((me, Node::Chan(out), format!("{what} channel {out} jammed")));
            g.terminal.insert(Node::Chan(out), "stuck-stall handshake (fault)".into());
        } else if full(out) {
            if let Some(&next) = consumer.get(&out) {
                g.edges.push((me, next, format!("{what} channel {out} full")));
            } else {
                g.terminal.insert(me, format!("{what} channel {out} full, no consumer"));
            }
        }
    };
    // Attribute a starved input handshake.
    let in_jam = |g: &mut Graph, me: Node, inp: usize| {
        if jammed(inp) && has(inp) {
            g.edges.push((me, Node::Chan(inp), format!("input channel {inp} jammed")));
            g.terminal.insert(Node::Chan(inp), "stuck-stall handshake (fault)".into());
        }
    };

    for (ci, comp) in v.comps.iter().enumerate() {
        let me = Node::Comp(ci);
        match comp {
            Comp::Pipe(p) => {
                let holding = p.holding();
                in_jam(&mut g, me, p.in_chan.0);
                if holding == 0 {
                    continue;
                }
                out_edge(&mut g, me, p.out_chan.0, "output");
                for (target, n) in p.mem_waits() {
                    let dst = match target {
                        MemTarget::Cache(c) => Node::Cache(c),
                        MemTarget::LineBuf(b) => Node::LineBuf(b),
                        _ => continue,
                    };
                    g.edges.push((me, dst, format!("{n} request(s) outstanding")));
                }
                for target in p.mem_issue_blocked(v.mem) {
                    let dst = match target {
                        MemTarget::Cache(c) => Node::Cache(c),
                        MemTarget::LineBuf(b) => Node::LineBuf(b),
                        _ => continue,
                    };
                    g.edges.push((me, dst, "cannot issue request".into()));
                }
            }
            Comp::Branch(b) => {
                in_jam(&mut g, me, b.inp.0);
                let Some(front) = chan(b.inp.0).front() else { continue };
                let taken = front.vals.get(b.cond_idx).copied().unwrap_or(0) != 0;
                let (dst, _) = if taken { &b.taken } else { &b.not_taken };
                out_edge(
                    &mut g,
                    me,
                    dst.0,
                    if taken { "taken-arm" } else { "not-taken-arm" },
                );
                if let Some(fi) = b.decisions {
                    if v.fifos[fi].q.len() >= v.fifos[fi].cap {
                        if let Some(&sel) = fifo_select.get(&fi) {
                            g.edges.push((me, sel, format!("decision fifo {fi} full")));
                        }
                    }
                }
            }
            Comp::Select(s) => {
                in_jam(&mut g, me, s.from_taken.0);
                in_jam(&mut g, me, s.from_not_taken.0);
                let has_input = has(s.from_taken.0) || has(s.from_not_taken.0);
                match s.decisions {
                    Some(fi) => {
                        let head = v.fifos[fi].q.front().copied();
                        match head {
                            None => {}
                            Some(head_wg) => {
                                let matches = |c: usize| {
                                    chan(c).front().map(|t| t.wg == head_wg).unwrap_or(false)
                                };
                                if matches(s.from_taken.0) || matches(s.from_not_taken.0) {
                                    out_edge(&mut g, me, s.out.0, "output");
                                } else {
                                    // Head work-group not available on
                                    // either arm: starving on producers.
                                    for arm in [s.from_taken.0, s.from_not_taken.0] {
                                        if let Some(&p) = producer.get(&arm) {
                                            g.edges.push((
                                                me,
                                                p,
                                                format!(
                                                    "waiting for a work-group {head_wg} \
                                                     token on channel {arm}"
                                                ),
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                        if head.is_none() && has_input {
                            g.terminal.insert(
                                me,
                                format!(
                                    "tokens waiting but decision fifo {fi} is empty \
                                     (decision lost?)"
                                ),
                            );
                        }
                    }
                    None => {
                        if has_input {
                            out_edge(&mut g, me, s.out.0, "output");
                        }
                    }
                }
            }
            Comp::Enter(e) => {
                in_jam(&mut g, me, e.outside.0);
                in_jam(&mut g, me, e.backedge.0);
                let wants = has(e.outside.0) || has(e.backedge.0);
                if !wants {
                    continue;
                }
                if full(e.out.0) || jammed(e.out.0) {
                    out_edge(&mut g, me, e.out.0, "output");
                    continue;
                }
                if has(e.backedge.0) {
                    continue; // back-edge has priority and can move: not blocked
                }
                let occ = v.counters[e.counter];
                if occ >= e.nmax {
                    if let Some(&exit) = counter_exit.get(&e.counter) {
                        g.edges.push((
                            me,
                            exit,
                            format!("loop at N_max ({}/{})", occ, e.nmax),
                        ));
                    }
                } else if e.swgr && occ > 0 {
                    if let Some(front) = chan(e.outside.0).front() {
                        if front.wg != e.cur_wg {
                            if let Some(&exit) = counter_exit.get(&e.counter) {
                                g.edges.push((
                                    me,
                                    exit,
                                    format!(
                                        "SWGR: work-group {} waits for work-group {} \
                                         to drain",
                                        front.wg, e.cur_wg
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            Comp::Exit(x) => {
                in_jam(&mut g, me, x.inp.0);
                if has(x.inp.0) {
                    out_edge(&mut g, me, x.out.0, "output");
                }
            }
            Comp::Barrier(b) => {
                in_jam(&mut g, me, b.inp.0);
                if b.releasing > 0 {
                    out_edge(&mut g, me, b.out.0, "output");
                } else if !b.buf.is_empty() && (b.buf.len() as u64) < b.wg_size {
                    if let Some(&p) = producer.get(&b.inp.0) {
                        g.edges.push((
                            me,
                            p,
                            format!(
                                "waiting for rest of work-group {} ({} of {} arrived)",
                                b.buf.front().map(|t| t.wg).unwrap_or(0),
                                b.buf.len(),
                                b.wg_size
                            ),
                        ));
                    }
                }
            }
            // Pure observer; never blocked, never blocking through
            // channels (memory waits reach it via `MemTarget::LineBuf`).
            Comp::LineBuf(_) => {}
        }
    }

    // Dispatchers and caches.
    for (di, d) in v.dispatchers.iter().enumerate() {
        let me = Node::Dispatcher(di);
        if !d.pending {
            continue;
        }
        if jammed(d.entry) || full(d.entry) {
            out_edge(&mut g, me, d.entry, "entry");
        } else if d.slots_full {
            let missing: Vec<String> = d
                .active
                .iter()
                .map(|(wg, rem)| format!("work-group {wg} ({rem} work-items unretired)"))
                .collect();
            g.terminal.insert(
                me,
                format!("all work-group slots held by: {}", missing.join(", ")),
            );
        }
    }
    for (i, c) in v.mem.caches.iter().enumerate() {
        if c.fault_active() {
            g.terminal.insert(
                Node::Cache(i),
                format!(
                    "fault injection wedged this cache ({} latched, {} in flight)",
                    c.latched_requests(),
                    c.inflight_requests()
                ),
            );
        }
    }
    for (i, b) in v.mem.line_bufs.iter().enumerate() {
        if b.fault_active() {
            g.terminal.insert(
                Node::LineBuf(i),
                format!(
                    "fault injection jammed this line buffer ({} latched, {} fill(s) \
                     in flight)",
                    b.latched_requests(),
                    b.inflight_fills()
                ),
            );
        }
    }

    // ---- classify -------------------------------------------------------
    let blocked = g.blocked();
    let (kind, culprits) = if let Some(cycle) = g.find_cycle() {
        (HangKind::CyclicWait, cycle.into_iter().map(name).collect())
    } else if v.tokens_flowing {
        let mut live: Vec<String> = v
            .comps
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| match c {
                Comp::Enter(e) if v.counters[e.counter] > 0 => Some(format!(
                    "{} (occupancy {}/{})",
                    name(Node::Comp(ci)),
                    v.counters[e.counter],
                    e.nmax
                )),
                _ => None,
            })
            .collect();
        if live.is_empty() {
            live.push("tokens circulating outside any loop".into());
        }
        (HangKind::Livelock, live)
    } else if blocked.is_empty() && machine_drained(v) {
        let mut missing: Vec<String> = v
            .dispatchers
            .iter()
            .flat_map(|d| d.active.iter())
            .map(|(wg, rem)| format!("work-group {wg} lost {rem} work-item(s)"))
            .collect();
        if missing.is_empty() {
            missing.push(format!(
                "machine drained with {} of {} work-items retired",
                v.retired, v.total
            ));
        }
        (HangKind::TokenLoss, missing)
    } else {
        // Starvation: the culprits are the ends of the wait chains — a
        // terminal blocked node, or a blocked node whose waits all lead
        // to parties that are themselves unblocked (idle forever).
        let blocked_set: std::collections::HashSet<Node> = blocked.iter().copied().collect();
        let mut culprits: Vec<String> = Vec::new();
        for n in &blocked {
            let outs: Vec<&Node> =
                g.edges.iter().filter(|(a, _, _)| a == n).map(|(_, b, _)| b).collect();
            let is_terminal = outs.is_empty() || outs.iter().all(|b| !blocked_set.contains(b));
            if is_terminal {
                let detail = g.terminal.get(n).cloned().or_else(|| {
                    g.edges
                        .iter()
                        .find(|(a, _, _)| a == n)
                        .map(|(_, b, r)| format!("waits on idle {}: {r}", name(*b)))
                });
                match detail {
                    Some(d) => culprits.push(format!("{}: {d}", name(*n))),
                    None => culprits.push(name(*n)),
                }
            }
        }
        if culprits.is_empty() {
            culprits.push("no blocked component identified".into());
        }
        (HangKind::Starvation, culprits)
    };

    DeadlockReport {
        cycle: v.stalled_since,
        kind,
        culprits,
        retired: v.retired,
        total: v.total,
        channels: v
            .chans
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty() || c.is_jammed())
            .map(|(i, c)| ChannelState {
                id: i,
                len: c.len(),
                cap: c.capacity(),
                front_wi: c.front().map(|t| t.wi),
                front_wg: c.front().map(|t| t.wg),
                jammed: c.is_jammed(),
            })
            .collect(),
        components: v
            .comps
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| {
                let detail = match c {
                    Comp::Pipe(p) if p.holding() > 0 => {
                        let units: Vec<String> = p
                            .unit_holds()
                            .iter()
                            .map(|(u, kind, held, cap)| format!("unit {u} ({kind}) {held}/{cap}"))
                            .collect();
                        Some(format!(
                            "holding {} work-item(s); {}",
                            p.holding(),
                            if units.is_empty() { "all on internal edges".into() } else { units.join(", ") }
                        ))
                    }
                    Comp::Barrier(b) if !b.buf.is_empty() => Some(format!(
                        "buffering {} token(s), releasing {}",
                        b.buf.len(),
                        b.releasing
                    )),
                    _ => None,
                };
                detail.map(|detail| ComponentState {
                    id: ci,
                    name: name(Node::Comp(ci)),
                    detail,
                })
            })
            .collect(),
        fifos: v
            .fifos
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.q.is_empty())
            .map(|(i, f)| FifoState {
                id: i,
                len: f.q.len(),
                cap: f.cap,
                head_wg: f.q.front().copied(),
            })
            .collect(),
        loops: v
            .comps
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| match c {
                Comp::Enter(e) => Some(LoopState {
                    counter: e.counter,
                    enter: name(Node::Comp(ci)),
                    occupancy: v.counters[e.counter],
                    nmax: e.nmax,
                }),
                _ => None,
            })
            .collect(),
        waits: g
            .edges
            .iter()
            .map(|(a, b, r)| WaitEdge { from: name(*a), to: name(*b), reason: r.clone() })
            .collect(),
    }
}

fn machine_drained(v: &MachineView<'_>) -> bool {
    v.chans.iter().all(|c| c.is_empty())
        && v.comps.iter().all(|c| match c {
            Comp::Pipe(p) => p.is_empty(),
            Comp::Barrier(b) => b.is_empty(),
            _ => true,
        })
}

// ---- watchdog window derivation ----------------------------------------

/// Derives the default deadlock window from machine parameters.
///
/// The window must exceed the longest *legitimate* stretch of cycles in
/// which neither a work-item retires, a channel push happens, nor a cache
/// accepts a request. The worst case is a full work-group funneling
/// through one serialized resource while everything else drains:
///
/// ```text
/// window = 4 · L_Datapath                      (drain the deepest path)
///        + wg_size · (t_DRAM + t_line + t_hit)  (a group of serialized misses)
///        + 4096                                 (slack: arbiters, flush)
/// ```
///
/// The progress watchdog additionally holds fire while the memory system
/// has timed events scheduled (see `MemorySystem::has_pending_events`),
/// so a DRAM latency spike cannot produce a false deadlock no matter the
/// window.
pub fn derived_deadlock_window(
    l_datapath: u64,
    wg_size: u64,
    dram_latency: u64,
    dram_cycles_per_line: u64,
    cache_hit_latency: u64,
) -> u64 {
    4 * l_datapath
        + wg_size.max(1) * (dram_latency + dram_cycles_per_line + cache_hit_latency)
        + 4096
}

/// Resolves the configured windows: `0` means "derive".
///
/// The livelock (retire-progress) window is much larger than the deadlock
/// window — tokens legitimately circulate a loop for its whole trip count
/// without retiring anything — and defaults to 64× the deadlock window.
pub(crate) fn effective_windows(cfg: &SimConfig, l_datapath: u64, wg_size: u64) -> (u64, u64) {
    let deadlock = if cfg.deadlock_window == 0 {
        derived_deadlock_window(
            l_datapath,
            wg_size,
            cfg.dram.latency as u64,
            cfg.dram.cycles_per_line as u64,
            cfg.cache.hit_latency as u64,
        )
    } else {
        cfg.deadlock_window
    };
    let livelock = if cfg.livelock_window == 0 {
        deadlock.saturating_mul(64)
    } else {
        cfg.livelock_window
    };
    (deadlock, livelock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_window_scales_with_inputs() {
        let base = derived_deadlock_window(100, 64, 38, 4, 4);
        assert_eq!(base, 4 * 100 + 64 * 46 + 4096);
        assert!(derived_deadlock_window(1000, 64, 38, 4, 4) > base);
        assert!(derived_deadlock_window(100, 256, 38, 4, 4) > base);
        assert!(derived_deadlock_window(100, 64, 400, 4, 4) > base);
    }

    #[test]
    fn explicit_windows_win() {
        let cfg = SimConfig { deadlock_window: 5_000, livelock_window: 70_000, ..SimConfig::default() };
        assert_eq!(effective_windows(&cfg, 100, 64), (5_000, 70_000));
        let auto = SimConfig { deadlock_window: 5_000, ..SimConfig::default() };
        assert_eq!(effective_windows(&auto, 100, 64), (5_000, 5_000 * 64));
    }

    #[test]
    fn cycle_detection_finds_a_cycle() {
        let g = Graph {
            edges: vec![
                (Node::Comp(0), Node::Comp(1), "a".into()),
                (Node::Comp(1), Node::Comp(2), "b".into()),
                (Node::Comp(2), Node::Comp(0), "c".into()),
                (Node::Comp(3), Node::Comp(0), "d".into()),
            ],
            terminal: HashMap::new(),
        };
        let cyc = g.find_cycle().expect("cycle exists");
        assert_eq!(cyc.len(), 3);
        assert!(cyc.contains(&Node::Comp(0)));
        assert!(!cyc.contains(&Node::Comp(3)), "tail node is not on the cycle");
    }

    #[test]
    fn cycle_detection_rejects_dags() {
        let g = Graph {
            edges: vec![
                (Node::Comp(0), Node::Comp(1), "a".into()),
                (Node::Comp(0), Node::Comp(2), "b".into()),
                (Node::Comp(1), Node::Comp(2), "c".into()),
                (Node::Comp(2), Node::Cache(0), "d".into()),
            ],
            terminal: HashMap::new(),
        };
        assert!(g.find_cycle().is_none());
    }
}
