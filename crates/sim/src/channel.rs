//! Handshake channels with synchronous (snapshot) semantics.
//!
//! A channel models the registered valid/stall handshake of §II-A/§IV-B:
//! a consumer only sees tokens that were present at the start of the
//! cycle, and a producer may push at most one token per cycle and only
//! when the start-of-cycle occupancy is below capacity. This makes the
//! per-cycle component evaluation order irrelevant — exactly like
//! synchronous hardware — and reproduces the paper's one-cycle stall
//! recognition delay.

use std::collections::VecDeque;

/// Identifies a channel within one simulated machine (see `crate::machine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(pub usize);

/// A bounded token FIFO with snapshot semantics.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    q: VecDeque<T>,
    cap: usize,
    /// Tokens visible to consumers this cycle.
    visible: usize,
    /// Occupancy at the start of the cycle (push limit).
    occ_start: usize,
    /// Total tokens ever pushed (for stats/debug).
    pub total: u64,
    /// Fault injection: while set, the channel refuses both ends of the
    /// handshake (stuck-stall), exactly like a wedged valid/stall pair.
    jammed: bool,
    /// Whether any state-changing operation (push, pop, fault mutation,
    /// jam flip) hit this channel since the last `begin_cycle`. The
    /// event-driven scheduler reads this to detect globally idle cycles.
    touched: bool,
}

impl<T> Channel<T> {
    /// Creates a channel with the given capacity (≥ 1).
    pub fn new(cap: usize) -> Channel<T> {
        Channel {
            q: VecDeque::new(),
            cap: cap.max(1),
            visible: 0,
            occ_start: 0,
            total: 0,
            jammed: false,
            touched: false,
        }
    }

    /// Called once at the start of every cycle.
    pub fn begin_cycle(&mut self) {
        self.visible = self.q.len();
        self.occ_start = self.q.len();
        self.touched = false;
    }

    /// Whether the channel changed state since the last `begin_cycle`.
    pub fn touched(&self) -> bool {
        self.touched
    }

    /// Fault injection: wedges or releases the handshake.
    pub fn set_jammed(&mut self, jammed: bool) {
        if self.jammed != jammed {
            self.touched = true;
        }
        self.jammed = jammed;
    }

    /// Whether the handshake is currently wedged by fault injection.
    pub fn is_jammed(&self) -> bool {
        self.jammed
    }

    /// Whether a consumer can pop this cycle.
    pub fn can_pop(&self) -> bool {
        self.visible > 0 && !self.jammed
    }

    /// Peeks the front token (only if visible).
    pub fn front(&self) -> Option<&T> {
        if self.visible > 0 {
            self.q.front()
        } else {
            None
        }
    }

    /// Pops the front token.
    ///
    /// # Panics
    ///
    /// Panics if no token is visible this cycle (check [`Channel::can_pop`]).
    pub fn pop(&mut self) -> T {
        assert!(self.visible > 0, "pop from channel with no visible token");
        self.visible -= 1;
        self.touched = true;
        self.q.pop_front().expect("visible implies non-empty")
    }

    /// Whether a producer can push this cycle.
    pub fn can_push(&self) -> bool {
        self.occ_start < self.cap && !self.jammed
    }

    /// Pushes a token.
    ///
    /// # Panics
    ///
    /// Panics if the channel was full at the start of the cycle.
    pub fn push(&mut self, t: T) {
        assert!(self.occ_start < self.cap, "push into full channel");
        self.occ_start += 1; // single producer: count this push against the limit
        self.total += 1;
        self.touched = true;
        self.q.push_back(t);
    }

    /// Current raw occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the channel holds no tokens at all.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Fault injection: silently removes the front token (models a lost
    /// valid pulse). Call between `begin_cycle` and the component ticks;
    /// the cycle-start snapshot is adjusted so consumers never see it.
    pub fn fault_drop_front(&mut self) -> bool {
        if self.q.pop_front().is_some() {
            self.visible = self.visible.saturating_sub(1);
            self.occ_start = self.occ_start.saturating_sub(1);
            self.touched = true;
            true
        } else {
            false
        }
    }
}

impl<T: Clone> Channel<T> {
    /// Fault injection: duplicates the front token (models a repeated
    /// valid pulse). The copy becomes visible next cycle, like any push;
    /// no-op when the channel is full or empty.
    pub fn fault_duplicate_front(&mut self) -> bool {
        if self.q.len() < self.cap {
            if let Some(front) = self.q.front().cloned() {
                self.occ_start += 1;
                self.total += 1;
                self.touched = true;
                self.q.push_back(front);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn tok(wi: u32) -> Token {
        Token { wi, wg: 0, vals: Box::new([]) }
    }

    #[test]
    fn pushed_token_invisible_until_next_cycle() {
        let mut c = Channel::new(4);
        c.begin_cycle();
        c.push(tok(1));
        assert!(!c.can_pop(), "same-cycle push must not be visible");
        c.begin_cycle();
        assert!(c.can_pop());
        assert_eq!(c.pop().wi, 1);
    }

    #[test]
    fn push_limit_uses_start_occupancy() {
        let mut c = Channel::new(1);
        c.begin_cycle();
        c.push(tok(1));
        assert!(!c.can_push(), "capacity 1 reached");
        c.begin_cycle();
        // Full at cycle start: pop this cycle does not free push space
        // until next cycle (one-cycle stall recognition).
        assert!(!c.can_push());
        let _ = c.pop();
        assert!(!c.can_push());
        c.begin_cycle();
        assert!(c.can_push());
    }

    #[test]
    fn fifo_order() {
        let mut c = Channel::new(4);
        c.begin_cycle();
        c.push(tok(1));
        c.push(tok(2));
        c.begin_cycle();
        assert_eq!(c.pop().wi, 1);
        assert_eq!(c.pop().wi, 2);
        assert!(!c.can_pop());
    }

    #[test]
    fn touched_tracks_state_changes_per_cycle() {
        let mut c = Channel::new(2);
        c.begin_cycle();
        assert!(!c.touched());
        c.push(tok(1));
        assert!(c.touched());
        c.begin_cycle();
        assert!(!c.touched(), "begin_cycle clears the touch flag");
        let _ = c.pop();
        assert!(c.touched());
        c.begin_cycle();
        c.set_jammed(true);
        assert!(c.touched(), "jam flip is a state change");
        c.begin_cycle();
        c.set_jammed(true);
        assert!(!c.touched(), "re-asserting the same jam is not a change");
    }

    #[test]
    #[should_panic(expected = "push into full channel")]
    fn overfull_push_panics() {
        let mut c = Channel::new(1);
        c.begin_cycle();
        c.push(tok(1));
        c.push(tok(2));
    }
}
