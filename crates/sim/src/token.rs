//! Work-item tokens and value-signature mappings.
//!
//! Tokens flow between pipelines carrying the *live variables* of one
//! work-item (§IV-D: "the role of the glue logic is to … pass live
//! variables of a work-item produced by one pipeline to the input of
//! another pipeline"). Every channel has a *signature* — the ordered list
//! of SSA values its tokens carry — and glue applies a precomputed
//! [`Mapping`] when moving a token onto a channel with a different
//! signature (this is where phi nodes are materialized).

use soff_ir::ir::{BlockId, InstKind, Kernel, ValueId};
use soff_ir::mem as irmem;

/// A work-item token: identity plus the live values of the current
/// signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Work-item serial (index into the launch's work-item table).
    pub wi: u32,
    /// Work-group serial.
    pub wg: u32,
    /// Live values, ordered per the channel's signature.
    pub vals: Box<[u64]>,
}

/// Where one output-signature slot comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// Copy from index `.0` of the source signature.
    Idx(usize),
    /// A launch-constant (uniform) value, resolved at launch time.
    Uniform(u64),
}

/// A signature-to-signature mapping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mapping {
    /// One source per destination slot. Empty mapping = identity move.
    pub slots: Vec<Slot>,
    /// Identity mappings skip the copy entirely.
    pub identity: bool,
}

impl Mapping {
    /// The identity mapping (source and destination signatures agree).
    pub fn identity() -> Mapping {
        Mapping { slots: Vec::new(), identity: true }
    }

    /// Applies the mapping to a token.
    pub fn apply(&self, t: &Token) -> Token {
        if self.identity {
            return t.clone();
        }
        let vals = self
            .slots
            .iter()
            .map(|s| match s {
                Slot::Idx(i) => t.vals[*i],
                Slot::Uniform(v) => *v,
            })
            .collect();
        Token { wi: t.wi, wg: t.wg, vals }
    }
}

/// Resolves the launch-constant value of a *uniform* instruction
/// (`Const`, `Param`, `LocalBase`, `PrivBase`).
///
/// `params` are the bound argument values in [`Kernel::params`] order.
///
/// # Panics
///
/// Panics if `v` is not uniform.
pub fn uniform_value(k: &Kernel, v: ValueId, params: &[u64]) -> u64 {
    match &k.instr(v).kind {
        InstKind::Const(bits) => *bits,
        InstKind::Param(i) => params[*i],
        InstKind::LocalBase(var) => irmem::local_addr(*var, 0),
        InstKind::PrivBase(off) => *off,
        other => panic!("uniform_value on non-uniform instruction {other:?}"),
    }
}

/// Builds the mapping for CFG edge `p → s`: destination signature `sig_to`
/// (the live-in of `s`), source signature `sig_from` (the live-out of
/// `p`). Phis of `s` take their `p`-incoming value.
pub fn edge_mapping(
    k: &Kernel,
    p: BlockId,
    sig_from: &[ValueId],
    s: BlockId,
    sig_to: &[ValueId],
    params: &[u64],
) -> Mapping {
    let slots = sig_to
        .iter()
        .map(|&v| {
            // Resolve phis of the destination block along this edge.
            let src = match &k.instr(v).kind {
                InstKind::Phi { incoming } if k.block(s).instrs.contains(&v) => incoming
                    .iter()
                    .find(|(pred, _)| *pred == p)
                    .map(|(_, pv)| *pv)
                    .unwrap_or_else(|| panic!("phi {v} has no incoming from {p}")),
                _ => v,
            };
            if k.instr(src).is_uniform() {
                Slot::Uniform(uniform_value(k, src, params))
            } else {
                let idx = sig_from
                    .iter()
                    .position(|&f| f == src)
                    .unwrap_or_else(|| panic!("{src} missing from live-out of {p} (needed by {s})"));
                Slot::Idx(idx)
            }
        })
        .collect();
    Mapping { slots, identity: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mapping_preserves_token() {
        let t = Token { wi: 1, wg: 0, vals: vec![10, 20].into_boxed_slice() };
        let m = Mapping::identity();
        assert_eq!(m.apply(&t), t);
    }

    #[test]
    fn mapping_reorders_and_fills_uniforms() {
        let t = Token { wi: 1, wg: 0, vals: vec![10, 20].into_boxed_slice() };
        let m = Mapping {
            slots: vec![Slot::Idx(1), Slot::Uniform(99), Slot::Idx(0)],
            identity: false,
        };
        let out = m.apply(&t);
        assert_eq!(&*out.vals, &[20, 99, 10]);
        assert_eq!(out.wi, 1);
    }
}
