//! The assembled memory subsystem of one kernel execution (§V, Fig. 9):
//! caches (per buffer × datapath when possible), local-memory blocks (per
//! variable × datapath), private memory, and the shared DRAM.

use crate::launch::LaunchCtx;
use soff_datapath::Datapath;
use soff_ir::ir::Kernel;
use soff_ir::mem::GlobalMemory;
use soff_ir::pointer::{self, PointerAnalysis};
use soff_mem::{
    Cache, CacheConfig, CacheStats, Dram, DramConfig, LineBufStats, LineBuffer, LocalBlock,
    MemRequest, MemResponse, PortId, PrivateMemory,
};
use std::collections::HashMap;

/// Which memory a functional unit's interface is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTarget {
    /// Cache index within [`MemorySystem::caches`].
    Cache(usize),
    /// Line-buffer index within [`MemorySystem::line_bufs`].
    LineBuf(usize),
    /// Local block index within [`MemorySystem::locals`].
    Local(usize),
    /// The private memory.
    Private,
}

/// The full memory subsystem.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// All caches (shared across datapath instances when the kernel uses
    /// atomics, per instance otherwise, §V-A).
    pub caches: Vec<Cache>,
    /// Shift-register line buffers, one per (sliding window × instance),
    /// window-major (see DESIGN.md §13). The cache of a window-served
    /// group is still built but receives no ports — synthesis would
    /// elide it; keeping it inert preserves cache indices for fault
    /// plans and per-cache statistics.
    pub line_bufs: Vec<LineBuffer>,
    /// All local blocks (always per instance).
    pub locals: Vec<LocalBlock>,
    /// Private memory (keyed by work-item serial).
    pub private: PrivateMemory,
    /// Shared external memory.
    pub dram: Dram,
    /// Private-access latency (responses are immediate; the issuing unit
    /// applies its own `L_F`).
    responses_private: HashMap<usize, std::collections::VecDeque<(u64, MemResponse)>>,
    next_private_port: usize,
    private_latency: u32,
}

/// Describes how caches are laid out for a kernel: the group each memory
/// instruction belongs to and whether caches are shared across instances.
#[derive(Debug, Clone)]
pub struct CachePlan {
    /// Cache group per memory instruction (`None` for non-global).
    pub group_of_value: Vec<Option<usize>>,
    /// Number of distinct groups.
    pub num_groups: usize,
    /// Whether groups are shared across datapath instances (atomics or
    /// unattributable pointers present).
    pub shared: bool,
}

impl CachePlan {
    /// Computes the plan from the pointer analysis (§V-A).
    pub fn plan(kernel: &Kernel, pa: &PointerAnalysis) -> CachePlan {
        let (groups, unknown) = pointer::global_cache_groups(kernel, pa);
        let num_groups = groups.iter().flatten().copied().max().map(|m| m + 1).unwrap_or(0);
        CachePlan {
            group_of_value: groups,
            num_groups: num_groups.max(if unknown { 1 } else { 0 }),
            shared: kernel.uses_atomics || unknown,
        }
    }

    /// Index of the cache for `(group, instance)` given `num_instances`.
    pub fn cache_index(&self, group: usize, instance: usize) -> usize {
        if self.shared {
            group
        } else {
            instance * self.num_groups + group
        }
    }

    /// Total number of cache instances for `num_instances` datapaths.
    pub fn total_caches(&self, num_instances: usize) -> usize {
        if self.shared {
            self.num_groups
        } else {
            self.num_groups * num_instances
        }
    }
}

impl MemorySystem {
    /// Builds the memory subsystem for `num_instances` datapath copies.
    pub fn build(
        kernel: &Kernel,
        dp: &Datapath,
        plan: &CachePlan,
        num_instances: usize,
        cache_cfg: CacheConfig,
        dram_cfg: DramConfig,
        launch: &LaunchCtx,
    ) -> MemorySystem {
        let caches = (0..plan.total_caches(num_instances))
            .map(|_| Cache::new(cache_cfg))
            .collect();
        // Local blocks: per (instance, var), each sized with wg slots.
        let mut locals = Vec::new();
        for _inst in 0..num_instances {
            for (vi, var) in kernel.local_vars.iter().enumerate() {
                let size = launch.local_sizes.get(vi).copied().unwrap_or(var.size);
                // Connected units: count accesses to this var (approx. by
                // counting local-memory instructions; fine for banking).
                let n_units = kernel
                    .values
                    .iter()
                    .filter(|i| {
                        i.mem_space() == Some(soff_frontend::types::AddressSpace::Local)
                    })
                    .count()
                    .max(1);
                locals.push(LocalBlock::new(
                    size,
                    dp.wg_slots,
                    n_units,
                    dp.latencies.local_mem,
                ));
            }
        }
        MemorySystem {
            caches,
            line_bufs: Vec::new(), // pushed by the machine once windows are gated
            locals,
            private: PrivateMemory::new(kernel.private_bytes),
            dram: Dram::new(dram_cfg),
            responses_private: HashMap::new(),
            next_private_port: 0,
            private_latency: dp.latencies.private_mem,
        }
    }

    /// Registers a private-memory port.
    pub fn add_private_port(&mut self) -> PortId {
        let id = self.next_private_port;
        self.next_private_port += 1;
        self.responses_private.insert(id, Default::default());
        PortId(id)
    }

    /// Whether a request can be issued to `target` on `port` this cycle.
    pub fn can_request(&self, target: MemTarget, port: PortId) -> bool {
        match target {
            MemTarget::Cache(c) => self.caches[c].can_request(port),
            MemTarget::LineBuf(b) => self.line_bufs[b].can_request(port),
            MemTarget::Local(l) => self.locals[l].can_request(port),
            MemTarget::Private => true,
        }
    }

    /// Issues a request.
    pub fn request(&mut self, target: MemTarget, port: PortId, req: MemRequest, now: u64) {
        match target {
            MemTarget::Cache(c) => self.caches[c].request(port, req),
            MemTarget::LineBuf(b) => self.line_bufs[b].request(port, req),
            MemTarget::Local(l) => self.locals[l].request(port, req),
            MemTarget::Private => {
                let resp = self.private.access(&req);
                self.responses_private
                    .get_mut(&port.0)
                    .expect("private port registered")
                    .push_back((now + self.private_latency as u64, resp));
            }
        }
    }

    /// Pops a ready response.
    pub fn pop_response(&mut self, target: MemTarget, port: PortId, now: u64) -> Option<MemResponse> {
        match target {
            MemTarget::Cache(c) => self.caches[c].pop_response(port),
            MemTarget::LineBuf(b) => self.line_bufs[b].pop_response(port, now),
            MemTarget::Local(l) => self.locals[l].pop_response(port, now),
            MemTarget::Private => {
                let q = self.responses_private.get_mut(&port.0)?;
                if q.front().map(|(r, _)| *r <= now).unwrap_or(false) {
                    q.pop_front().map(|(_, r)| r)
                } else {
                    None
                }
            }
        }
    }

    /// Whether any memory component still has a timed event scheduled in
    /// the future (in-flight cache fills, undelivered local/private
    /// responses). While true, lack of datapath progress means "memory is
    /// slow", not "the machine is wedged" — the deadlock watchdog must
    /// hold fire.
    pub fn has_pending_events(&self, now: u64) -> bool {
        self.caches.iter().any(|c| c.has_pending_events(now))
            || self.line_bufs.iter().any(|b| b.has_pending_events())
            || self.locals.iter().any(|l| l.has_pending_events(now))
            || self
                .responses_private
                .values()
                .any(|q| q.iter().any(|(ready, _)| *ready > now))
    }

    /// Advances caches and local blocks one cycle. Returns whether any
    /// component delivered or accepted anything. Completely idle caches
    /// and locals are skipped — their tick is a provable no-op (no state,
    /// no stall counters), so skipping is exact in both scheduler modes.
    pub fn tick(&mut self, now: u64, gm: &mut GlobalMemory) -> bool {
        let mut moved = false;
        for c in &mut self.caches {
            if c.is_idle() {
                continue;
            }
            moved |= c.tick(now, &mut self.dram, gm);
        }
        for b in &mut self.line_bufs {
            if b.is_idle() {
                continue;
            }
            moved |= b.tick(now, &mut self.dram, gm);
        }
        for l in &mut self.locals {
            moved |= l.tick(now);
        }
        moved
    }

    /// The earliest future cycle at which a queued response matures (cache
    /// fills, local-block latencies, private latencies); `None` when no
    /// timed event is scheduled. Undelivered responses already past their
    /// ready cycle do not count — they act on the very next tick, which
    /// the caller accounts for separately.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let caches = self.caches.iter().filter_map(|c| c.next_response_ready());
        let line_bufs = self.line_bufs.iter().filter_map(|b| b.next_event_cycle());
        let locals = self.locals.iter().filter_map(|l| l.next_response_ready());
        let private = self
            .responses_private
            .values()
            .filter_map(|q| q.front().map(|(ready, _)| *ready));
        caches.chain(line_bufs).chain(locals).chain(private).filter(|&r| r > now).min()
    }

    /// Replays `cycles` blocked cycles on every cache in closed form (see
    /// [`Cache::replay_blocked`]); locals and private memory have nothing
    /// to replay (any latched local request makes progress, so a frozen
    /// machine has none). Line buffers need no replay either: all their
    /// statistics count events, never idle cycles.
    pub fn replay_blocked(&mut self, now: u64, cycles: u64) {
        for c in &mut self.caches {
            c.replay_blocked(now, cycles);
        }
    }

    /// Flushes all caches; returns the completion cycle (§III-B: the
    /// work-item counter triggers this when the NDRange finishes).
    pub fn flush_all(&mut self, now: u64) -> u64 {
        let mut done = now;
        for c in &mut self.caches {
            done = done.max(c.flush(now, &mut self.dram));
        }
        done
    }

    /// Aggregated cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for c in &self.caches {
            let s = c.stats;
            agg.accesses += s.accesses;
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.writebacks += s.writebacks;
            agg.arbitration_stalls += s.arbitration_stalls;
            agg.mshr_stalls += s.mshr_stalls;
            agg.lock_delay += s.lock_delay;
            agg.prefetch_hits += s.prefetch_hits;
        }
        agg
    }

    /// Per-cache statistics, indexed like `caches` (see
    /// [`CachePlan::cache_index`] for the layout).
    pub fn per_cache_stats(&self) -> Vec<CacheStats> {
        self.caches.iter().map(|c| c.stats).collect()
    }

    /// Aggregated line-buffer statistics.
    pub fn lb_stats(&self) -> LineBufStats {
        let mut agg = LineBufStats::default();
        for b in &self.line_bufs {
            let s = b.stats;
            agg.accesses += s.accesses;
            agg.window_hits += s.window_hits;
            agg.underruns += s.underruns;
            agg.stream_refills += s.stream_refills;
            agg.bytes_from_dram += s.bytes_from_dram;
            agg.bytes_served += s.bytes_served;
        }
        agg
    }

    /// Per-line-buffer statistics, indexed like `line_bufs`
    /// (window-major: `window * num_instances + instance`).
    pub fn per_lb_stats(&self) -> Vec<LineBufStats> {
        self.line_bufs.iter().map(|b| b.stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_index_layout() {
        let plan = CachePlan {
            group_of_value: vec![],
            num_groups: 3,
            shared: false,
        };
        // Instance-major layout, unique per (group, instance).
        let mut seen = std::collections::HashSet::new();
        for inst in 0..4 {
            for g in 0..3 {
                assert!(seen.insert(plan.cache_index(g, inst)));
            }
        }
        assert_eq!(plan.total_caches(4), 12);
        let shared = CachePlan { group_of_value: vec![], num_groups: 3, shared: true };
        assert_eq!(shared.cache_index(2, 7), 2);
        assert_eq!(shared.total_caches(4), 3);
    }
}
