//! Direct-threaded dispatch for the compiled scheduler: executes one
//! machine cycle from a lowered [`TickProgram`].
//!
//! This is the execution half of [`crate::machine::Scheduler::Compiled`]
//! (the lowering half lives in [`crate::tickvm`]). The loop walks the
//! flat op stream — 20 bytes per component instead of the interpreted
//! loop's large-stride `Comp` enum values — and decides skip-or-tick
//! from the op's pre-resolved channel indices plus the one-byte
//! hot-state mirror. The big `Comp` value is dereferenced only when the
//! component actually executes, so a mostly-idle machine touches almost
//! none of its component memory per cycle.
//!
//! The skip conditions are *exactly* the event-driven scheduler's (see
//! the interpreted loop in `machine.rs`): a skipped tick would only
//! advance profile-gated attribution counters, and skipping is disabled
//! whenever the profiler is on (`skip == false` makes this loop
//! equivalent to dense stepping, which is what profiling requires for
//! identical attribution). Bit-identity of results therefore follows
//! from predicate equivalence plus preserved component order — loop
//! counters and decision FIFOs are shared, non-snapshot, intra-cycle
//! state, so ops run in the same order the interpreted loops use.

use crate::channel::Channel;
use crate::glue::DecisionFifo;
use crate::launch::LaunchCtx;
use crate::machine::Comp;
use crate::memsys::MemorySystem;
use crate::tickvm::{
    barrier_hot, OpCode, TickProgram, HOT_FULL_GROUP, HOT_NONEMPTY, HOT_RELEASING,
};
use crate::token::Token;
use soff_ir::ir::Kernel;

/// Executes every component's tick for one cycle, in component order,
/// skipping provable no-ops when `skip` is set. Returns whether any
/// pipeline moved a token (the `comp_moved` input to the quiescent-gap
/// fast-forward gate; glue ticks move tokens only through channels,
/// which the gate observes via `Channel::touched`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_cycle(
    prog: &mut TickProgram,
    now: u64,
    chans: &mut [Channel<Token>],
    comps: &mut [Comp],
    fifos: &mut [DecisionFifo],
    counters: &mut [u64],
    mem: &mut MemorySystem,
    launch: &LaunchCtx,
    kernel: &Kernel,
    skip: bool,
) -> bool {
    let mut moved = false;
    for (op, hot) in prog.ops.iter().zip(prog.hot.iter_mut()) {
        match op.code {
            OpCode::Unit => {
                // Mirror of `PipelineSim::quiescent`: empty and nothing
                // offered on the input channel. Emptiness comes from the
                // hot byte, refreshed below only when a tick moves a
                // token (a no-move tick cannot change it).
                if skip && *hot & HOT_NONEMPTY == 0 && !chans[op.a as usize].can_pop() {
                    continue;
                }
                let Comp::Pipe(p) = &mut comps[op.comp as usize] else {
                    unreachable!("Unit op lowered from a Pipe component")
                };
                if p.tick(now, chans, mem, launch, kernel) {
                    moved = true;
                    *hot = if p.is_empty() { 0 } else { HOT_NONEMPTY };
                }
            }
            OpCode::Branch => {
                // Branch pops through `front()`, which ignores jamming,
                // so the skip condition must too.
                if skip && chans[op.a as usize].front().is_none() {
                    continue;
                }
                let Comp::Branch(x) = &mut comps[op.comp as usize] else {
                    unreachable!("Branch op lowered from a Branch component")
                };
                x.tick(chans, fifos);
            }
            OpCode::Select => {
                if skip
                    && chans[op.a as usize].front().is_none()
                    && chans[op.b as usize].front().is_none()
                {
                    continue;
                }
                let Comp::Select(x) = &mut comps[op.comp as usize] else {
                    unreachable!("Select op lowered from a Select component")
                };
                x.tick(chans, fifos);
            }
            OpCode::Enter => {
                if skip
                    && (!chans[op.a as usize].can_push()
                        || (!chans[op.b as usize].can_pop()
                            && chans[op.c as usize].front().is_none()))
                {
                    continue;
                }
                let Comp::Enter(x) = &mut comps[op.comp as usize] else {
                    unreachable!("Enter op lowered from an Enter component")
                };
                x.tick(chans, counters);
            }
            OpCode::Exit => {
                if skip
                    && (!chans[op.a as usize].can_pop() || !chans[op.b as usize].can_push())
                {
                    continue;
                }
                let Comp::Exit(x) = &mut comps[op.comp as usize] else {
                    unreachable!("Exit op lowered from an Exit component")
                };
                x.tick(chans, counters);
            }
            OpCode::Barrier => {
                // Mirror of the interpreted `can_act`: input available,
                // or a full group waiting to start its release, or a
                // release in progress with room on the output channel.
                let h = *hot;
                let can_act = chans[op.a as usize].can_pop()
                    || h & HOT_FULL_GROUP != 0
                    || (h & HOT_RELEASING != 0 && chans[op.b as usize].can_push());
                if skip && !can_act {
                    continue;
                }
                let Comp::Barrier(x) = &mut comps[op.comp as usize] else {
                    unreachable!("Barrier op lowered from a Barrier component")
                };
                x.tick(chans);
                *hot = barrier_hot(x);
            }
            OpCode::LineBuf => {
                // Purely observational attribution (see the interpreted
                // loop's unconditional event-driven skip): ticking moves
                // nothing, so skip whenever skipping is enabled at all.
                if skip {
                    continue;
                }
                let Comp::LineBuf(u) = &mut comps[op.comp as usize] else {
                    unreachable!("LineBuf op lowered from a LineBuf component")
                };
                u.tick(mem);
            }
        }
    }
    moved
}
