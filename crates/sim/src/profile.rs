//! Cycle-attribution profiler for the machine simulator.
//!
//! The paper explains performance entirely through architectural behaviour
//! — Case-1/Case-2 stalls (§IV-C), cache misses, barrier draining, and
//! loop occupancy limits (§VI) — but aggregate end-of-run totals cannot
//! say *which* unit stalled on *whom*. This module attributes every
//! component's cycles into four exclusive categories:
//!
//! * **busy** — the component moved a token this cycle (or holds work in
//!   flight that is progressing through its latency);
//! * **issue-stall** — inputs were ready but the component could not issue
//!   (Case-1: capacity `L_F + 1` reached, memory port busy, loop occupancy
//!   at `N_max`, SWGR admission refused, decision-FIFO head missing);
//! * **output-stall** — a finished token was blocked by a full downstream
//!   channel (Case-2);
//! * **idle** — no input and nothing in flight.
//!
//! Exactly one category is incremented per component per machine cycle, so
//! `busy + issue_stall + output_stall + idle == cycles_observed` holds for
//! every functional unit, glue device, and cache — the conservation
//! invariant the property tests assert.
//!
//! On top of the counters the profiler records a bounded ring buffer of
//! sampled time series (FIFO depth histograms, per-buffer cache hit/miss
//! and MSHR occupancy, DRAM channel occupancy, work-items in flight per
//! basic block), work-group lifetime and barrier-release spans for the
//! Chrome trace-event / Perfetto export, and a bottleneck ranking derived
//! from the same channel wiring the deadlock forensics use
//! ([`crate::diag::channel_wiring`]).
//!
//! Profiling is off by default ([`crate::machine::SimConfig::profile`] is
//! `None`): the per-unit counter vectors are not even allocated, the
//! per-cycle observation pass is skipped entirely, and simulated cycle
//! counts are bit-identical with profiling on or off (the profiler only
//! observes; it never changes machine behaviour).

use crate::channel::Channel;
use crate::diag::{self, Node};
use crate::machine::Comp;
use crate::memsys::{CachePlan, MemTarget, MemorySystem};
use crate::token::Token;
use soff_mem::CacheStats;
use std::collections::VecDeque;
use std::io::{self, Write};

/// Profiler configuration ([`crate::machine::SimConfig::profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Cycles between time-series samples.
    pub sample_interval: u64,
    /// Ring-buffer bound on stored samples (oldest evicted first).
    pub max_samples: usize,
    /// Bound on stored trace spans (further spans are counted as dropped).
    pub max_spans: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { sample_interval: 64, max_samples: 4096, max_spans: 16384 }
    }
}

/// Exclusive per-cycle attribution of one component's time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles a token moved (or latency-covered work was in flight).
    pub busy: u64,
    /// Cycles inputs were ready but issue was refused (Case-1).
    pub issue_stall: u64,
    /// Cycles a finished token was blocked downstream (Case-2).
    pub output_stall: u64,
    /// Cycles with no input and nothing in flight.
    pub idle: u64,
}

impl CycleBreakdown {
    /// Sum of all four categories (== cycles observed).
    pub fn total(&self) -> u64 {
        self.busy + self.issue_stall + self.output_stall + self.idle
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CycleBreakdown) {
        self.busy += other.busy;
        self.issue_stall += other.issue_stall;
        self.output_stall += other.output_stall;
        self.idle += other.idle;
    }
}

/// Per-functional-unit attribution inside one basic pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitProfile {
    /// Unit index within the pipeline's DFG.
    pub unit: usize,
    /// Engine kind: `source` / `sink` / `compute` / `mem`.
    pub kind: String,
    /// Cycle attribution.
    pub cycles: CycleBreakdown,
}

/// Per-component attribution (pipelines carry their per-unit detail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompProfile {
    /// Build-time label (e.g. `pipeline bb2 (inst 0)`).
    pub label: String,
    /// Component kind.
    pub kind: String,
    /// Cycle attribution. For pipelines this is the element-wise sum over
    /// `units`; conservation holds per unit, not for the sum.
    pub cycles: CycleBreakdown,
    /// Per-unit detail (empty for glue components).
    pub units: Vec<UnitProfile>,
}

/// Per-cache attribution and final counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheProfile {
    /// `cache buf-group G (inst I)` or `(shared)`.
    pub label: String,
    /// Cycle attribution of the cache + its datapath-cache arbiter.
    pub cycles: CycleBreakdown,
    /// Final counters (hits, misses, arbitration/MSHR stalls, prefetch
    /// hits, …).
    pub stats: CacheStats,
}

/// Occupancy histogram of one machine channel. Buckets: depth 0, 1, 2, 3,
/// 4–7, ≥8 — chosen so the common capacities (2-deep glue channels,
/// ILP-balanced FIFOs) resolve exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoDepth {
    /// Machine channel index.
    pub chan: usize,
    /// Channel capacity.
    pub capacity: usize,
    /// Cycle counts per depth bucket.
    pub buckets: [u64; 6],
}

/// Per-cache slice of one time-series sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSample {
    /// Accepted requests awaiting response (MSHR occupancy proxy).
    pub inflight: u32,
    /// Ports with a latched, not-yet-granted request.
    pub latched: u32,
    /// Cumulative hits at sample time.
    pub hits: u64,
    /// Cumulative misses at sample time.
    pub misses: u64,
}

/// One entry of the bounded time-series ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Sample cycle.
    pub cycle: u64,
    /// Tokens anywhere in the machine (channels + pipelines + barriers).
    pub tokens_in_flight: u64,
    /// Work-items retired so far.
    pub retired: u64,
    /// DRAM channels mid-transfer at this cycle.
    pub dram_busy_channels: u32,
    /// Cumulative DRAM line reads.
    pub dram_reads: u64,
    /// Cumulative DRAM line writes.
    pub dram_writes: u64,
    /// Per-cache state, indexed like [`MemorySystem::caches`].
    pub caches: Vec<CacheSample>,
    /// Work-items in flight per basic pipeline (machine component order).
    pub pipes: Vec<u32>,
}

/// Which Perfetto track a span renders on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanTrack {
    /// Work-group lifetime (dispatch → last retirement).
    WorkGroup,
    /// A barrier's release phase (first → last released work-item).
    Barrier,
}

/// One timeline span for the trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (`wg 3`, `barrier (inst 0) release`).
    pub name: String,
    /// Track assignment.
    pub track: SpanTrack,
    /// Start cycle.
    pub start: u64,
    /// End cycle (inclusive of the last active cycle).
    pub end: u64,
}

/// One ranked stall chain: `victim` lost `cycles` waiting on `blocker`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bottleneck {
    /// The stalled component (or unit within it).
    pub victim: String,
    /// What it was waiting on.
    pub blocker: String,
    /// Stalled cycles attributed to this edge.
    pub cycles: u64,
    /// Which handshake stalled.
    pub reason: String,
}

/// Everything the profiler learned about one kernel execution. Attached to
/// [`crate::machine::SimResult::profile`] when profiling is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Kernel name.
    pub kernel: String,
    /// Machine cycles observed by the profiler (the conservation total:
    /// every per-unit breakdown sums to exactly this). Equals
    /// `compute_cycles + 1` — the final retiring cycle is observed too;
    /// the end-of-kernel flush runs after the clock stops and is excluded.
    pub cycles_observed: u64,
    /// Total cycles of the run including the final cache flush.
    pub total_cycles: u64,
    /// Per-component attribution, in machine component order.
    pub comps: Vec<CompProfile>,
    /// Per-cache attribution (per buffer × instance, not lumped).
    pub caches: Vec<CacheProfile>,
    /// Channel occupancy histograms.
    pub fifo_depth: Vec<FifoDepth>,
    /// Bounded time-series ring buffer (oldest samples evicted).
    pub samples: Vec<Sample>,
    /// Work-group and barrier spans for the trace export.
    pub spans: Vec<Span>,
    /// Ranked dominant stall chains.
    pub bottlenecks: Vec<Bottleneck>,
    /// Spans not recorded because `max_spans` was reached.
    pub dropped_spans: u64,
}

/// Human-readable labels for the cache layout of a plan.
pub(crate) fn cache_labels(plan: &CachePlan, total: usize) -> Vec<String> {
    (0..total)
        .map(|i| {
            if plan.shared {
                format!("cache buf-group {i} (shared)")
            } else {
                let groups = plan.num_groups.max(1);
                format!("cache buf-group {} (inst {})", i % groups, i / groups)
            }
        })
        .collect()
}

fn depth_bucket(len: usize) -> usize {
    match len {
        0..=3 => len,
        4..=7 => 4,
        _ => 5,
    }
}

/// The live profiler the machine drives while the clock runs.
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    cfg: ProfileConfig,
    ticks: u64,
    comp_labels: Vec<String>,
    cache_labels: Vec<String>,
    fifo_hist: Vec<[u64; 6]>,
    cache_cycles: Vec<CycleBreakdown>,
    cache_prev_accesses: Vec<u64>,
    samples: VecDeque<Sample>,
    spans: Vec<Span>,
    dropped_spans: u64,
    /// Open work-group spans: (wg, dispatch cycle).
    open_wg: Vec<(u32, u64)>,
    /// Per-component barrier release-phase tracking.
    barrier_release_start: Vec<Option<u64>>,
}

impl Profiler {
    pub(crate) fn new(
        cfg: ProfileConfig,
        num_chans: usize,
        comp_labels: Vec<String>,
        cache_labels: Vec<String>,
    ) -> Profiler {
        let num_caches = cache_labels.len();
        let num_comps = comp_labels.len();
        Profiler {
            cfg,
            ticks: 0,
            comp_labels,
            cache_labels,
            fifo_hist: vec![[0; 6]; num_chans],
            cache_cycles: vec![CycleBreakdown::default(); num_caches],
            cache_prev_accesses: vec![0; num_caches],
            samples: VecDeque::new(),
            spans: Vec::new(),
            dropped_spans: 0,
            open_wg: Vec::new(),
            barrier_release_start: vec![None; num_comps],
        }
    }

    /// A work-group entered the dispatcher.
    pub(crate) fn wg_dispatched(&mut self, wg: u32, now: u64) {
        self.open_wg.push((wg, now));
    }

    /// A work-group's last work-item retired.
    pub(crate) fn wg_completed(&mut self, wg: u32, now: u64) {
        if let Some(pos) = self.open_wg.iter().position(|&(w, _)| w == wg) {
            let (_, start) = self.open_wg.swap_remove(pos);
            self.push_span(Span {
                name: format!("wg {wg}"),
                track: SpanTrack::WorkGroup,
                start,
                end: now,
            });
        }
    }

    fn push_span(&mut self, span: Span) {
        if self.spans.len() < self.cfg.max_spans {
            self.spans.push(span);
        } else {
            self.dropped_spans += 1;
        }
    }

    /// One end-of-cycle observation pass (only called when profiling).
    pub(crate) fn observe(
        &mut self,
        now: u64,
        chans: &[Channel<Token>],
        comps: &[Comp],
        mem: &MemorySystem,
        retired: u64,
    ) {
        self.ticks += 1;

        for (i, c) in chans.iter().enumerate() {
            self.fifo_hist[i][depth_bucket(c.len())] += 1;
        }

        // Cache + arbiter attribution: accepting a request (or serving
        // in-flight ones) is busy; latched-but-ungranted ports with no
        // grant this cycle are arbitration/MSHR issue stalls.
        for (i, c) in mem.caches.iter().enumerate() {
            let cyc = &mut self.cache_cycles[i];
            let accepted = c.stats.accesses > self.cache_prev_accesses[i];
            self.cache_prev_accesses[i] = c.stats.accesses;
            if accepted {
                cyc.busy += 1;
            } else if c.latched_requests() > 0 {
                cyc.issue_stall += 1;
            } else if c.inflight_requests() > 0 {
                cyc.busy += 1;
            } else {
                cyc.idle += 1;
            }
        }

        // Barrier release phases.
        for (ci, comp) in comps.iter().enumerate() {
            if let Comp::Barrier(b) = comp {
                let releasing = b.releasing > 0;
                match (self.barrier_release_start[ci], releasing) {
                    (None, true) => self.barrier_release_start[ci] = Some(now),
                    (Some(start), false) => {
                        self.barrier_release_start[ci] = None;
                        let name = format!("{} release", self.comp_labels[ci]);
                        self.push_span(Span {
                            name,
                            track: SpanTrack::Barrier,
                            start,
                            end: now,
                        });
                    }
                    _ => {}
                }
            }
        }

        if now.is_multiple_of(self.cfg.sample_interval) {
            let mut tokens: u64 = chans.iter().map(|c| c.len() as u64).sum();
            let mut pipes = Vec::new();
            for comp in comps {
                match comp {
                    Comp::Pipe(p) => {
                        let h = p.holding() as u64;
                        tokens += h;
                        pipes.push(h as u32);
                    }
                    Comp::Barrier(b) => tokens += b.buf.len() as u64,
                    _ => {}
                }
            }
            let caches = mem
                .caches
                .iter()
                .map(|c| CacheSample {
                    inflight: c.inflight_requests() as u32,
                    latched: c.latched_requests() as u32,
                    hits: c.stats.hits,
                    misses: c.stats.misses,
                })
                .collect();
            if self.samples.len() >= self.cfg.max_samples {
                self.samples.pop_front();
            }
            self.samples.push_back(Sample {
                cycle: now,
                tokens_in_flight: tokens,
                retired,
                dram_busy_channels: mem.dram.busy_channels(now),
                dram_reads: mem.dram.stats.reads,
                dram_writes: mem.dram.stats.writes,
                caches,
                pipes,
            });
        }
    }

    /// Seals the profile after the last work-item retired.
    pub(crate) fn finish(
        mut self,
        kernel: String,
        comps: &[Comp],
        mem: &MemorySystem,
        chans: &[Channel<Token>],
        end_cycle: u64,
        total_cycles: u64,
    ) -> ProfileReport {
        // Close anything still open (possible only if the machine ends
        // mid-phase, e.g. a barrier releasing on the final cycle).
        let open_wg = std::mem::take(&mut self.open_wg);
        for (wg, start) in open_wg {
            self.push_span(Span {
                name: format!("wg {wg}"),
                track: SpanTrack::WorkGroup,
                start,
                end: end_cycle,
            });
        }
        for ci in 0..self.barrier_release_start.len() {
            if let Some(start) = self.barrier_release_start[ci].take() {
                let name = format!("{} release", self.comp_labels[ci]);
                self.push_span(Span {
                    name,
                    track: SpanTrack::Barrier,
                    start,
                    end: end_cycle,
                });
            }
        }
        self.spans.sort_by(|a, b| (a.start, &a.name).cmp(&(b.start, &b.name)));

        let comp_profiles: Vec<CompProfile> = comps
            .iter()
            .zip(&self.comp_labels)
            .map(|(comp, label)| {
                let (kind, cycles, units) = match comp {
                    Comp::Pipe(p) => {
                        let units = p.unit_profiles().unwrap_or_default();
                        let mut sum = CycleBreakdown::default();
                        for u in &units {
                            sum.add(&u.cycles);
                        }
                        ("pipeline", sum, units)
                    }
                    Comp::Branch(b) => ("branch", b.cycles, Vec::new()),
                    Comp::Select(s) => ("select", s.cycles, Vec::new()),
                    Comp::Enter(e) => ("loop-enter", e.cycles, Vec::new()),
                    Comp::Exit(x) => ("loop-exit", x.cycles, Vec::new()),
                    Comp::Barrier(b) => ("barrier", b.cycles, Vec::new()),
                    Comp::LineBuf(u) => ("line-buffer", u.cycles, Vec::new()),
                };
                CompProfile { label: label.clone(), kind: kind.to_string(), cycles, units }
            })
            .collect();

        let cache_profiles: Vec<CacheProfile> = self
            .cache_labels
            .iter()
            .zip(&self.cache_cycles)
            .zip(&mem.caches)
            .map(|((label, cycles), cache)| CacheProfile {
                label: label.clone(),
                cycles: *cycles,
                stats: cache.stats,
            })
            .collect();

        let fifo_depth: Vec<FifoDepth> = chans
            .iter()
            .enumerate()
            .map(|(i, c)| FifoDepth { chan: i, capacity: c.capacity(), buckets: self.fifo_hist[i] })
            .collect();

        let bottlenecks =
            rank_bottlenecks(comps, &self.comp_labels, &self.cache_labels, &comp_profiles);

        ProfileReport {
            kernel,
            cycles_observed: self.ticks,
            total_cycles,
            comps: comp_profiles,
            caches: cache_profiles,
            fifo_depth,
            samples: self.samples.into_iter().collect(),
            spans: self.spans,
            bottlenecks,
            dropped_spans: self.dropped_spans,
        }
    }
}

/// Ranks dominant stall chains over the machine's static channel wiring —
/// the same topology the deadlock forensics walk, applied to accumulated
/// stall counters instead of a frozen hang.
fn rank_bottlenecks(
    comps: &[Comp],
    comp_labels: &[String],
    cache_labels: &[String],
    profiles: &[CompProfile],
) -> Vec<Bottleneck> {
    let wiring = diag::channel_wiring(comps);
    let name_of = |n: Node| -> String {
        match n {
            Node::Comp(i) => comp_labels.get(i).cloned().unwrap_or_else(|| format!("comp {i}")),
            Node::Cache(i) => cache_labels.get(i).cloned().unwrap_or_else(|| format!("cache {i}")),
            Node::LineBuf(i) => format!("line buffer {i}"),
            Node::Chan(i) => format!("channel {i}"),
            Node::Dispatcher(i) => format!("dispatcher {i}"),
        }
    };
    let consumer_of = |chan: usize| -> String {
        wiring
            .consumer
            .get(&chan)
            .copied()
            .map(name_of)
            .unwrap_or_else(|| "work-item counter (retire)".to_string())
    };

    let mut out = Vec::new();
    let mut push = |victim: String, blocker: String, cycles: u64, reason: &str| {
        if cycles > 0 {
            out.push(Bottleneck { victim, blocker, cycles, reason: reason.to_string() });
        }
    };

    for (ci, comp) in comps.iter().enumerate() {
        let label = &comp_labels[ci];
        match comp {
            Comp::Pipe(p) => {
                // Sink output stalls point at the downstream consumer;
                // memory-unit issue stalls point at the unit's cache/local
                // target (Case-1).
                if let Some(units) = p.unit_profiles() {
                    for u in &units {
                        if u.kind == "sink" {
                            push(
                                label.clone(),
                                consumer_of(p.out_chan.0),
                                u.cycles.output_stall,
                                "output channel full (Case-2)",
                            );
                        }
                    }
                }
                for (target, stalls) in p.mem_unit_issue_stalls() {
                    let blocker = match target {
                        MemTarget::Cache(c) => name_of(Node::Cache(c)),
                        MemTarget::LineBuf(b) => name_of(Node::LineBuf(b)),
                        MemTarget::Local(l) => format!("local block {l}"),
                        MemTarget::Private => "private memory".to_string(),
                    };
                    push(
                        label.clone(),
                        blocker,
                        stalls,
                        "memory unit could not issue (Case-1)",
                    );
                }
            }
            Comp::Branch(b) => {
                push(
                    label.clone(),
                    consumer_of(b.taken.0 .0),
                    profiles[ci].cycles.output_stall,
                    "branch arm or decision fifo full",
                );
            }
            Comp::Select(s) => {
                push(
                    label.clone(),
                    consumer_of(s.out.0),
                    profiles[ci].cycles.output_stall,
                    "merge output full",
                );
                push(
                    label.clone(),
                    "decision fifo (upstream branch)".to_string(),
                    profiles[ci].cycles.issue_stall,
                    "waiting for the ordered work-group at the fifo head",
                );
            }
            Comp::Enter(e) => {
                push(
                    label.clone(),
                    consumer_of(e.out.0),
                    profiles[ci].cycles.output_stall,
                    "loop entry channel full",
                );
                push(
                    label.clone(),
                    "loop occupancy limit (N_max / SWGR)".to_string(),
                    profiles[ci].cycles.issue_stall,
                    "admission refused at capacity",
                );
            }
            Comp::Exit(x) => {
                push(
                    label.clone(),
                    consumer_of(x.out.0),
                    profiles[ci].cycles.output_stall,
                    "post-loop channel full",
                );
            }
            Comp::Barrier(b) => {
                push(
                    label.clone(),
                    consumer_of(b.out.0),
                    profiles[ci].cycles.output_stall,
                    "release blocked by full output",
                );
            }
            // Pure attribution observer: stalls it reports are already
            // charged to the memory units waiting on the line buffer.
            Comp::LineBuf(_) => {}
        }
    }

    out.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.victim.cmp(&b.victim)));
    out.truncate(16);
    out
}

fn esc(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

/// Emits the report's trace events into an already-open Chrome
/// trace-event array, parameterized for merging: `pid` names the
/// process group (each report in a merged timeline gets its own),
/// `ts_offset_us` shifts every timestamp (one simulated cycle maps to
/// one microsecond of trace time), and `first` carries the
/// between-events comma state across emitters sharing one array
/// (`true` iff nothing has been written yet; left `false` afterwards).
///
/// [`write_chrome_trace`] is the single-report wrapper;
/// `soff-obs`-based exporters call this directly to interleave sim
/// profiles with serve-level spans in one timeline.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn chrome_trace_events<W: Write>(
    report: &ProfileReport,
    w: &mut W,
    pid: u64,
    ts_offset_us: u64,
    first: &mut bool,
) -> io::Result<()> {
    let mut emit = |w: &mut W, s: String| -> io::Result<()> {
        if *first {
            *first = false;
        } else {
            write!(w, ",")?;
        }
        write!(w, "{s}")
    };

    emit(
        w,
        format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"SOFF simulator: {}\"}}}}",
            esc(&report.kernel)
        ),
    )?;
    emit(
        w,
        format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"work-groups\"}}}}"
        ),
    )?;
    emit(
        w,
        format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":2,\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"barriers\"}}}}"
        ),
    )?;

    for span in &report.spans {
        let tid = match span.track {
            SpanTrack::WorkGroup => 1,
            SpanTrack::Barrier => 2,
        };
        let dur = span.end.saturating_sub(span.start).max(1);
        emit(
            w,
            format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\
                 \"ts\":{},\"dur\":{dur}}}",
                esc(&span.name),
                span.start + ts_offset_us
            ),
        )?;
    }

    for s in &report.samples {
        let ts = s.cycle + ts_offset_us;
        emit(
            w,
            format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"tokens in flight\",\
                 \"ts\":{ts},\"args\":{{\"tokens\":{}}}}}",
                s.tokens_in_flight
            ),
        )?;
        emit(
            w,
            format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"retired\",\
                 \"ts\":{ts},\"args\":{{\"work-items\":{}}}}}",
                s.retired
            ),
        )?;
        emit(
            w,
            format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"dram busy channels\",\
                 \"ts\":{ts},\"args\":{{\"channels\":{}}}}}",
                s.dram_busy_channels
            ),
        )?;
        for (i, c) in s.caches.iter().enumerate() {
            emit(
                w,
                format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"cache {i} occupancy\",\
                     \"ts\":{ts},\"args\":{{\"inflight\":{},\"latched\":{}}}}}",
                    c.inflight, c.latched
                ),
            )?;
        }
        for (i, h) in s.pipes.iter().enumerate() {
            emit(
                w,
                format!(
                    "{{\"ph\":\"C\",\"pid\":{pid},\"name\":\"pipe {i} work-items\",\
                     \"ts\":{ts},\"args\":{{\"holding\":{h}}}}}"
                ),
            )?;
        }
    }
    Ok(())
}

/// Writes the report as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load). One simulated cycle maps to one microsecond
/// of trace time. Spans become complete (`"X"`) events on named tracks;
/// sampled series become counter (`"C"`) events.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(report: &ProfileReport, w: &mut W) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    chrome_trace_events(report, w, 0, 0, &mut first)?;
    write!(w, "]}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_add() {
        let mut a = CycleBreakdown { busy: 1, issue_stall: 2, output_stall: 3, idle: 4 };
        assert_eq!(a.total(), 10);
        a.add(&CycleBreakdown { busy: 10, issue_stall: 0, output_stall: 0, idle: 0 });
        assert_eq!(a.busy, 11);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn depth_buckets_partition_all_depths() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(2), 2);
        assert_eq!(depth_bucket(3), 3);
        assert_eq!(depth_bucket(4), 4);
        assert_eq!(depth_bucket(7), 4);
        assert_eq!(depth_bucket(8), 5);
        assert_eq!(depth_bucket(1000), 5);
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn trace_of_empty_report_is_valid_json_skeleton() {
        let report = ProfileReport {
            kernel: "k".into(),
            cycles_observed: 0,
            total_cycles: 0,
            comps: Vec::new(),
            caches: Vec::new(),
            fifo_depth: Vec::new(),
            samples: Vec::new(),
            spans: Vec::new(),
            bottlenecks: Vec::new(),
            dropped_spans: 0,
        };
        let mut buf = Vec::new();
        write_chrome_trace(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"traceEvents\":["));
        assert!(s.contains("work-groups"));
    }
}
