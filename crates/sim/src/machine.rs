//! The whole reconfigurable region (§III-B, Fig. 2): work-item
//! dispatcher, replicated datapath instances, memory subsystem, and the
//! work-item counter that triggers the final cache flush.
//!
//! The machine is **preemptible**: [`Machine`] exposes the construction /
//! stepping split behind [`run`], and [`Machine::snapshot`] /
//! [`Machine::restore`] capture and reinstate the *complete*
//! architectural state (channel queues, unit latches, glue state, MSHRs,
//! cache arrays, barrier buffers, work-group accounting, fault-plan
//! cursor, watchdog timers, profiler counters, and global memory).
//! Restore-then-run is bit-identical to an uninterrupted run under both
//! schedulers — the checkpoint differential tests pin that down.

use crate::channel::{ChanId, Channel};
use crate::compiled;
use crate::diag::{self, DeadlockReport};
use crate::fault::{self, FaultPlan};
use crate::glue::{BarrierUnit, Branch, DecisionFifo, LoopEnter, LoopExit, Select};
use crate::launch::LaunchCtx;
use crate::memsys::{CachePlan, MemTarget, MemorySystem};
use crate::profile::{self, CycleBreakdown, ProfileConfig, ProfileReport, Profiler};
use crate::tickvm::TickProgram;
use crate::token::{edge_mapping, Mapping, Token};
use crate::units::{LineBufUnit, PipelineSim};
use soff_datapath::{Datapath, PipeNode};
use soff_ir::interp::InterpError;
use soff_ir::ir::{BlockId, InstKind, Kernel, NdRange, ValueId};
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_ir::pointer::{self, Provenance};
use soff_ir::window::{self, SlidingWindow};
use soff_mem::{
    CacheConfig, CacheStats, DramConfig, DramStats, LineBufConfig, LineBufStats, LineBuffer,
    PortId,
};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which main-loop strategy drives the machine.
///
/// All schedulers execute the *same* per-cycle semantics and produce
/// bit-identical [`SimResult`]s (cycle counts, per-cache statistics,
/// memory contents, error reports). `EventDriven` and `Compiled` merely
/// skip work they can prove is a no-op: component ticks whose handshakes
/// cannot fire, and whole stretches of cycles where the entire machine
/// is idle waiting on a scheduled memory event (which they fast-forward
/// across, replaying the stall counters in closed form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Tick every component every cycle — the reference model.
    Dense,
    /// Active-set scheduling with quiescent-gap fast-forward.
    ///
    /// Falls back to dense stepping while profiling is enabled: the
    /// profiler observes the machine once per simulated cycle by design,
    /// so there are no skippable cycles to exploit.
    #[default]
    EventDriven,
    /// Lowers the component graph once into a flat tick program
    /// ([`crate::tickvm::TickProgram`]) and dispatches it directly
    /// ([`crate::compiled`]): same skip conditions as `EventDriven`, but
    /// decided from pre-resolved operand indices and a hot-state mirror
    /// instead of re-derived from the component graph every cycle.
    ///
    /// Like `EventDriven`, degenerates to dense stepping while profiling
    /// is enabled. Snapshot fingerprints exclude the scheduler knob, so
    /// a snapshot taken under any scheduler restores under this one (and
    /// vice versa) and continues bit-identically.
    Compiled,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cache geometry/timing (per cache instance).
    pub cache: CacheConfig,
    /// External memory timing.
    pub dram: DramConfig,
    /// Number of datapath instances (from the resource model).
    pub num_instances: u32,
    /// Hard cycle budget.
    pub max_cycles: u64,
    /// Cycles without progress before reporting a deadlock. `0` (the
    /// default) derives the window from the machine itself — see
    /// [`crate::diag::derived_deadlock_window`] for the formula.
    pub deadlock_window: u64,
    /// Cycles without a single work-item retiring before reporting a
    /// livelock, even though tokens are still moving (an infinite loop
    /// looks like this). `0` (the default) = 64× the deadlock window.
    pub livelock_window: u64,
    /// Deterministic fault-injection schedule (empty = no faults).
    pub faults: FaultPlan,
    /// Promote the machine's internal debug assertions (unit capacity
    /// `≤ L_F + 1`, loop occupancy `≤ N_max`, work-group order at
    /// barriers) to structured [`SimError::InvariantViolation`] returns,
    /// checked every cycle. Off by default: the checks cost time and the
    /// invariants hold by construction in a fault-free machine.
    pub check_invariants: bool,
    /// Ablation: collapse all global accesses into one shared cache
    /// instead of one per (buffer × datapath) (§V-A).
    pub force_shared_cache: bool,
    /// Lower detected sliding-window read groups onto shift-register
    /// line buffers instead of cache ports (on by default). Results are
    /// bit-identical to the cache path in values — only cycles and
    /// memory-traffic statistics change. Ignored (no windows are lowered)
    /// when [`SimConfig::force_shared_cache`] is set or the kernel forces
    /// a shared cache (atomics / unattributable pointers).
    pub line_buffer: bool,
    /// Cycle-attribution profiling (`None` = off). When off, the per-unit
    /// counter vectors are never allocated and the per-cycle observation
    /// pass is skipped; simulated cycle counts are bit-identical either
    /// way (the profiler only observes).
    pub profile: Option<ProfileConfig>,
    /// Main-loop strategy (see [`Scheduler`]); results are bit-identical
    /// either way.
    pub scheduler: Scheduler,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache: CacheConfig::default(),
            dram: DramConfig::default(),
            num_instances: 1,
            max_cycles: 2_000_000_000,
            deadlock_window: 0,
            livelock_window: 0,
            faults: FaultPlan::default(),
            check_invariants: false,
            force_shared_cache: false,
            line_buffer: true,
            profile: None,
            scheduler: Scheduler::default(),
        }
    }
}

/// A cooperative cancellation handle: cloneable, thread-safe, one-way.
///
/// The owner keeps one clone and hands another to
/// [`RunControl::cancel`]; calling [`CancelToken::cancel`] makes the
/// machine return [`SimError::Cancelled`] (with a resumable snapshot) at
/// the next poll point. Cancellation is level-triggered and permanent:
/// once set, every run observing the token stops.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-run budgets and cancellation, checked inside both scheduler
/// loops. The default is unlimited (exactly the historical behaviour of
/// [`run`]).
///
/// Cycle deadlines are *deterministic*: the run stops before executing
/// the deadline cycle, so two runs with the same deadline stop at the
/// same machine state. Wall budgets and cancellation are polled every
/// [`RunControl::POLL_CYCLES`] simulated cycles and therefore stop at a
/// run-dependent cycle — which is harmless, because the snapshot carried
/// by the error resumes bit-identically from *any* cut point.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cooperative cancellation (`None` = not cancellable).
    pub cancel: Option<CancelToken>,
    /// Absolute simulated-cycle deadline: the run returns
    /// [`SimError::DeadlineExceeded`] instead of executing this cycle.
    pub cycle_deadline: Option<u64>,
    /// Wall-clock budget for this `run_with` call.
    pub wall_budget: Option<Duration>,
}

impl RunControl {
    /// How often (in simulated cycles) the wall clock and the cancel
    /// token are polled.
    pub const POLL_CYCLES: u64 = 1024;

    /// No budgets, no cancellation — the historical [`run`] behaviour.
    pub fn unlimited() -> RunControl {
        RunControl::default()
    }
}

/// An invalid simulator configuration, rejected before the clock starts.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The cache configuration describes an unbuildable geometry.
    Cache(soff_mem::CacheConfigError),
    /// A fault in [`SimConfig::faults`] targets a component the machine
    /// does not have (checked against the *actual* channel/cache counts
    /// at config time, instead of silently wrapping the index).
    Fault {
        /// Index of the offending fault within the plan.
        index: usize,
        /// What was out of range.
        what: String,
    },
    /// A snapshot was restored into a machine with a different identity
    /// (different kernel, geometry, fault plan, or configuration).
    SnapshotMismatch {
        /// Human-readable mismatch description.
        what: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Cache(e) => write!(f, "{e}"),
            ConfigError::Fault { index, what } => {
                write!(f, "fault {index} targets a missing component: {what}")
            }
            ConfigError::SnapshotMismatch { what } => {
                write!(f, "snapshot does not match this machine: {what}")
            }
        }
    }
}

impl From<soff_mem::CacheConfigError> for ConfigError {
    fn from(e: soff_mem::CacheConfigError) -> Self {
        ConfigError::Cache(e)
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A watchdog fired: no progress (or no retirement) for the
    /// configured window. The attached forensic report classifies the
    /// hang (cyclic wait / livelock / starvation / token loss) and names
    /// the culprit components.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Structured forensics built from the frozen machine state.
        report: Box<DeadlockReport>,
    },
    /// The cycle budget ran out.
    Timeout {
        /// The configured budget.
        max_cycles: u64,
        /// The cycle at which the run was cut off (always equals
        /// `max_cycles`: the budget counts simulated cycles, so the run
        /// stops *before* executing cycle `max_cycles`).
        cycle: u64,
    },
    /// The configuration describes an unbuildable machine (bad cache
    /// geometry, out-of-range fault target, mismatched snapshot).
    Config(ConfigError),
    /// An internal machine invariant broke (only reported with
    /// [`SimConfig::check_invariants`], or on work-item over-retirement,
    /// which is always checked).
    InvariantViolation {
        /// Cycle of the violation.
        cycle: u64,
        /// Which invariant, and where.
        what: String,
    },
    /// Bad launch arguments.
    Args(InterpError),
    /// The run was cancelled via [`RunControl::cancel`]. Not a terminal
    /// failure: the snapshot resumes the run bit-identically.
    Cancelled {
        /// Cycle at which the run stopped (= the snapshot's cycle).
        cycle: u64,
        /// Resumable checkpoint of the full architectural state.
        snapshot: Box<Snapshot>,
    },
    /// A [`RunControl`] deadline (cycle or wall) expired. Not a terminal
    /// failure: the snapshot resumes the run bit-identically.
    DeadlineExceeded {
        /// Cycle at which the run stopped (= the snapshot's cycle).
        cycle: u64,
        /// Resumable checkpoint of the full architectural state.
        snapshot: Box<Snapshot>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, report } => {
                write!(f, "datapath made no progress after cycle {cycle}: {}", report.summary())
            }
            SimError::Timeout { max_cycles, cycle } => {
                write!(f, "cycle budget of {max_cycles} exhausted at cycle {cycle}")
            }
            SimError::Config(e) => write!(f, "invalid simulator configuration: {e}"),
            SimError::InvariantViolation { cycle, what } => {
                write!(f, "machine invariant violated at cycle {cycle}: {what}")
            }
            SimError::Args(e) => write!(f, "{e}"),
            SimError::Cancelled { cycle, .. } => {
                write!(f, "run cancelled at cycle {cycle} (resumable snapshot attached)")
            }
            SimError::DeadlineExceeded { cycle, .. } => {
                write!(f, "run deadline reached at cycle {cycle} (resumable snapshot attached)")
            }
        }
    }
}

impl Error for SimError {}

impl From<InterpError> for SimError {
    fn from(e: InterpError) -> Self {
        SimError::Args(e)
    }
}

/// Result of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total cycles including the final cache flush.
    pub cycles: u64,
    /// Cycles until the last work-item retired.
    pub compute_cycles: u64,
    /// Work-items executed.
    pub retired: u64,
    /// Aggregated cache statistics.
    pub cache: CacheStats,
    /// Per-cache statistics, indexed like the machine's cache array
    /// (buffer-group-major, instance-minor; see
    /// [`crate::memsys::CachePlan::cache_index`]). Sums to `cache`.
    pub per_cache: Vec<CacheStats>,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Datapath instances used.
    pub num_instances: u32,
    /// Cycles any functional unit's output was blocked by a full channel
    /// (Case-2 stalls, §IV-C).
    pub output_stalls: u64,
    /// Cycles memory units could not issue (Case-1 stalls: the unit was
    /// holding `L_F + 1` work-items, or its cache port was busy).
    pub issue_stalls: u64,
    /// Aggregated line-buffer statistics (all zero when no sliding
    /// window was lowered).
    pub line_buf: LineBufStats,
    /// Per-line-buffer statistics, indexed like the machine's line-buffer
    /// array (window-major: `window * num_instances + instance`). Sums to
    /// `line_buf`.
    pub per_line_buf: Vec<LineBufStats>,
    /// Full cycle-attribution profile (only when [`SimConfig::profile`]
    /// was set).
    pub profile: Option<Box<ProfileReport>>,
}

#[derive(Clone)]
pub(crate) enum Comp {
    Pipe(PipelineSim),
    Branch(Branch),
    Select(Select),
    Enter(LoopEnter),
    Exit(LoopExit),
    Barrier(BarrierUnit),
    LineBuf(LineBufUnit),
}

#[derive(Clone)]
struct Dispatcher {
    entry: ChanId,
    retire: ChanId,
    /// Current work-group being streamed: (serial, next local index).
    cur: Option<(u64, u64)>,
    /// In-flight work-groups → remaining work-items.
    active: HashMap<u32, u64>,
}

/// The complete mutable state of a machine: everything the clock loop
/// writes. [`Machine::snapshot`] deep-copies this struct (construction
/// from `(kernel, datapath, config, launch)` is deterministic, so the
/// static scaffolding — channel topology, unit wiring, port assignments —
/// never needs to be serialized; rebuilding it reproduces it exactly).
#[derive(Clone)]
struct MachineState {
    chans: Vec<Channel<Token>>,
    comps: Vec<Comp>,
    fifos: Vec<DecisionFifo>,
    counters: Vec<u64>,
    dispatchers: Vec<Dispatcher>,
    mem: MemorySystem,
    profiler: Option<Profiler>,
    /// One-shot fault cursor (parallel to the plan's fault list).
    faults_fired: Vec<bool>,
    next_wg: u64,
    retired: u64,
    now: u64,
    last_metric: u64,
    last_progress: u64,
    last_retired: u64,
    last_retire_progress: u64,
}

/// A resumable checkpoint of a [`Machine`] plus the global memory it was
/// mutating: channels, unit latches, glue, MSHRs, caches, barrier and
/// work-group state, fault-plan cursor, watchdog timers, profiler
/// counters, and a full copy of global memory.
///
/// Restoring a snapshot into a machine built from the same kernel,
/// datapath, launch, and configuration (checked via a structural
/// fingerprint) and running to completion is bit-identical to the
/// uninterrupted run — same [`SimResult`], same per-cache statistics,
/// same forensics, same profile, same memory bytes.
#[derive(Clone)]
pub struct Snapshot {
    fingerprint: u64,
    st: MachineState,
    gm: GlobalMemory,
}

impl Snapshot {
    /// The simulated cycle the snapshot was taken at (the next cycle to
    /// execute after a restore).
    pub fn cycle(&self) -> u64 {
        self.st.now
    }

    /// Work-items retired at the snapshot point.
    pub fn retired(&self) -> u64 {
        self.st.retired
    }
}

/// Snapshots compare by identity (machine fingerprint + clock position +
/// dispatch/retire progress), not by deep state: two snapshots of the
/// same machine at the same cycle are interchangeable because the cycle
/// function is deterministic.
impl PartialEq for Snapshot {
    fn eq(&self, other: &Snapshot) -> bool {
        self.fingerprint == other.fingerprint
            && self.st.now == other.st.now
            && self.st.retired == other.st.retired
            && self.st.next_wg == other.st.next_wg
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("cycle", &self.st.now)
            .field("retired", &self.st.retired)
            .field("next_wg", &self.st.next_wg)
            .finish_non_exhaustive()
    }
}

/// FNV-1a over a byte string (the machine identity fingerprint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `kernel`'s datapath `dp` over `nd` against `gm` to completion
/// with no budgets and no cancellation.
///
/// # Errors
///
/// See [`SimError`].
pub fn run(
    kernel: &Kernel,
    dp: &Datapath,
    cfg: &SimConfig,
    nd: NdRange,
    args: &[ArgValue],
    gm: &mut GlobalMemory,
) -> Result<SimResult, SimError> {
    Machine::new(kernel, dp, cfg, nd, args)?.run(gm)
}

/// A built, steppable machine: the construction/execution split behind
/// [`run`]. Use it directly to checkpoint ([`Machine::snapshot`]),
/// resume ([`Machine::restore`]), or run under budgets
/// ([`Machine::run_with`]).
pub struct Machine<'a> {
    kernel: &'a Kernel,
    dp: &'a Datapath,
    cfg: SimConfig,
    launch: LaunchCtx,
    /// Human-readable name per component (parallel to `st.comps`).
    metas: Vec<String>,
    total: u64,
    num_wgs: u64,
    wg_size: u64,
    gate_wgs: bool,
    deadlock_window: u64,
    livelock_window: u64,
    /// Event-driven stepping enabled (scheduler = EventDriven and the
    /// profiler is off).
    ed: bool,
    /// Quiescent-gap fast-forward enabled (any skipping scheduler —
    /// EventDriven or Compiled — with the profiler off).
    ff: bool,
    /// The lowered tick program (scheduler = Compiled). Static
    /// scaffolding plus a dynamic hot-state mirror, so it lives outside
    /// [`MachineState`]; [`Machine::restore`] resyncs the mirror.
    prog: Option<TickProgram>,
    fingerprint: u64,
    st: MachineState,
}

impl<'a> Machine<'a> {
    /// Builds the machine for one launch, validating the configuration
    /// (cache geometry, launch geometry, fault-plan component targets).
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] / [`SimError::Args`] on invalid
    /// configuration or launch.
    pub fn new(
        kernel: &'a Kernel,
        dp: &'a Datapath,
        cfg: &SimConfig,
        nd: NdRange,
        args: &[ArgValue],
    ) -> Result<Machine<'a>, SimError> {
        cfg.cache.validate().map_err(|e| SimError::Config(e.into()))?;
        // Work-item and work-group serials are carried in 32-bit token
        // fields; a launch that cannot be represented must be rejected up
        // front instead of silently truncating ids (which would alias
        // distinct work-items onto the same serial).
        let total_wi = nd.total_work_items();
        if total_wi == 0 || nd.work_group_size() == 0 {
            return Err(SimError::Args(InterpError::BadArguments(
                "launch geometry has zero work-items or a zero work-group size".into(),
            )));
        }
        if total_wi > 1 << 32 {
            return Err(SimError::Args(InterpError::BadArguments(format!(
                "launch of {total_wi} work-items exceeds the 2^32 work-item id space"
            ))));
        }
        let launch = LaunchCtx::bind(kernel, nd, args)?;
        let pa = pointer::analyze(kernel);
        let mut plan = CachePlan::plan(kernel, &pa);
        if cfg.force_shared_cache && plan.num_groups > 0 {
            for g in plan.group_of_value.iter_mut().flatten() {
                *g = 0;
            }
            plan.num_groups = 1;
            plan.shared = true;
        }
        let n_inst = cfg.num_instances.max(1) as usize;
        let mut mem =
            MemorySystem::build(kernel, dp, &plan, n_inst, cfg.cache, cfg.dram, &launch);

        // Sliding-window lowering (§13 of DESIGN.md): detected affine
        // window groups whose launch-time span fits the shift register are
        // served by line buffers instead of cache ports. Shared-cache
        // machines keep every access on the caches — a window group there
        // would split the coherence point the sharing exists for.
        let windows: Vec<SlidingWindow> =
            if cfg.line_buffer && !cfg.force_shared_cache && !plan.shared {
                window::detect(kernel)
                    .into_iter()
                    .filter(|w| {
                        w.span_bytes(kernel, &launch.params) <= window::DEFAULT_SPAN_CAP
                    })
                    .collect()
            } else {
                Vec::new()
            };
        for w in &windows {
            // The window's buffer base tells the unit its streamable
            // extent; requests outside it are boundary taps.
            let base = launch.params[w.param];
            for _ in 0..n_inst {
                mem.line_bufs.push(LineBuffer::new(LineBufConfig::default(), base));
            }
        }
        let mut window_of_value: HashMap<ValueId, usize> = HashMap::new();
        for (wi, w) in windows.iter().enumerate() {
            for l in &w.loads {
                window_of_value.insert(l.value, wi);
            }
        }

        let mut b = Builder {
            k: kernel,
            dp,
            launch: &launch,
            plan: &plan,
            pa: &pa,
            mem: &mut mem,
            chans: Vec::new(),
            comps: Vec::new(),
            metas: Vec::new(),
            fifos: Vec::new(),
            counters: Vec::new(),
            local_next_port: vec![0; kernel.local_vars.len() * n_inst],
            inst: 0,
            n_inst,
            nvars: kernel.local_vars.len(),
            wg_size: launch.wg_size(),
            profile: cfg.profile.is_some(),
            window_of_value: &window_of_value,
        };

        let root = dp.root.clone();
        let mut dispatchers = Vec::with_capacity(n_inst);
        for inst in 0..n_inst {
            b.inst = inst;
            let entry = b.new_chan(2);
            let retire = b.new_chan(4);
            debug_assert!(
                b.live_in_sig(dp.root_entry_block()).is_empty(),
                "entry block must have an empty live-in signature"
            );
            b.build_node(&root, entry, retire, None);
            dispatchers.push(Dispatcher { entry, retire, cur: None, active: HashMap::new() });
        }
        // One observational component per line buffer, after all instances
        // (indices into `mem.line_bufs`, window-major like the array).
        for w in 0..windows.len() {
            for inst in 0..n_inst {
                b.push_comp(
                    Comp::LineBuf(LineBufUnit {
                        lb: w * n_inst + inst,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("line buffer {w} (inst {inst})"),
                );
            }
        }

        let Builder { chans, comps, fifos, counters, metas, .. } = b;

        // Config-time fault validation: every fault must target a
        // component this machine actually has (see `FaultPlan::validate`).
        cfg.faults
            .validate(chans.len(), mem.caches.len(), mem.line_bufs.len())
            .map_err(SimError::Config)?;

        let profiler = cfg.profile.map(|pcfg| {
            Profiler::new(
                pcfg,
                chans.len(),
                metas.clone(),
                profile::cache_labels(&plan, mem.caches.len()),
            )
        });

        let total = launch.total_work_items();
        let num_wgs = nd.num_groups();
        let wg_size = launch.wg_size();
        let gate_wgs = kernel.uses_local;
        let (deadlock_window, livelock_window) =
            diag::effective_windows(cfg, dp.l_datapath, wg_size);
        // The skipping schedulers degenerate to dense stepping while the
        // profiler is on: it observes the machine once per simulated
        // cycle, so no cycle is skippable.
        let ed = cfg.scheduler == Scheduler::EventDriven && cfg.profile.is_none();
        let ff = cfg.scheduler != Scheduler::Dense && cfg.profile.is_none();
        let prog = (cfg.scheduler == Scheduler::Compiled).then(|| TickProgram::lower(&comps));

        // The identity a snapshot must match to be restorable here:
        // kernel, machine topology, launch shape, and every configuration
        // field that influences state evolution. `max_cycles`,
        // `check_invariants`, and the scheduler are deliberately NOT part
        // of the identity — a resumed run may extend the budget, toggle
        // checking, or switch scheduler without changing the semantics
        // (the schedulers are bit-identical by construction).
        let fingerprint = fnv1a(
            format!(
                "{}|chans={}|comps={}|fifos={}|counters={}|caches={}|linebufs={}|\
                 locals={}|cache={:?}|dram={:?}|inst={}|dw={}|lw={}|faults={:?}|\
                 shared={}|lb={}|profile={:?}|total={}|wgs={}|wg={}",
                kernel.name,
                chans.len(),
                comps.len(),
                fifos.len(),
                counters.len(),
                mem.caches.len(),
                mem.line_bufs.len(),
                mem.locals.len(),
                cfg.cache,
                cfg.dram,
                n_inst,
                deadlock_window,
                livelock_window,
                cfg.faults,
                cfg.force_shared_cache,
                cfg.line_buffer,
                cfg.profile,
                total,
                num_wgs,
                wg_size,
            )
            .as_bytes(),
        );

        let faults_fired = vec![false; cfg.faults.faults.len()];
        Ok(Machine {
            kernel,
            dp,
            cfg: cfg.clone(),
            launch,
            metas,
            total,
            num_wgs,
            wg_size,
            gate_wgs,
            deadlock_window,
            livelock_window,
            ed,
            ff,
            prog,
            fingerprint,
            st: MachineState {
                chans,
                comps,
                fifos,
                counters,
                dispatchers,
                mem,
                profiler,
                faults_fired,
                next_wg: 0,
                retired: 0,
                now: 0,
                last_metric: u64::MAX,
                last_progress: 0,
                last_retired: u64::MAX,
                last_retire_progress: 0,
            },
        })
    }

    /// The simulated cycle the machine is at (the next cycle to execute).
    pub fn cycle(&self) -> u64 {
        self.st.now
    }

    /// Work-items retired so far.
    pub fn retired(&self) -> u64 {
        self.st.retired
    }

    /// Number of inter-component channels (fault plans index into this).
    pub fn num_channels(&self) -> usize {
        self.st.chans.len()
    }

    /// Number of cache instances (fault plans index into this).
    pub fn num_caches(&self) -> usize {
        self.st.mem.caches.len()
    }

    /// Number of line buffers (fault plans index into this). Zero unless
    /// sliding windows were detected, gated, and lowered for this launch.
    pub fn num_line_bufs(&self) -> usize {
        self.st.mem.line_bufs.len()
    }

    /// Captures the complete architectural state plus a copy of `gm`.
    /// `gm` must be the global memory the machine has been running
    /// against (the snapshot stores it so a restore is self-contained).
    pub fn snapshot(&self, gm: &GlobalMemory) -> Snapshot {
        Snapshot { fingerprint: self.fingerprint, st: self.st.clone(), gm: gm.clone() }
    }

    /// Reinstates a snapshot taken from a machine with the same identity
    /// (same kernel, datapath, launch, and configuration), overwriting
    /// this machine's state and `gm` with the checkpointed copies.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] with [`ConfigError::SnapshotMismatch`] when
    /// the snapshot's fingerprint does not match this machine (stale or
    /// foreign snapshot).
    pub fn restore(&mut self, snap: &Snapshot, gm: &mut GlobalMemory) -> Result<(), SimError> {
        if snap.fingerprint != self.fingerprint {
            return Err(SimError::Config(ConfigError::SnapshotMismatch {
                what: format!(
                    "snapshot fingerprint {:016x} != machine fingerprint {:016x} \
                     (kernel `{}`)",
                    snap.fingerprint, self.fingerprint, self.kernel.name
                ),
            }));
        }
        self.st = snap.st.clone();
        *gm = snap.gm.clone();
        // The tick program's ops are pure scaffolding, but its hot-state
        // mirror tracks the components just replaced wholesale — rebuild
        // it (snapshots may also come from a differently-scheduled
        // machine, which has no mirror at all).
        if let Some(prog) = self.prog.as_mut() {
            prog.resync(&self.st.comps);
        }
        Ok(())
    }

    /// Runs to completion with no budgets ([`RunControl::unlimited`]).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&mut self, gm: &mut GlobalMemory) -> Result<SimResult, SimError> {
        self.run_with(gm, &RunControl::unlimited())
    }

    /// Runs the clock until completion, failure, or a [`RunControl`]
    /// stop (cancellation / deadline). A budget stop carries a
    /// [`Snapshot`]; restoring it (into this machine or a freshly built
    /// identical one) and calling `run_with` again continues the run
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_with(
        &mut self,
        gm: &mut GlobalMemory,
        ctl: &RunControl,
    ) -> Result<SimResult, SimError> {
        let started = Instant::now();
        let polled = ctl.cancel.is_some() || ctl.wall_budget.is_some();
        let mut next_poll = self.st.now;
        loop {
            if self.st.now >= self.cfg.max_cycles {
                // The budget counts simulated cycles: cycles
                // 0..max_cycles-1 may execute, cycle max_cycles may not.
                return Err(SimError::Timeout {
                    max_cycles: self.cfg.max_cycles,
                    cycle: self.st.now,
                });
            }
            if let Some(d) = ctl.cycle_deadline {
                // Deterministic cut: stop *before* executing cycle `d`,
                // so the snapshot is the state after cycle d-1 — exactly
                // the state an uninterrupted run passes through.
                if self.st.now >= d {
                    return Err(SimError::DeadlineExceeded {
                        cycle: self.st.now,
                        snapshot: Box::new(self.snapshot(gm)),
                    });
                }
            }
            if polled && self.st.now >= next_poll {
                next_poll = self.st.now + RunControl::POLL_CYCLES;
                if ctl.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(SimError::Cancelled {
                        cycle: self.st.now,
                        snapshot: Box::new(self.snapshot(gm)),
                    });
                }
                if ctl.wall_budget.is_some_and(|b| started.elapsed() >= b) {
                    return Err(SimError::DeadlineExceeded {
                        cycle: self.st.now,
                        snapshot: Box::new(self.snapshot(gm)),
                    });
                }
            }
            match self.step(gm, ctl) {
                Step::Continue => {}
                Step::Done(r) => return Ok(r),
                Step::Fail(e) => return Err(e),
            }
        }
    }

    /// Executes one simulated cycle (or, event-driven, a quiescent gap).
    fn step(&mut self, gm: &mut GlobalMemory, ctl: &RunControl) -> Step {
        let now = self.st.now;
        for c in &mut self.st.chans {
            c.begin_cycle();
        }
        if !self.cfg.faults.is_empty() {
            fault::apply(
                &self.cfg.faults,
                &mut self.st.faults_fired,
                now,
                &mut self.st.chans,
                &mut self.st.mem,
            );
        }
        // Work-item dispatcher (§III-B): one work-item per cycle per
        // datapath, work-groups streamed contiguously.
        for d in &mut self.st.dispatchers {
            if !self.st.chans[d.entry.0].can_push() {
                continue;
            }
            if d.cur.is_none()
                && self.st.next_wg < self.num_wgs
                && (!self.gate_wgs || (d.active.len() as u64) < self.dp.wg_slots)
            {
                d.cur = Some((self.st.next_wg, 0));
                d.active.insert(self.st.next_wg as u32, self.wg_size);
                if let Some(p) = self.st.profiler.as_mut() {
                    p.wg_dispatched(self.st.next_wg as u32, now);
                }
                self.st.next_wg += 1;
            }
            if let Some((wg, lid)) = &mut d.cur {
                let wi = (*wg * self.wg_size + *lid) as u32;
                self.st.chans[d.entry.0]
                    .push(Token { wi, wg: *wg as u32, vals: Box::new([]) });
                *lid += 1;
                if *lid == self.wg_size {
                    d.cur = None;
                }
            }
        }
        // Datapath components. Under event-driven scheduling, a component
        // whose handshakes provably cannot fire this cycle is skipped —
        // its tick would only advance profile-gated attribution counters,
        // and the profiler is off whenever `ed` is set. Skip conditions
        // mirror each component's own gating exactly (note: branch/select
        // pop through `front()`, which ignores jamming, so their skip
        // conditions must too).
        let ed = self.ed;
        let chans = &mut self.st.chans;
        let mut comp_moved = false;
        if let Some(prog) = self.prog.as_mut() {
            // Compiled dispatch: same skip conditions, same component
            // order, decided from the flat op stream (see
            // `compiled::exec_cycle`). Skipping is disabled under
            // profiling, exactly like the interpreted schedulers.
            comp_moved = compiled::exec_cycle(
                prog,
                now,
                chans,
                &mut self.st.comps,
                &mut self.st.fifos,
                &mut self.st.counters,
                &mut self.st.mem,
                &self.launch,
                self.kernel,
                self.cfg.profile.is_none(),
            );
        } else {
            for c in &mut self.st.comps {
                match c {
                    Comp::Pipe(p) => {
                        if ed && p.quiescent(chans) {
                            continue;
                        }
                        comp_moved |=
                            p.tick(now, chans, &mut self.st.mem, &self.launch, self.kernel);
                    }
                    Comp::Branch(x) => {
                        if ed && chans[x.inp.0].front().is_none() {
                            continue;
                        }
                        x.tick(chans, &mut self.st.fifos);
                    }
                    Comp::Select(x) => {
                        if ed
                            && chans[x.from_taken.0].front().is_none()
                            && chans[x.from_not_taken.0].front().is_none()
                        {
                            continue;
                        }
                        x.tick(chans, &mut self.st.fifos);
                    }
                    Comp::Enter(x) => {
                        if ed
                            && (!chans[x.out.0].can_push()
                                || (!chans[x.backedge.0].can_pop()
                                    && chans[x.outside.0].front().is_none()))
                        {
                            continue;
                        }
                        x.tick(chans, &mut self.st.counters);
                    }
                    Comp::Exit(x) => {
                        if ed && (!chans[x.inp.0].can_pop() || !chans[x.out.0].can_push()) {
                            continue;
                        }
                        x.tick(chans, &mut self.st.counters);
                    }
                    Comp::Barrier(x) => {
                        let can_act = chans[x.inp.0].can_pop()
                            || (x.releasing == 0 && x.buf.len() as u64 >= x.wg_size)
                            || (x.releasing > 0 && chans[x.out.0].can_push());
                        if ed && !can_act {
                            continue;
                        }
                        x.tick(chans);
                    }
                    Comp::LineBuf(u) => {
                        // Purely observational (the line buffer itself
                        // ticks inside `MemorySystem::tick`): skipped
                        // wholesale when event-driven — profiling forces
                        // dense stepping, which is when the attribution
                        // matters.
                        if ed {
                            continue;
                        }
                        u.tick(&self.st.mem);
                    }
                }
            }
        }
        // Memory subsystem.
        let mem_moved = self.st.mem.tick(now, gm);
        // Work-item counter (§III-B).
        for d in &mut self.st.dispatchers {
            while self.st.chans[d.retire.0].can_pop() {
                let tok = self.st.chans[d.retire.0].pop();
                self.st.retired += 1;
                self.st.mem.private.release(tok.wi);
                // A retirement for a work-group that already completed
                // means a token was duplicated somewhere; always checked
                // (the global `retired > total` check below cannot see it,
                // because the run would terminate at `total` first).
                match d.active.get_mut(&tok.wg) {
                    Some(rem) => {
                        *rem -= 1;
                        if *rem == 0 {
                            d.active.remove(&tok.wg);
                            if let Some(p) = self.st.profiler.as_mut() {
                                p.wg_completed(tok.wg, now);
                            }
                        }
                    }
                    None => {
                        return Step::Fail(SimError::InvariantViolation {
                            cycle: now,
                            what: format!(
                                "work-item {} of work-group {} retired after the \
                                 group already completed (duplicated token)",
                                tok.wi, tok.wg
                            ),
                        });
                    }
                }
            }
        }
        // Over-retirement means corrupted work-item accounting (reachable
        // only under token-duplication faults); always checked.
        if self.st.retired > self.total {
            return Step::Fail(SimError::InvariantViolation {
                cycle: now,
                what: format!(
                    "{} work-items retired but only {} were launched",
                    self.st.retired, self.total
                ),
            });
        }
        if self.cfg.check_invariants {
            if let Some(what) =
                check_invariants(&self.st.comps, &self.st.counters, &self.metas, &self.st.mem, now)
            {
                return Step::Fail(SimError::InvariantViolation { cycle: now, what });
            }
        }

        if let Some(p) = self.st.profiler.as_mut() {
            p.observe(now, &self.st.chans, &self.st.comps, &self.st.mem, self.st.retired);
        }

        if self.st.retired == self.total {
            let done = self.st.mem.flush_all(now);
            let (output_stalls, issue_stalls) = self
                .st
                .comps
                .iter()
                .filter_map(|c| match c {
                    Comp::Pipe(p) => Some((p.stats.output_stalls, p.stats.issue_stalls)),
                    _ => None,
                })
                .fold((0, 0), |(o, i), (po, pi)| (o + po, i + pi));
            let profile = self.st.profiler.take().map(|p| {
                Box::new(p.finish(
                    self.kernel.name.clone(),
                    &self.st.comps,
                    &self.st.mem,
                    &self.st.chans,
                    now,
                    done,
                ))
            });
            return Step::Done(SimResult {
                cycles: done,
                compute_cycles: now,
                retired: self.st.retired,
                cache: self.st.mem.cache_stats(),
                per_cache: self.st.mem.per_cache_stats(),
                dram: self.st.mem.dram.stats,
                num_instances: self.cfg.num_instances.max(1),
                output_stalls,
                issue_stalls,
                line_buf: self.st.mem.lb_stats(),
                per_line_buf: self.st.mem.per_lb_stats(),
                profile,
            });
        }

        // Progress / deadlock detection. Two watchdogs: the progress
        // watchdog (no token moved anywhere) and the retire-progress
        // watchdog (tokens move but nothing ever finishes — a livelock).
        let metric = self.st.retired
            + self.st.chans.iter().map(|c| c.total).sum::<u64>()
            + self.st.mem.cache_stats().accesses
            + self.st.mem.lb_stats().accesses;
        if metric != self.st.last_metric {
            self.st.last_metric = metric;
            self.st.last_progress = now;
        }
        if self.st.retired != self.st.last_retired {
            self.st.last_retired = self.st.retired;
            self.st.last_retire_progress = now;
        }
        if self.st.mem.has_pending_events(now) {
            // Memory has responses scheduled for future cycles: the
            // machine is slow, not stuck (e.g. a DRAM latency spike).
            self.st.last_progress = now;
        }
        let fired = if now - self.st.last_progress > self.deadlock_window {
            Some((self.st.last_progress, false))
        } else if now - self.st.last_retire_progress > self.livelock_window {
            Some((self.st.last_retire_progress, true))
        } else {
            None
        };
        if let Some((stalled_since, tokens_flowing)) = fired {
            let report = diag::build_report(&diag::MachineView {
                chans: &self.st.chans,
                comps: &self.st.comps,
                metas: &self.metas,
                counters: &self.st.counters,
                fifos: &self.st.fifos,
                mem: &self.st.mem,
                dispatchers: self
                    .st
                    .dispatchers
                    .iter()
                    .map(|d| diag::DispatcherView {
                        entry: d.entry.0,
                        retire: d.retire.0,
                        pending: d.cur.is_some() || self.st.next_wg < self.num_wgs,
                        slots_full: self.gate_wgs
                            && (d.active.len() as u64) >= self.dp.wg_slots,
                        active: {
                            let mut a: Vec<(u32, u64)> =
                                d.active.iter().map(|(&wg, &rem)| (wg, rem)).collect();
                            a.sort_unstable();
                            a
                        },
                    })
                    .collect(),
                retired: self.st.retired,
                total: self.total,
                stalled_since,
                tokens_flowing,
            });
            // The legacy SOFF_SIM_DEBUG dump is now a thin wrapper over
            // the structured report.
            if std::env::var_os("SOFF_SIM_DEBUG").is_some() {
                eprintln!("{report}");
            }
            return Step::Fail(SimError::Deadlock {
                cycle: stalled_since,
                report: Box::new(report),
            });
        }

        // Quiescent-gap fast-forward: if this cycle moved nothing at all —
        // no component fired, no memory delivery or grant, no channel
        // push/pop/fault — then the machine state is a fixpoint of the
        // cycle function and every following cycle repeats it verbatim
        // until the next *scheduled* event. Jump straight to that cycle,
        // replaying in closed form the only per-cycle side effects dense
        // stepping would have produced (stall counters).
        if self.ff && !comp_moved && !mem_moved && !self.st.chans.iter().any(|c| c.touched()) {
            let t_mem = self.st.mem.next_event_cycle(now);
            debug_assert_eq!(
                t_mem.is_some(),
                self.st.mem.has_pending_events(now),
                "in a quiescent machine every queued response is in the future"
            );
            let t_unit = self
                .st
                .comps
                .iter()
                .filter_map(|c| match c {
                    Comp::Pipe(p) => p.next_internal_event(now),
                    _ => None,
                })
                .min();
            // The budget check at the loop top must still fire at
            // `max_cycles`, the cycle deadline at its cut, and the
            // watchdogs at their deadlines; the target cycle is processed
            // normally, so capping the jump at each forcing cycle
            // reproduces dense behaviour exactly.
            let mut target = self.cfg.max_cycles;
            if let Some(d) = ctl.cycle_deadline {
                target = target.min(d);
            }
            if let Some(t) = t_mem {
                target = target.min(t);
            }
            if let Some(t) = t_unit {
                target = target.min(t);
            }
            if t_mem.is_none() {
                // No pending memory events: the progress watchdog stays
                // frozen and fires one cycle past its window.
                target = target.min(
                    self.st
                        .last_progress
                        .saturating_add(self.deadlock_window)
                        .saturating_add(1),
                );
            }
            target = target.min(
                self.st
                    .last_retire_progress
                    .saturating_add(self.livelock_window)
                    .saturating_add(1),
            );
            if let Some(t) =
                fault::next_boundary(&self.cfg.faults, &self.st.faults_fired, now)
            {
                target = target.min(t);
            }
            debug_assert!(target > now, "every forcing event lies strictly in the future");
            let skipped = target - now - 1;
            if skipped > 0 {
                for c in &mut self.st.comps {
                    if let Comp::Pipe(p) = c {
                        if !p.quiescent(&self.st.chans) {
                            p.replay_stalls(
                                now,
                                &mut self.st.chans,
                                &mut self.st.mem,
                                &self.launch,
                                self.kernel,
                                skipped,
                            );
                        }
                    }
                }
                self.st.mem.replay_blocked(now, skipped);
                if t_mem.is_some() {
                    // Dense stepping refreshes the progress watchdog every
                    // cycle while memory has scheduled events.
                    self.st.last_progress = target - 1;
                }
                self.st.now = target;
                return Step::Continue;
            }
        }
        self.st.now = now + 1;
        Step::Continue
    }
}

/// Outcome of one [`Machine::step`].
// `Done` is built exactly once per simulation, so the size gap is moot.
#[allow(clippy::large_enum_variant)]
enum Step {
    Continue,
    Done(SimResult),
    Fail(SimError),
}

/// Per-cycle invariant sweep ([`SimConfig::check_invariants`]): the debug
/// assertions of the fault-free machine, promoted to structured errors.
fn check_invariants(
    comps: &[Comp],
    counters: &[u64],
    metas: &[String],
    mem: &MemorySystem,
    now: u64,
) -> Option<String> {
    for (i, c) in mem.caches.iter().enumerate() {
        if !c.mshr_counter_consistent(now) {
            return Some(format!(
                "cache {i}: incremental MSHR occupancy counter diverged from the \
                 in-flight recount"
            ));
        }
    }
    for (ci, comp) in comps.iter().enumerate() {
        let name = || {
            metas.get(ci).cloned().unwrap_or_else(|| format!("comp {ci}"))
        };
        match comp {
            Comp::Pipe(p) => {
                if let Some(what) = p.check_capacity_invariant() {
                    return Some(format!("{}: {what}", name()));
                }
            }
            Comp::Enter(e) if counters[e.counter] > e.nmax => {
                return Some(format!(
                    "{}: loop occupancy {} exceeds N_max {}",
                    name(),
                    counters[e.counter],
                    e.nmax
                ));
            }
            Comp::Exit(x) if x.underflow => {
                return Some(format!(
                    "{}: work-item left the loop with occupancy already zero \
                     (duplicated token?)",
                    name()
                ));
            }
            Comp::Barrier(b) if b.order_violation => {
                return Some(format!(
                    "{}: barrier release window mixed work-groups \
                     (work-group order violated upstream)",
                    name()
                ));
            }
            _ => {}
        }
    }
    None
}

/// Extension used by the machine: the entry block of the datapath root.
trait RootEntry {
    fn root_entry_block(&self) -> BlockId;
}

impl RootEntry for Datapath {
    fn root_entry_block(&self) -> BlockId {
        entry_of(&self.root, &self.basics)
    }
}

fn entry_of(node: &PipeNode, basics: &[soff_datapath::BasicPipeline]) -> BlockId {
    match node {
        PipeNode::Basic(i) => basics[*i].dfg.block,
        PipeNode::Seq(cs) => cs
            .iter()
            .find(|c| !matches!(c, PipeNode::Barrier { .. }))
            .map(|c| entry_of(c, basics))
            .expect("sequence with only barriers"),
        PipeNode::IfThen { cond, .. } | PipeNode::IfThenElse { cond, .. } => {
            basics[*cond].dfg.block
        }
        PipeNode::While { cond, .. } => basics[*cond].dfg.block,
        PipeNode::SelfLoop { body, .. } => entry_of(body, basics),
        PipeNode::Barrier { .. } => panic!("barrier has no entry block"),
    }
}

struct Builder<'a> {
    k: &'a Kernel,
    dp: &'a Datapath,
    launch: &'a LaunchCtx,
    plan: &'a CachePlan,
    pa: &'a pointer::PointerAnalysis,
    mem: &'a mut MemorySystem,
    chans: Vec<Channel<Token>>,
    comps: Vec<Comp>,
    /// Human-readable name per component (parallel to `comps`), consumed
    /// by the deadlock forensics to name culprits.
    metas: Vec<String>,
    fifos: Vec<DecisionFifo>,
    counters: Vec<u64>,
    local_next_port: Vec<usize>,
    inst: usize,
    n_inst: usize,
    nvars: usize,
    wg_size: u64,
    /// Allocate per-unit cycle-attribution counters in the pipelines.
    profile: bool,
    /// Loads served by a line buffer: value → window index (window-major
    /// indexing into `MemorySystem::line_bufs` with `n_inst`).
    window_of_value: &'a HashMap<ValueId, usize>,
}

/// Capacity of plain inter-pipeline channels (a registered handshake plus
/// one skid slot).
const GLUE_CAP: usize = 2;

impl<'a> Builder<'a> {
    fn new_chan(&mut self, cap: usize) -> ChanId {
        self.chans.push(Channel::new(cap));
        ChanId(self.chans.len() - 1)
    }

    fn push_comp(&mut self, c: Comp, label: String) {
        self.comps.push(c);
        self.metas.push(label);
    }

    fn basic_idx(&self, b: BlockId) -> usize {
        self.dp.basic_of_block[&b]
    }

    fn live_in_sig(&self, b: BlockId) -> &[ValueId] {
        &self.dp.basics[self.basic_idx(b)].dfg.live_in
    }

    fn live_out_sig(&self, b: BlockId) -> &[ValueId] {
        &self.dp.basics[self.basic_idx(b)].dfg.live_out
    }

    /// Mapping for CFG edge `p → s` (`None` = kernel exit: empty token).
    fn map_edge(&self, p: BlockId, s: Option<BlockId>) -> Mapping {
        match s {
            None => Mapping { slots: Vec::new(), identity: false },
            Some(s) => edge_mapping(
                self.k,
                p,
                self.live_out_sig(p),
                s,
                self.live_in_sig(s),
                &self.launch.params,
            ),
        }
    }

    /// Builds the pipeline for block-index `bidx`, with the sink either
    /// mapping directly onto `succ`'s signature or (for condition blocks)
    /// emitting the raw live-out signature for a branch glue.
    fn build_basic(
        &mut self,
        bidx: usize,
        in_chan: ChanId,
        out_chan: ChanId,
        map: Option<Mapping>,
    ) {
        let bp = &self.dp.basics[bidx];
        let block = bp.dfg.block;
        let k = self.k;
        let plan = self.plan;
        let pa = self.pa;
        let inst = self.inst;
        let n_inst = self.n_inst;
        let nvars = self.nvars;
        let profile = self.profile;
        let windows = self.window_of_value;
        let mem = &mut *self.mem;
        let local_next_port = &mut self.local_next_port;
        let pipe = PipelineSim::build(
            k,
            bp,
            in_chan,
            out_chan,
            map,
            &self.launch.params,
            profile,
            |v: ValueId, _class| -> (MemTarget, PortId) {
                let (space, addr) = match &k.instr(v).kind {
                    InstKind::Load { space, addr, .. }
                    | InstKind::Store { space, addr, .. }
                    | InstKind::Atomic { space, addr, .. } => (*space, *addr),
                    other => panic!("memory port for non-memory {other:?}"),
                };
                use soff_frontend::types::AddressSpace;
                match space {
                    AddressSpace::Global | AddressSpace::Constant => {
                        // Window loads route to the group's line buffer;
                        // the group's cache stays built but portless (the
                        // inert cache preserves fault-plan and statistics
                        // indices — synthesis would elide it).
                        if let Some(&w) = windows.get(&v) {
                            let idx = w * n_inst + inst;
                            let port = mem.line_bufs[idx].add_port();
                            (MemTarget::LineBuf(idx), port)
                        } else {
                            let g = plan.group_of_value[v.0 as usize]
                                .expect("global access without cache group");
                            let idx = plan.cache_index(g, inst);
                            let port = mem.caches[idx].add_port();
                            (MemTarget::Cache(idx), port)
                        }
                    }
                    AddressSpace::Local => {
                        let var = match pa.of(addr) {
                            Provenance::Local(var) => var,
                            other => panic!(
                                "local access {v} has imprecise provenance {other:?}; \
                                 SOFF requires each unit to connect to one local block"
                            ),
                        };
                        let idx = inst * nvars + var;
                        let port = PortId(local_next_port[idx]);
                        local_next_port[idx] += 1;
                        (MemTarget::Local(idx), port)
                    }
                    AddressSpace::Private => {
                        let port = mem.add_private_port();
                        (MemTarget::Private, port)
                    }
                }
            },
        );
        let label = format!("pipeline {} (inst {})", block, self.inst);
        self.push_comp(Comp::Pipe(pipe), label);
    }

    /// Builds `node`, consuming tokens from `in_chan` (signature =
    /// live-in of the node's entry block) and producing tokens on
    /// `out_chan` (signature = live-in of `succ`, or empty for the kernel
    /// exit).
    fn build_node(&mut self, node: &PipeNode, in_chan: ChanId, out_chan: ChanId, succ: Option<BlockId>) {
        match node {
            PipeNode::Basic(i) => {
                let b = self.dp.basics[*i].dfg.block;
                let map = self.map_edge(b, succ);
                self.build_basic(*i, in_chan, out_chan, Some(map));
            }
            PipeNode::Seq(children) => self.build_seq(children, in_chan, out_chan, succ),
            PipeNode::Barrier { .. } => {
                // Standalone barrier in a sequence is handled by build_seq.
                unreachable!("barrier outside a sequence")
            }
            PipeNode::IfThen { cond, then, order_fifo } => {
                let b = self.dp.basics[*cond].dfg.block;
                let raw = self.new_chan(GLUE_CAP);
                self.build_basic(*cond, in_chan, raw, None);
                let then_entry = entry_of(then, &self.dp.basics);
                let then_in = self.new_chan(GLUE_CAP);
                let sel_t = self.new_chan(GLUE_CAP);
                let sel_f = self.new_chan(GLUE_CAP);
                let then_cap = then.max_capacity(&self.dp.basics);
                let decisions = if *order_fifo { Some(self.new_fifo(then_cap)) } else { None };
                self.push_comp(
                    Comp::Branch(Branch {
                        inp: raw,
                        cond_idx: self.cond_index(b),
                        taken: (then_in, self.map_edge(b, Some(then_entry))),
                        not_taken: (sel_f, self.map_edge(b, succ)),
                        decisions,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("branch {b} (inst {})", self.inst),
                );
                self.build_node(then, then_in, sel_t, succ);
                self.push_comp(
                    Comp::Select(Select {
                        from_taken: sel_t,
                        from_not_taken: sel_f,
                        out: out_chan,
                        decisions,
                        rr: false,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("select {b} (inst {})", self.inst),
                );
            }
            PipeNode::IfThenElse { cond, then, els, order_fifo } => {
                let b = self.dp.basics[*cond].dfg.block;
                let raw = self.new_chan(GLUE_CAP);
                self.build_basic(*cond, in_chan, raw, None);
                let then_entry = entry_of(then, &self.dp.basics);
                let els_entry = entry_of(els, &self.dp.basics);
                let then_in = self.new_chan(GLUE_CAP);
                let els_in = self.new_chan(GLUE_CAP);
                let sel_t = self.new_chan(GLUE_CAP);
                let sel_f = self.new_chan(GLUE_CAP);
                let cap = then
                    .max_capacity(&self.dp.basics)
                    .max(els.max_capacity(&self.dp.basics));
                let decisions = if *order_fifo { Some(self.new_fifo(cap)) } else { None };
                self.push_comp(
                    Comp::Branch(Branch {
                        inp: raw,
                        cond_idx: self.cond_index(b),
                        taken: (then_in, self.map_edge(b, Some(then_entry))),
                        not_taken: (els_in, self.map_edge(b, Some(els_entry))),
                        decisions,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("branch {b} (inst {})", self.inst),
                );
                self.build_node(then, then_in, sel_t, succ);
                self.build_node(els, els_in, sel_f, succ);
                self.push_comp(
                    Comp::Select(Select {
                        from_taken: sel_t,
                        from_not_taken: sel_f,
                        out: out_chan,
                        decisions,
                        rr: false,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("select {b} (inst {})", self.inst),
                );
            }
            PipeNode::While { cond, body, nmax, backedge_fifo, swgr } => {
                let b = self.dp.basics[*cond].dfg.block;
                let body_entry = entry_of(body, &self.dp.basics);
                let enter_out = self.new_chan(GLUE_CAP);
                let backedge = self.new_chan(*backedge_fifo as usize + 1);
                let counter = self.new_counter();
                let nmax_eff = self.effective_nmax(*nmax, body);
                self.push_comp(
                    Comp::Enter(LoopEnter {
                        outside: in_chan,
                        backedge,
                        out: enter_out,
                        counter,
                        nmax: nmax_eff,
                        swgr: *swgr,
                        cur_wg: 0,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-enter {b} (inst {})", self.inst),
                );
                let raw = self.new_chan(GLUE_CAP);
                self.build_basic(*cond, enter_out, raw, None);
                let body_in = self.new_chan(GLUE_CAP);
                let exit_in = self.new_chan(GLUE_CAP);
                self.push_comp(
                    Comp::Branch(Branch {
                        inp: raw,
                        cond_idx: self.cond_index(b),
                        taken: (body_in, self.map_edge(b, Some(body_entry))),
                        not_taken: (exit_in, self.map_edge(b, succ)),
                        decisions: None,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-branch {b} (inst {})", self.inst),
                );
                self.build_node(body, body_in, backedge, Some(b));
                self.push_comp(
                    Comp::Exit(LoopExit {
                        inp: exit_in,
                        out: out_chan,
                        counter,
                        underflow: false,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-exit {b} (inst {})", self.inst),
                );
            }
            PipeNode::SelfLoop { body, nmax, backedge_fifo, swgr } => {
                let body_entry = entry_of(body, &self.dp.basics);
                let enter_out = self.new_chan(GLUE_CAP);
                let backedge = self.new_chan(*backedge_fifo as usize + 1);
                let counter = self.new_counter();
                let nmax_eff = self.effective_nmax(*nmax, body);
                self.push_comp(
                    Comp::Enter(LoopEnter {
                        outside: in_chan,
                        backedge,
                        out: enter_out,
                        counter,
                        nmax: nmax_eff,
                        swgr: *swgr,
                        cur_wg: 0,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-enter {body_entry} (inst {})", self.inst),
                );
                // The body's last block computes the loop condition; split
                // it off and route its raw output through the back branch.
                let (prefix, last): (&[PipeNode], usize) = match body.as_ref() {
                    PipeNode::Seq(cs) => {
                        let last = match cs.last() {
                            Some(PipeNode::Basic(i)) => *i,
                            other => panic!("self-loop body must end in a block, got {other:?}"),
                        };
                        (&cs[..cs.len() - 1], last)
                    }
                    PipeNode::Basic(i) => (&[], *i),
                    other => panic!("self-loop body must end in a block, got {other:?}"),
                };
                let last_block = self.dp.basics[last].dfg.block;
                let last_in = if prefix.is_empty() {
                    enter_out
                } else {
                    let chan = self.new_chan(GLUE_CAP);
                    self.build_seq_prefix(prefix, enter_out, chan, last_block);
                    chan
                };
                let raw = self.new_chan(GLUE_CAP);
                self.build_basic(last, last_in, raw, None);
                let exit_in = self.new_chan(GLUE_CAP);
                self.push_comp(
                    Comp::Branch(Branch {
                        inp: raw,
                        cond_idx: self.cond_index(last_block),
                        taken: (backedge, self.map_edge(last_block, Some(body_entry))),
                        not_taken: (exit_in, self.map_edge(last_block, succ)),
                        decisions: None,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-branch {last_block} (inst {})", self.inst),
                );
                self.push_comp(
                    Comp::Exit(LoopExit {
                        inp: exit_in,
                        out: out_chan,
                        counter,
                        underflow: false,
                        cycles: CycleBreakdown::default(),
                    }),
                    format!("loop-exit {last_block} (inst {})", self.inst),
                );
            }
        }
    }

    /// Builds the children of a sequence, handling barrier elements.
    fn build_seq(
        &mut self,
        children: &[PipeNode],
        in_chan: ChanId,
        out_chan: ChanId,
        succ: Option<BlockId>,
    ) {
        // Entry block of the element each child hands its tokens to.
        let next_entry: Vec<Option<BlockId>> = (0..children.len())
            .map(|j| {
                children[j + 1..]
                    .iter()
                    .find(|c| !matches!(c, PipeNode::Barrier { .. }))
                    .map(|c| entry_of(c, &self.dp.basics))
                    .or(succ)
            })
            .collect();
        let mut cur_in = in_chan;
        for (i, child) in children.iter().enumerate() {
            let is_last = i + 1 == children.len();
            match child {
                PipeNode::Barrier { .. } => {
                    let out = if is_last { out_chan } else { self.new_chan(GLUE_CAP) };
                    self.push_comp(
                        Comp::Barrier(BarrierUnit {
                            inp: cur_in,
                            out,
                            wg_size: self.wg_size,
                            buf: VecDeque::new(),
                            releasing: 0,
                            order_violation: false,
                            cycles: CycleBreakdown::default(),
                        }),
                        format!("barrier (inst {})", self.inst),
                    );
                    cur_in = out;
                }
                _ => {
                    let child_succ = if is_last { succ } else { next_entry[i] };
                    let out = if is_last { out_chan } else { self.new_chan(GLUE_CAP) };
                    self.build_node(child, cur_in, out, child_succ);
                    cur_in = out;
                }
            }
        }
    }

    /// Builds a self-loop body prefix whose final successor is the loop's
    /// condition-carrying last block.
    fn build_seq_prefix(
        &mut self,
        children: &[PipeNode],
        in_chan: ChanId,
        out_chan: ChanId,
        succ_block: BlockId,
    ) {
        self.build_seq(children, in_chan, out_chan, Some(succ_block));
    }

    /// Index of the branch condition within a block's raw live-out.
    fn cond_index(&self, b: BlockId) -> usize {
        let cond = match &self.k.block(b).term {
            soff_ir::ir::Terminator::CondBr { cond, .. } => *cond,
            other => panic!("{b} used as condition block but ends in {other:?}"),
        };
        self.live_out_sig(b)
            .iter()
            .position(|&v| v == cond)
            .expect("condition missing from live-out")
    }

    fn new_fifo(&mut self, region_capacity: u64) -> usize {
        // Must cover every work-item that can be inside the construct
        // (including barrier storage) or the branch would deadlock.
        let cap = region_capacity + self.wg_size * self.dp.wg_slots + 64;
        self.fifos.push(DecisionFifo { q: VecDeque::new(), cap: cap as usize });
        self.fifos.len() - 1
    }

    fn new_counter(&mut self) -> usize {
        self.counters.push(0);
        self.counters.len() - 1
    }

    /// A loop containing a barrier must be able to hold a whole work-group
    /// (the barrier only releases complete groups).
    fn effective_nmax(&self, nmax: u64, body: &PipeNode) -> u64 {
        if body.contains_barrier() {
            nmax.max(self.wg_size + 8)
        } else {
            nmax
        }
    }
}
