//! Machine-level edge cases: deadlock reporting, cycle budgets,
//! work-group slot gating for local memory, and the dispatcher contract.

use soff_datapath::{Datapath, LatencyModel};
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::machine::{run, SimConfig, SimError};

fn compile(src: &str) -> (soff_ir::ir::Kernel, Datapath) {
    let parsed = soff_frontend::compile(src, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernels.into_iter().next().unwrap();
    let dp = Datapath::build(&kernel, &LatencyModel::default());
    (kernel, dp)
}

#[test]
fn infinite_loop_is_reported_not_hung() {
    let (kernel, dp) = compile(
        "__kernel void spin(__global int* a) {
            while (a[0] == 0) { }
            a[1] = 1;
        }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(16);
    let cfg = SimConfig { deadlock_window: 5_000, max_cycles: 200_000, ..Default::default() };
    let err = run(&kernel, &dp, &cfg, NdRange::dim1(4, 4), &[ArgValue::Buffer(a)], &mut gm)
        .unwrap_err();
    assert!(
        matches!(err, SimError::Deadlock { .. } | SimError::Timeout { .. }),
        "got {err}"
    );
}

#[test]
fn cycle_budget_is_respected() {
    let (kernel, dp) = compile(
        "__kernel void slow(__global float* a, int n) {
            float s = 0.0f;
            for (int i = 0; i < n; i++) s += a[i % 64] / 3.0f;
            a[get_global_id(0) % 64] = s;
        }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    let cfg = SimConfig { max_cycles: 100, ..Default::default() };
    let err = run(
        &kernel,
        &dp,
        &cfg,
        NdRange::dim1(256, 16),
        &[ArgValue::Buffer(a), ArgValue::Scalar(1000)],
        &mut gm,
    )
    .unwrap_err();
    assert_eq!(err, SimError::Timeout { max_cycles: 100, cycle: 100 });
}

#[test]
fn cycle_budget_boundary_is_exact() {
    // A budget of N permits cycles 0..N-1; the run must be cut off
    // *before* executing cycle N (the old check ran one cycle past the
    // budget), and both schedulers must agree on the cutoff cycle.
    let (kernel, dp) = compile(
        "__kernel void spin(__global int* a) {
            while (a[0] == 0) { }
            a[1] = 1;
        }",
    );
    for scheduler in [soff_sim::Scheduler::Dense, soff_sim::Scheduler::EventDriven] {
        let mut gm = GlobalMemory::new();
        let a = gm.alloc(16);
        let cfg = SimConfig {
            max_cycles: 77,
            deadlock_window: 1_000_000,
            livelock_window: 1_000_000,
            scheduler,
            ..Default::default()
        };
        let err = run(&kernel, &dp, &cfg, NdRange::dim1(4, 4), &[ArgValue::Buffer(a)], &mut gm)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::Timeout { max_cycles: 77, cycle: 77 },
            "scheduler {scheduler:?}"
        );
    }
}

#[test]
fn wrong_arguments_are_rejected() {
    let (kernel, dp) = compile("__kernel void k(__global int* a) { a[0] = 1; }");
    let mut gm = GlobalMemory::new();
    let err = run(
        &kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(4, 4),
        &[ArgValue::Scalar(3)], // buffer expected
        &mut gm,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Args(_)));
}

#[test]
fn local_memory_gating_stays_correct_with_many_groups() {
    // More work-groups than local-memory slots: the dispatcher must gate
    // admissions so slot reuse never corrupts another group's data.
    let (kernel, dp) = compile(
        "__kernel void rot(__global int* a) {
            __local int t[4];
            int l = get_local_id(0);
            int g = get_global_id(0);
            t[l] = a[g];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[g] = t[(l + 1) % 4];
        }",
    );
    assert!(kernel.uses_local);
    let groups = 32u64;
    let mut gm = GlobalMemory::new();
    let a = gm.alloc((groups * 4 * 4) as usize);
    for i in 0..groups * 4 {
        gm.buffer_mut(a).write_scalar(i * 4, soff_frontend::types::Scalar::I32, i);
    }
    let res = run(
        &kernel,
        &dp,
        &SimConfig { num_instances: 2, ..Default::default() },
        NdRange::dim1(groups * 4, 4),
        &[ArgValue::Buffer(a)],
        &mut gm,
    )
    .unwrap();
    assert_eq!(res.retired, groups * 4);
    for g in 0..groups {
        for l in 0..4u64 {
            let got = gm.buffer(a).read_scalar((g * 4 + l) * 4, soff_frontend::types::Scalar::I32);
            assert_eq!(got, g * 4 + (l + 1) % 4, "group {g} lane {l}");
        }
    }
}

#[test]
fn single_work_item_ndrange_works() {
    let (kernel, dp) = compile(
        "__kernel void one(__global int* a) { a[0] = 42; }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(4);
    let res = run(
        &kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(1, 1),
        &[ArgValue::Buffer(a)],
        &mut gm,
    )
    .unwrap();
    assert_eq!(res.retired, 1);
    assert_eq!(gm.buffer(a).read_scalar(0, soff_frontend::types::Scalar::I32), 42);
}

#[test]
fn more_instances_than_work_groups_is_fine() {
    let (kernel, dp) = compile(
        "__kernel void k(__global int* a) { a[get_global_id(0)] = (int)get_group_id(0); }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(8 * 4);
    // 8 instances but only 2 work-groups: most instances stay idle.
    let res = run(
        &kernel,
        &dp,
        &SimConfig { num_instances: 8, ..Default::default() },
        NdRange::dim1(8, 4),
        &[ArgValue::Buffer(a)],
        &mut gm,
    )
    .unwrap();
    assert_eq!(res.retired, 8);
    assert_eq!(gm.buffer(a).read_scalar(7 * 4, soff_frontend::types::Scalar::I32), 1);
}

#[test]
fn flush_accounts_for_dirty_lines() {
    let (kernel, dp) = compile(
        "__kernel void fill(__global float* a) { a[get_global_id(0)] = 1.0f; }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(1024 * 4);
    let res = run(
        &kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(1024, 64),
        &[ArgValue::Buffer(a)],
        &mut gm,
    )
    .unwrap();
    // 1024 floats = 64 dirty lines; the flush must write them all back and
    // take time doing it (completion strictly after the last retire).
    assert!(res.cache.writebacks >= 64, "writebacks = {}", res.cache.writebacks);
    assert!(res.cycles > res.compute_cycles, "flush must cost cycles");
}
