//! Dense vs. event-driven vs. compiled scheduler differential suite.
//!
//! The event-driven and compiled schedulers are optimizations, not model
//! changes: for any launch — any kernel shape, geometry, replication,
//! fault plan, and profiling setting — each must produce the
//! *bit-identical* outcome of the dense reference loop: the same
//! `SimResult` (cycle counts, per-cache statistics, stall counters), the
//! same memory contents, and on failing runs the same `SimError`
//! (including the forensic deadlock report and the cycle numbers inside
//! it).

use proptest::prelude::*;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::machine::{run, Machine, Scheduler, SimConfig, SimError, SimResult};
use soff_sim::{FaultPlan, ProfileConfig};

fn compile(src: &str) -> (soff_ir::ir::Kernel, Datapath) {
    let parsed = soff_frontend::compile(src, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernels.into_iter().next().unwrap();
    let dp = Datapath::build(&kernel, &LatencyModel::default());
    (kernel, dp)
}

/// Feature-covering kernel zoo (same shape as the profiler suite): each
/// takes one int buffer (64 × i32) and one scalar `n`.
const KERNELS: &[&str] = &[
    // Straight-line memory traffic.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        a[i % 64] = a[(i + 1) % 64] + n;
    }",
    // Branchy data-dependent loop.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) {
            int x = a[(i + j * 3) % 64];
            if (x > 32) s += x; else s -= x;
        }
        a[i % 64] = s;
    }",
    // Barrier + local memory.
    "__kernel void k(__global int* a, int n) {
        __local int t[8];
        int l = get_local_id(0);
        int g = get_global_id(0);
        t[l] = a[g % 64] + n;
        barrier(CLK_LOCAL_MEM_FENCE);
        a[g % 64] = t[7 - l];
    }",
    // Atomics (forces a shared cache).
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        atomic_add(&a[i % 8], n);
    }",
    // Two-buffer sliding-window stencil: the read neighborhood on `a` is
    // recognized by `soff_ir::window::detect` and lowered onto a line
    // buffer, so this kernel exercises `MemTarget::LineBuf` routing,
    // `Comp::LineBuf` attribution, and the `LineBufJam` fault class in
    // all three schedulers.
    "__kernel void k(__global const int* a, __global int* out, int n) {
        int i = get_global_id(0);
        int x = i % 62 + 1;
        out[x] = a[x - 1] + a[x] * n + a[x + 1];
    }",
];

/// Runs one launch under `scheduler` and returns the full outcome:
/// simulation result plus final memory bytes, or the error.
fn run_one(
    src: &str,
    nd: NdRange,
    instances: u32,
    faults: FaultPlan,
    profile: Option<ProfileConfig>,
    check_invariants: bool,
    scheduler: Scheduler,
) -> Result<(SimResult, Vec<u8>), SimError> {
    let (kernel, dp) = compile(src);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    for i in 0..64u64 {
        gm.buffer_mut(a).write_scalar(i * 4, soff_frontend::types::Scalar::I32, i * 7 % 64);
    }
    // Two-buffer kernels (the sliding-window stencil) take a second,
    // output-only buffer; its bytes join the compared outcome below.
    let mut args: Vec<ArgValue> = vec![ArgValue::Buffer(a)];
    let out_buf = if kernel.params.len() == 3 {
        let o = gm.alloc(64 * 4);
        args.push(ArgValue::Buffer(o));
        Some(o)
    } else {
        None
    };
    args.push(ArgValue::Scalar(5));
    // Fit fault plans (random ones draw indices from a fixed universe) to
    // this machine's real component counts; the machine rejects
    // out-of-range targets at config time.
    let probe_cfg = SimConfig { num_instances: instances, ..SimConfig::default() };
    let probe = Machine::new(&kernel, &dp, &probe_cfg, nd, &args).expect("probe machine");
    let faults =
        faults.normalized(probe.num_channels(), probe.num_caches(), probe.num_line_bufs());
    let cfg = SimConfig {
        num_instances: instances,
        faults,
        profile,
        check_invariants,
        scheduler,
        // Bounded windows so wedged fault plans converge quickly under
        // the dense reference loop too.
        deadlock_window: 2_000,
        livelock_window: 20_000,
        max_cycles: 300_000,
        ..SimConfig::default()
    };
    let res = run(&kernel, &dp, &cfg, nd, &args, &mut gm)?;
    let mut bytes = gm.buffer(a).bytes().to_vec();
    if let Some(o) = out_buf {
        bytes.extend_from_slice(gm.buffer(o).bytes());
    }
    Ok((res, bytes))
}

/// Runs the launch under all three schedulers and asserts bit-identity
/// of the complete outcome.
#[allow(clippy::result_large_err)]
fn assert_schedulers_agree(
    src: &str,
    nd: NdRange,
    instances: u32,
    faults: FaultPlan,
    profile: Option<ProfileConfig>,
    check_invariants: bool,
) -> Result<(SimResult, Vec<u8>), SimError> {
    let dense =
        run_one(src, nd, instances, faults.clone(), profile, check_invariants, Scheduler::Dense);
    let ed = run_one(
        src,
        nd,
        instances,
        faults.clone(),
        profile,
        check_invariants,
        Scheduler::EventDriven,
    );
    assert_eq!(dense, ed, "dense and event-driven outcomes diverged");
    let compiled =
        run_one(src, nd, instances, faults, profile, check_invariants, Scheduler::Compiled);
    assert_eq!(dense, compiled, "dense and compiled outcomes diverged");
    dense
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Fault-free launches: every kernel class, randomized geometry and
    /// replication, invariant checking on (which also cross-checks the
    /// incremental MSHR occupancy counter against the recount).
    #[test]
    fn schedulers_agree_fault_free(
        ki in 0usize..5,
        wgs in 0usize..3,
        groups in 1u64..5,
        instances in 1u32..3,
    ) {
        let wg = [4u64, 8, 16][wgs];
        // The barrier kernel's local array is sized for work-groups of 8.
        let wg = if ki == 2 { 8 } else { wg };
        let nd = NdRange::dim1(groups * wg, wg);
        let out = assert_schedulers_agree(KERNELS[ki], nd, instances, FaultPlan::none(), None, true);
        let (res, _) = out.expect("fault-free launches must complete");
        prop_assert_eq!(res.retired, groups * wg);
    }

    /// Randomized fault plans: outcomes (success, deadlock forensics,
    /// invariant violations, timeouts) must match cycle-for-cycle.
    #[test]
    fn schedulers_agree_under_faults(
        ki in 0usize..5,
        seed in 0u64..1_000_000,
        nfaults in 1usize..5,
        instances in 1u32..3,
    ) {
        let wg = 8u64;
        let nd = NdRange::dim1(4 * wg, wg);
        let faults = FaultPlan::random(seed, nfaults, 5_000);
        let _ = assert_schedulers_agree(KERNELS[ki], nd, instances, faults, None, false);
    }

    /// With profiling on, event-driven scheduling degenerates to dense
    /// stepping; reports and results still must match exactly.
    #[test]
    fn schedulers_agree_with_profiling(
        ki in 0usize..5,
        groups in 1u64..4,
    ) {
        let wg = 8u64;
        let nd = NdRange::dim1(groups * wg, wg);
        let pcfg = ProfileConfig { sample_interval: 16, ..ProfileConfig::default() };
        let out =
            assert_schedulers_agree(KERNELS[ki], nd, 1, FaultPlan::none(), Some(pcfg), false);
        let (res, _) = out.expect("fault-free launches must complete");
        prop_assert!(res.profile.is_some());
    }
}

/// The stencil kernel in the zoo must actually exercise the line-buffer
/// path — otherwise the LineBuf coverage above is vacuous. With the knob
/// on (default) the machine builds one line buffer per instance and every
/// neighborhood read is served as a window hit (the input group's cache
/// sees zero traffic); with the knob off the same launch produces
/// byte-identical buffers through the cache path.
#[test]
fn stencil_kernel_uses_the_line_buffer() {
    let src = KERNELS[4];
    let nd = NdRange::dim1(64, 8);
    let run_mode = |lb: bool| {
        let (kernel, dp) = compile(src);
        let mut gm = GlobalMemory::new();
        let a = gm.alloc(64 * 4);
        for i in 0..64u64 {
            gm.buffer_mut(a).write_scalar(i * 4, soff_frontend::types::Scalar::I32, i * 7 % 64);
        }
        let o = gm.alloc(64 * 4);
        let args = [ArgValue::Buffer(a), ArgValue::Buffer(o), ArgValue::Scalar(5)];
        let cfg = SimConfig { line_buffer: lb, ..SimConfig::default() };
        let res = run(&kernel, &dp, &cfg, nd, &args, &mut gm).expect("fault-free launch");
        (res, gm.buffer(o).bytes().to_vec())
    };
    let (on, out_on) = run_mode(true);
    let (off, out_off) = run_mode(false);
    assert_eq!(out_on, out_off, "line-buffer path changed results");
    assert!(on.line_buf.accesses > 0, "window loads must route to the line buffer");
    // Every served request either hit the window registers on first
    // examination or was counted (once) as a stream underrun.
    assert_eq!(on.line_buf.window_hits + on.line_buf.underruns, on.line_buf.accesses);
    assert!(on.line_buf.window_hits > on.line_buf.underruns, "steady state must be hits");
    assert_eq!(off.line_buf.accesses, 0, "knob off must disable the path");
    assert!(
        on.cache.accesses < off.cache.accesses,
        "line buffer must absorb the neighborhood reads: {} vs {}",
        on.cache.accesses,
        off.cache.accesses
    );
}

#[test]
fn degenerate_cache_geometry_is_a_config_error() {
    let (kernel, dp) = compile(KERNELS[0]);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    let mut cache = soff_mem::CacheConfig::default();
    cache.bytes = (cache.line as u64 / 2).max(1); // smaller than one line
    let cfg = SimConfig { cache, ..SimConfig::default() };
    let err = run(
        &kernel,
        &dp,
        &cfg,
        NdRange::dim1(8, 8),
        &[ArgValue::Buffer(a), ArgValue::Scalar(5)],
        &mut gm,
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::Config(_)),
        "a sub-line cache must be rejected as a config error, got {err}"
    );
}

#[test]
fn oversized_launch_is_rejected_not_truncated() {
    // Work-item serials are 32-bit; a launch beyond 2^32 work-items used
    // to truncate ids (aliasing distinct work-items) instead of erroring.
    // The struct fields are public, so the constructor asserts can be
    // bypassed — the machine must still catch it.
    let (kernel, dp) = compile(KERNELS[0]);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    let nd = NdRange { work_dim: 1, global: [1 << 33, 1, 1], local: [64, 1, 1] };
    let err = run(
        &kernel,
        &dp,
        &SimConfig::default(),
        nd,
        &[ArgValue::Buffer(a), ArgValue::Scalar(5)],
        &mut gm,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Args(_)), "got {err}");
}

#[test]
fn zero_sized_launch_is_rejected() {
    let (kernel, dp) = compile(KERNELS[0]);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    for nd in [
        NdRange { work_dim: 1, global: [0, 1, 1], local: [1, 1, 1] },
        NdRange { work_dim: 1, global: [8, 1, 1], local: [0, 1, 1] },
    ] {
        let err = run(
            &kernel,
            &dp,
            &SimConfig::default(),
            nd,
            &[ArgValue::Buffer(a), ArgValue::Scalar(5)],
            &mut gm,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Args(_)), "got {err}");
    }
}

/// The event-driven scheduler must actually skip work on an idle machine:
/// a single-work-item launch on a long-latency kernel spends most cycles
/// waiting on memory, so both schedulers agreeing (above) plus this
/// completing quickly is the smoke check that fast-forwarding engages.
/// (The wall-clock benchmark in `crates/bench` measures the speedup.)
#[test]
fn event_driven_handles_long_idle_gaps() {
    let src = "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) s += a[(i * 37 + j * 13) % 64];
        a[i % 64] = s;
    }";
    let nd = NdRange::dim1(4, 4);
    let out = assert_schedulers_agree(src, nd, 1, FaultPlan::none(), None, true);
    let (res, _) = out.expect("fault-free launch");
    assert_eq!(res.retired, 4);
}
