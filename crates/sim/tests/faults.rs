//! Fault-injection regression tests: every fault class must be detected
//! within two watchdog windows, classified correctly, and the report must
//! name the culprit. Fault-free runs must never yield a report, and the
//! invariant checker must not perturb results.

use proptest::prelude::*;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::diag::HangKind;
use soff_sim::fault::{Fault, FaultPlan};
use soff_sim::machine::{run, SimConfig, SimError};

fn compile(src: &str) -> (soff_ir::ir::Kernel, Datapath) {
    let parsed = soff_frontend::compile(src, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernels.into_iter().next().unwrap();
    let dp = Datapath::build(&kernel, &LatencyModel::default());
    (kernel, dp)
}

/// A memory-touching kernel that keeps the cache and channels busy.
const MEMCOPY: &str = "__kernel void mc(__global const int* a, __global int* b) {
    int i = get_global_id(0);
    b[i] = a[i] + 1;
}";

const WINDOW: u64 = 2_000;

/// Runs MEMCOPY with `plan`; `budget` bounds detection latency — if the
/// watchdog were slower than that, the run returns `Timeout` and the
/// caller's match fails.
fn run_memcopy(plan: FaultPlan, budget: u64) -> Result<soff_sim::SimResult, SimError> {
    let (kernel, dp) = compile(MEMCOPY);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(256 * 4);
    let b = gm.alloc(256 * 4);
    // Fit the plan to this machine's real component counts (random plans
    // draw indices from a fixed universe; the machine rejects
    // out-of-range targets at config time).
    let probe = soff_sim::Machine::new(
        &kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(256, 8),
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
    )
    .expect("probe machine");
    let plan = plan.normalized(probe.num_channels(), probe.num_caches(), probe.num_line_bufs());
    let cfg = SimConfig {
        deadlock_window: WINDOW,
        livelock_window: 64 * WINDOW,
        max_cycles: budget,
        faults: plan,
        ..SimConfig::default()
    };
    run(
        &kernel,
        &dp,
        &cfg,
        NdRange::dim1(256, 8),
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &mut gm,
    )
}

fn expect_report(r: Result<soff_sim::SimResult, SimError>) -> soff_sim::DeadlockReport {
    match r {
        Err(SimError::Deadlock { report, .. }) => *report,
        other => panic!("expected a deadlock report, got {other:?}"),
    }
}

#[test]
fn stuck_stall_channel_is_starvation_with_named_channel() {
    // Channel 0 is instance 0's dispatcher entry; wedging it stops the
    // whole machine once in-flight work drains.
    let plan = FaultPlan::none().with(Fault::ChannelStuckStall {
        chan: 0,
        from: 10,
        cycles: u64::MAX,
    });
    // Detection must fit in fault time + drain slack + 2 windows.
    let report = expect_report(run_memcopy(plan, 10 + 1_000 + 2 * WINDOW));
    assert_eq!(report.kind, HangKind::Starvation, "report: {report}");
    assert!(
        report.culprits.iter().any(|c| c.contains("channel 0")),
        "culprits must name the wedged channel: {:?}",
        report.culprits
    );
    assert!(
        report.channels.iter().any(|c| c.id == 0 && c.jammed),
        "channel snapshot must show the jam"
    );
}

#[test]
fn cache_port_jam_is_starvation_with_named_cache() {
    let plan = FaultPlan::none().with(Fault::CachePortJam {
        cache: 0,
        from: 100,
        cycles: u64::MAX,
    });
    let report = expect_report(run_memcopy(plan, 100 + 1_000 + 2 * WINDOW));
    assert_eq!(report.kind, HangKind::Starvation, "report: {report}");
    assert!(
        report.culprits.iter().any(|c| c.contains("cache")),
        "culprits must name a cache: {:?}",
        report.culprits
    );
}

#[test]
fn arbiter_withhold_is_starvation_with_named_cache() {
    let plan = FaultPlan::none().with(Fault::ArbiterWithhold {
        cache: 0,
        from: 100,
        cycles: u64::MAX,
    });
    let report = expect_report(run_memcopy(plan, 100 + 1_000 + 2 * WINDOW));
    assert_eq!(report.kind, HangKind::Starvation, "report: {report}");
    assert!(
        report.culprits.iter().any(|c| c.contains("cache")),
        "culprits must name a cache: {:?}",
        report.culprits
    );
}

#[test]
fn token_drop_is_classified_as_token_loss() {
    // Drop the front of the entry channel a few cycles in: one work-item
    // vanishes, the machine drains, and the report must say which
    // work-group is incomplete.
    let plan = FaultPlan::none().with(Fault::TokenDrop { chan: 0, at: 5 });
    let report = expect_report(run_memcopy(plan, 1_000 + 2 * WINDOW));
    assert_eq!(report.kind, HangKind::TokenLoss, "report: {report}");
    assert_eq!(report.retired, report.total - 1);
    assert!(
        report.culprits.iter().any(|c| c.contains("lost")),
        "culprits must describe the loss: {:?}",
        report.culprits
    );
}

#[test]
fn token_duplication_trips_the_always_on_invariant() {
    let plan = FaultPlan::none().with(Fault::TokenDup { chan: 0, at: 5 });
    match run_memcopy(plan, 1_000 + 2 * WINDOW) {
        Err(SimError::InvariantViolation { what, .. }) => {
            assert!(what.contains("retired"), "unexpected invariant: {what}");
        }
        other => panic!("expected an invariant violation, got {other:?}"),
    }
}

#[test]
fn dram_latency_spike_is_tolerated_not_reported() {
    // The spike is far longer than the watchdog window; pending memory
    // events must keep the watchdog quiet and the run must complete with
    // correct results.
    let plan = FaultPlan::none().with(Fault::DramLatencySpike {
        from: 0,
        cycles: 1_000_000,
        extra_latency: 20_000,
    });
    let (kernel, dp) = compile(MEMCOPY);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(256 * 4);
    let b = gm.alloc(256 * 4);
    for i in 0..256u64 {
        gm.buffer_mut(a).write_scalar(i * 4, soff_frontend::types::Scalar::I32, i);
    }
    let cfg = SimConfig {
        deadlock_window: WINDOW,
        faults: plan,
        ..SimConfig::default()
    };
    let res = run(
        &kernel,
        &dp,
        &cfg,
        NdRange::dim1(256, 8),
        &[ArgValue::Buffer(a), ArgValue::Buffer(b)],
        &mut gm,
    )
    .expect("a slow machine is not a hung machine");
    assert_eq!(res.retired, 256);
    for i in 0..256u64 {
        assert_eq!(
            gm.buffer(b).read_scalar(i * 4, soff_frontend::types::Scalar::I32),
            i + 1
        );
    }
}

#[test]
fn infinite_loop_is_classified_as_livelock_naming_the_loop() {
    let (kernel, dp) = compile(
        "__kernel void spin(__global int* a) {
            while (a[0] == 0) { }
            a[1] = 1;
        }",
    );
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(16);
    let cfg = SimConfig {
        deadlock_window: WINDOW,
        livelock_window: 10 * WINDOW,
        max_cycles: 40 * WINDOW,
        ..SimConfig::default()
    };
    let report = expect_report(run(
        &kernel,
        &dp,
        &cfg,
        NdRange::dim1(4, 4),
        &[ArgValue::Buffer(a)],
        &mut gm,
    ));
    assert_eq!(report.kind, HangKind::Livelock, "report: {report}");
    assert!(
        report.culprits.iter().any(|c| c.contains("loop")),
        "culprits must name the live loop: {:?}",
        report.culprits
    );
    assert!(
        report.loops.iter().any(|l| l.occupancy > 0),
        "loop snapshot must show held work-items"
    );
}

#[test]
fn report_renders_all_sections() {
    let plan = FaultPlan::none().with(Fault::ChannelStuckStall {
        chan: 0,
        from: 10,
        cycles: u64::MAX,
    });
    let report = expect_report(run_memcopy(plan, 10 + 1_000 + 2 * WINDOW));
    let text = report.to_string();
    assert!(text.contains("hang forensics"), "{text}");
    assert!(text.contains("classification: starvation"), "{text}");
    assert!(text.contains("culprit:"), "{text}");
    assert!(text.contains("[JAMMED]"), "{text}");
    let summary = report.summary();
    assert!(summary.contains("starvation") && summary.contains("culprit"), "{summary}");
}

#[test]
fn random_fault_plans_always_produce_a_typed_outcome() {
    // Whatever a random plan does — wedge, slow, corrupt, or nothing —
    // the simulator must return a typed result, never panic or hang past
    // its budget.
    for seed in 0..12 {
        let plan = FaultPlan::random(seed, 4, 2_000);
        let _ = run_memcopy(plan, 200_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Fault-free random loop kernels never produce a hang report, and
    /// enabling the invariant checker changes neither the results nor the
    /// cycle count.
    #[test]
    fn fault_free_loops_are_silent_and_checker_is_transparent(
        trip in 1u64..24,
        wgs in 0usize..3,
        stride in 1u64..7,
    ) {
        let wg = [2u64, 4, 8][wgs];
        let src = "__kernel void lp(__global int* a, int n) {
            int i = get_global_id(0);
            int s = 0;
            for (int j = 0; j < n; j++) s += a[(i + j * STRIDE) % 64];
            a[i % 64] = s + i;
        }"
        .replace("STRIDE", &stride.to_string());
        let (kernel, dp) = compile(&src);

        let mut results = Vec::new();
        for check in [false, true] {
            let mut gm = GlobalMemory::new();
            let a = gm.alloc(64 * 4);
            for i in 0..64u64 {
                gm.buffer_mut(a).write_scalar(
                    i * 4,
                    soff_frontend::types::Scalar::I32,
                    i * 3 + 1,
                );
            }
            let cfg = SimConfig { check_invariants: check, ..SimConfig::default() };
            let res = run(
                &kernel,
                &dp,
                &cfg,
                NdRange::dim1(64, wg),
                &[ArgValue::Buffer(a), ArgValue::Scalar(trip)],
                &mut gm,
            );
            let res = match res {
                Ok(r) => r,
                Err(e) => return Err(TestCaseError::fail(format!("fault-free run failed: {e}"))),
            };
            let bytes = gm.buffer(a).bytes().to_vec();
            results.push((res.cycles, res.retired, bytes));
        }
        prop_assert_eq!(&results[0], &results[1]);
    }
}
