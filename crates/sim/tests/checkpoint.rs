//! Checkpoint/restore differential suite.
//!
//! The resilient-execution invariant: interrupting a run at *any* cycle
//! with a deadline, restoring the snapshot into a **freshly built**
//! machine, and running on must produce the bit-identical outcome of the
//! uninterrupted run — the same `SimResult` (cycle counts, per-cache
//! statistics, stall counters, profile), the same memory contents, and on
//! failing runs the same `SimError` (including forensic reports) — under
//! all schedulers, with and without active fault plans, and across
//! repeated interruptions. Snapshot fingerprints exclude the scheduler
//! knob, so a snapshot taken under one backend may be restored under
//! another; the backend-switch tests pin that down.

use proptest::prelude::*;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::machine::{
    CancelToken, ConfigError, Machine, RunControl, Scheduler, SimConfig, SimError, SimResult,
};
use soff_sim::{FaultPlan, ProfileConfig};

fn compile(src: &str) -> (soff_ir::ir::Kernel, Datapath) {
    let parsed = soff_frontend::compile(src, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernels.into_iter().next().unwrap();
    let dp = Datapath::build(&kernel, &LatencyModel::default());
    (kernel, dp)
}

/// Feature-covering kernel zoo (same shape as the scheduler suite): each
/// takes one int buffer (64 × i32) and one scalar `n`.
const KERNELS: &[&str] = &[
    // Straight-line memory traffic.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        a[i % 64] = a[(i + 1) % 64] + n;
    }",
    // Branchy data-dependent loop.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) {
            int x = a[(i + j * 3) % 64];
            if (x > 32) s += x; else s -= x;
        }
        a[i % 64] = s;
    }",
    // Barrier + local memory.
    "__kernel void k(__global int* a, int n) {
        __local int t[8];
        int l = get_local_id(0);
        int g = get_global_id(0);
        t[l] = a[g % 64] + n;
        barrier(CLK_LOCAL_MEM_FENCE);
        a[g % 64] = t[7 - l];
    }",
    // Atomics (forces a shared cache).
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        atomic_add(&a[i % 8], n);
    }",
    // Two-buffer sliding-window stencil: the read neighborhood on `a` is
    // lowered onto a line buffer, so checkpoints must carry shift-register
    // window state, latched requests, and in-flight stream fills.
    "__kernel void k(__global const int* a, __global int* out, int n) {
        int i = get_global_id(0);
        int x = i % 62 + 1;
        out[x] = a[x - 1] + a[x] * n + a[x + 1];
    }",
];

fn fresh_memory() -> (GlobalMemory, u32) {
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    for i in 0..64u64 {
        gm.buffer_mut(a).write_scalar(i * 4, soff_frontend::types::Scalar::I32, i * 7 % 64);
    }
    (gm, a)
}

/// Kernel-aware launch setup: always the seeded 64 × i32 buffer `a`;
/// two-buffer kernels (the sliding-window stencil) get a second output
/// buffer. Returns memory, bound args, and the buffers whose bytes form
/// the compared outcome.
fn fresh_setup(kernel: &soff_ir::ir::Kernel) -> (GlobalMemory, Vec<ArgValue>, Vec<u32>) {
    let (mut gm, a) = fresh_memory();
    let mut args = vec![ArgValue::Buffer(a)];
    let mut bufs = vec![a];
    if kernel.params.len() == 3 {
        let o = gm.alloc(64 * 4);
        args.push(ArgValue::Buffer(o));
        bufs.push(o);
    }
    args.push(ArgValue::Scalar(5));
    (gm, args, bufs)
}

fn outcome_bytes(gm: &GlobalMemory, bufs: &[u32]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for &b in bufs {
        bytes.extend_from_slice(gm.buffer(b).bytes());
    }
    bytes
}

fn config(scheduler: Scheduler, faults: FaultPlan, profile: Option<ProfileConfig>) -> SimConfig {
    SimConfig {
        faults,
        profile,
        scheduler,
        // Bounded windows so wedged fault plans converge quickly.
        deadlock_window: 2_000,
        livelock_window: 20_000,
        max_cycles: 300_000,
        ..SimConfig::default()
    }
}

type Outcome = Result<(SimResult, Vec<u8>), SimError>;

/// Uninterrupted reference run.
fn run_straight(src: &str, nd: NdRange, cfg: &SimConfig) -> Outcome {
    let (kernel, dp) = compile(src);
    let (mut gm, args, bufs) = fresh_setup(&kernel);
    let res = Machine::new(&kernel, &dp, cfg, nd, &args)?.run(&mut gm)?;
    Ok((res, outcome_bytes(&gm, &bufs)))
}

/// The same launch, interrupted at every cycle in `cuts` (ascending): each
/// deadline yields a snapshot, which is restored into a *freshly built*
/// machine before continuing — exercising the full serialize/rebuild path
/// rather than just resuming in place.
fn run_interrupted(src: &str, nd: NdRange, cfg: &SimConfig, cuts: &[u64]) -> Outcome {
    let (kernel, dp) = compile(src);
    let (mut gm, args, bufs) = fresh_setup(&kernel);
    let mut machine = Machine::new(&kernel, &dp, cfg, nd, &args)?;
    for &cut in cuts {
        let ctl = RunControl { cycle_deadline: Some(cut), ..RunControl::default() };
        match machine.run_with(&mut gm, &ctl) {
            Err(SimError::DeadlineExceeded { cycle, snapshot }) => {
                assert!(cycle <= cut, "deadline fired late: {cycle} > {cut}");
                assert_eq!(snapshot.cycle(), cycle);
                let mut rebuilt = Machine::new(&kernel, &dp, cfg, nd, &args)?;
                rebuilt.restore(&snapshot, &mut gm)?;
                assert_eq!(rebuilt.cycle(), cycle);
                machine = rebuilt;
            }
            // The run finished (or failed) before the cut; the reference
            // outcome must match it, so just report it.
            Err(e) => return Err(e),
            Ok(res) => return Ok((res, outcome_bytes(&gm, &bufs))),
        }
    }
    let res = machine.run(&mut gm)?;
    Ok((res, outcome_bytes(&gm, &bufs)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Snapshot at a random cycle + restore into a fresh machine is
    /// bit-identical to the uninterrupted run, under both schedulers.
    #[test]
    fn restore_then_run_is_bit_identical(
        ki in 0usize..5,
        groups in 1u64..5,
        cut in 1u64..4_000,
    ) {
        let nd = NdRange::dim1(groups * 8, 8);
        for sched in [Scheduler::Dense, Scheduler::EventDriven, Scheduler::Compiled] {
            let cfg = config(sched, FaultPlan::none(), None);
            let straight = run_straight(KERNELS[ki], nd, &cfg);
            let resumed = run_interrupted(KERNELS[ki], nd, &cfg, &[cut]);
            prop_assert_eq!(&straight, &resumed, "scheduler {:?}, cut {}", sched, cut);
        }
    }

    /// Same, with an active random fault plan (fitted to the machine):
    /// the fault cursor and wedge windows are part of the checkpoint, so
    /// even failing outcomes (deadlock forensics, invariant violations)
    /// must reproduce exactly.
    #[test]
    fn restore_is_bit_identical_under_faults(
        ki in 0usize..5,
        seed in 0u64..1_000_000,
        nfaults in 1usize..5,
        cut in 1u64..6_000,
    ) {
        let nd = NdRange::dim1(4 * 8, 8);
        let (kernel, dp) = compile(KERNELS[ki]);
        let (gm, args, _) = fresh_setup(&kernel);
        drop(gm);
        let probe = Machine::new(&kernel, &dp, &SimConfig::default(), nd, &args)
            .expect("probe machine");
        let faults = FaultPlan::random(seed, nfaults, 5_000)
            .normalized(probe.num_channels(), probe.num_caches(), probe.num_line_bufs());
        for sched in [Scheduler::Dense, Scheduler::EventDriven, Scheduler::Compiled] {
            let cfg = config(sched, faults.clone(), None);
            let straight = run_straight(KERNELS[ki], nd, &cfg);
            let resumed = run_interrupted(KERNELS[ki], nd, &cfg, &[cut]);
            prop_assert_eq!(&straight, &resumed, "scheduler {:?}, cut {}", sched, cut);
        }
    }

    /// Repeated interruptions (a chain of snapshots, each restored into a
    /// fresh machine) still land on the uninterrupted outcome, including
    /// with the profiler on (whose counters ride in the checkpoint).
    #[test]
    fn repeated_interruptions_compose(
        ki in 0usize..5,
        c1 in 1u64..1_500,
        step in 1u64..1_500,
        profiled in 0usize..2,
    ) {
        let nd = NdRange::dim1(2 * 8, 8);
        let cuts = [c1, c1 + step, c1 + 2 * step];
        let pcfg = (profiled == 1)
            .then(|| ProfileConfig { sample_interval: 16, ..ProfileConfig::default() });
        let cfg = config(Scheduler::Dense, FaultPlan::none(), pcfg);
        let straight = run_straight(KERNELS[ki], nd, &cfg);
        let resumed = run_interrupted(KERNELS[ki], nd, &cfg, &cuts);
        prop_assert_eq!(&straight, &resumed, "cuts {:?}", cuts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Backend switch mid-run: snapshot under one scheduler, restore
    /// under another (notably EventDriven → Compiled, whose hot-state
    /// mirror must be rebuilt from the restored components), finish
    /// bit-identically to the uninterrupted reference.
    #[test]
    fn checkpoint_survives_backend_switch(
        ki in 0usize..5,
        cut in 1u64..3_000,
        pair in 0usize..4,
    ) {
        let nd = NdRange::dim1(2 * 8, 8);
        let (from, to) = [
            (Scheduler::EventDriven, Scheduler::Compiled),
            (Scheduler::Compiled, Scheduler::EventDriven),
            (Scheduler::Dense, Scheduler::Compiled),
            (Scheduler::Compiled, Scheduler::Dense),
        ][pair];
        let reference = run_straight(KERNELS[ki], nd, &config(Scheduler::Dense, FaultPlan::none(), None));

        let (kernel, dp) = compile(KERNELS[ki]);
        let (mut gm, args, bufs) = fresh_setup(&kernel);
        let cfg_from = config(from, FaultPlan::none(), None);
        let mut m = Machine::new(&kernel, &dp, &cfg_from, nd, &args).unwrap();
        let ctl = RunControl { cycle_deadline: Some(cut), ..RunControl::default() };
        let switched: Outcome = match m.run_with(&mut gm, &ctl) {
            Err(SimError::DeadlineExceeded { cycle, snapshot }) => {
                prop_assert!(cycle <= cut);
                let cfg_to = config(to, FaultPlan::none(), None);
                let mut resumed = Machine::new(&kernel, &dp, &cfg_to, nd, &args).unwrap();
                resumed.restore(&snapshot, &mut gm).unwrap();
                resumed.run(&mut gm).map(|r| (r, outcome_bytes(&gm, &bufs)))
            }
            Err(e) => Err(e),
            Ok(res) => Ok((res, outcome_bytes(&gm, &bufs))),
        };
        prop_assert_eq!(&reference, &switched, "{:?} -> {:?} at cut {}", from, to, cut);
    }
}

/// Regression: a cycle deadline landing *inside or exactly on* a
/// quiescent-gap boundary must produce the same slice sequence under
/// every scheduler — each cut lands exactly on its deadline cycle (the
/// fast-forward caps its jump at the deadline rather than overshooting,
/// and a cut at `now + 1` produces a normal one-cycle slice, not a
/// zero-length one), and the number of slices is pinned by the
/// completion cycle alone.
#[test]
fn deadline_slice_counts_pin_quiescent_gap_boundaries() {
    // Long-idle-gap kernel: a single narrow work-group serializes on
    // memory, so the machine spends most cycles quiescent and the
    // fast-forward path dominates under the skipping schedulers.
    let src = "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) s += a[(i * 37 + j * 13) % 64];
        a[i % 64] = s;
    }";
    let nd = NdRange::dim1(4, 4);
    let (kernel, dp) = compile(src);

    // Reference completion cycle (dense, uninterrupted).
    let dense_cfg = config(Scheduler::Dense, FaultPlan::none(), None);
    let reference = run_straight(src, nd, &dense_cfg).expect("fault-free launch");
    let compute_cycles = reference.0.compute_cycles;

    for interval in [1u64, 7, 64, 100] {
        let mut counts = Vec::new();
        for sched in [Scheduler::Dense, Scheduler::EventDriven, Scheduler::Compiled] {
            let cfg = config(sched, FaultPlan::none(), None);
            let (mut gm, a) = fresh_memory();
            let args = [ArgValue::Buffer(a), ArgValue::Scalar(5)];
            let mut machine = Machine::new(&kernel, &dp, &cfg, nd, &args).unwrap();
            let mut cuts = Vec::new();
            let outcome = loop {
                let deadline = (cuts.len() as u64 + 1) * interval;
                let ctl =
                    RunControl { cycle_deadline: Some(deadline), ..RunControl::default() };
                match machine.run_with(&mut gm, &ctl) {
                    Err(SimError::DeadlineExceeded { cycle, snapshot }) => {
                        // Every cut lands exactly on its deadline: no
                        // overshoot (a fast-forward jumping past the cut)
                        // and no zero-length slice (a repeated cut at the
                        // same cycle).
                        assert_eq!(
                            cycle, deadline,
                            "scheduler {sched:?}, interval {interval}: cut drifted"
                        );
                        let mut rebuilt =
                            Machine::new(&kernel, &dp, &cfg, nd, &args).unwrap();
                        rebuilt.restore(&snapshot, &mut gm).unwrap();
                        machine = rebuilt;
                        cuts.push(cycle);
                    }
                    Ok(res) => break res,
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            };
            assert_eq!(outcome, reference.0, "scheduler {sched:?}, interval {interval}");
            // Deadlines are checked before executing their cycle, and the
            // run completes at the end of cycle `compute_cycles`, so the
            // slice count is exactly the number of interval multiples in
            // [1, compute_cycles].
            assert_eq!(
                cuts.len() as u64,
                compute_cycles / interval,
                "scheduler {sched:?}, interval {interval}: wrong slice count"
            );
            counts.push(cuts);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "interval {interval}: schedulers disagreed on cut sequence"
        );
    }
}

#[test]
fn deadline_is_typed_and_deterministic() {
    let (kernel, dp) = compile(KERNELS[1]);
    let nd = NdRange::dim1(16, 8);
    let cfg = config(Scheduler::EventDriven, FaultPlan::none(), None);
    for _ in 0..2 {
        let (mut gm, a) = fresh_memory();
        let args = [ArgValue::Buffer(a), ArgValue::Scalar(5)];
        let mut m = Machine::new(&kernel, &dp, &cfg, nd, &args).unwrap();
        let ctl = RunControl { cycle_deadline: Some(100), ..RunControl::default() };
        match m.run_with(&mut gm, &ctl) {
            Err(SimError::DeadlineExceeded { cycle, snapshot }) => {
                // Cycle deadlines are deterministic cut points: the run
                // stops before executing the deadline cycle even under
                // event-driven fast-forward.
                assert_eq!(cycle, 100);
                assert_eq!(snapshot.cycle(), 100);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}

#[test]
fn cancellation_is_typed_and_resumable() {
    let (kernel, dp) = compile(KERNELS[1]);
    let nd = NdRange::dim1(16, 8);
    let cfg = config(Scheduler::Dense, FaultPlan::none(), None);
    let (mut gm, a) = fresh_memory();
    let args = [ArgValue::Buffer(a), ArgValue::Scalar(5)];
    let mut m = Machine::new(&kernel, &dp, &cfg, nd, &args).unwrap();
    let token = CancelToken::new();
    token.cancel();
    let ctl = RunControl { cancel: Some(token.clone()), ..RunControl::default() };
    let snapshot = match m.run_with(&mut gm, &ctl) {
        Err(SimError::Cancelled { cycle, snapshot }) => {
            assert_eq!(snapshot.cycle(), cycle);
            snapshot
        }
        other => panic!("expected Cancelled, got {other:?}"),
    };
    // Restoring the snapshot and running without the token completes and
    // matches the uninterrupted run.
    let mut resumed = Machine::new(&kernel, &dp, &cfg, nd, &args).unwrap();
    resumed.restore(&snapshot, &mut gm).unwrap();
    let res = resumed.run(&mut gm).unwrap();
    let straight = run_straight(KERNELS[1], nd, &cfg).unwrap();
    assert_eq!(res, straight.0);
    assert_eq!(gm.buffer(a).bytes(), &straight.1[..]);
}

#[test]
fn foreign_snapshot_is_rejected_with_typed_error() {
    let nd = NdRange::dim1(16, 8);
    let cfg = config(Scheduler::Dense, FaultPlan::none(), None);
    let (kernel_a, dp_a) = compile(KERNELS[0]);
    let (kernel_b, dp_b) = compile(KERNELS[2]);
    let (mut gm, a) = fresh_memory();
    let args = [ArgValue::Buffer(a), ArgValue::Scalar(5)];
    let ma = Machine::new(&kernel_a, &dp_a, &cfg, nd, &args).unwrap();
    let snap = ma.snapshot(&gm);
    let mut mb = Machine::new(&kernel_b, &dp_b, &cfg, nd, &args).unwrap();
    match mb.restore(&snap, &mut gm) {
        Err(SimError::Config(ConfigError::SnapshotMismatch { .. })) => {}
        other => panic!("expected SnapshotMismatch, got {other:?}"),
    }
}

#[test]
fn out_of_range_fault_plan_is_a_config_error() {
    let (kernel, dp) = compile(KERNELS[0]);
    let nd = NdRange::dim1(16, 8);
    let (_gm, a) = fresh_memory();
    let args = [ArgValue::Buffer(a), ArgValue::Scalar(5)];
    let cfg = SimConfig {
        faults: FaultPlan::none().with(soff_sim::Fault::ChannelStuckStall {
            chan: 100_000,
            from: 0,
            cycles: 10,
        }),
        ..SimConfig::default()
    };
    match Machine::new(&kernel, &dp, &cfg, nd, &args) {
        Err(SimError::Config(ConfigError::Fault { index: 0, .. })) => {}
        other => panic!("expected a fault config error, got {:?}", other.map(|_| ())),
    }
}
