//! Properties of the cycle-attribution profiler:
//!
//! 1. **Conservation** — for every functional unit, glue component, and
//!    cache, `busy + issue_stall + output_stall + idle` equals the cycles
//!    the profiler observed, across kernels covering branches, loops,
//!    barriers + local memory, and atomics, with randomized launch
//!    geometry.
//! 2. **Determinism** — two profiled runs of the same launch produce
//!    identical reports (every counter, sample, and span).
//! 3. **Transparency** — profiling on vs. off changes neither cycle
//!    counts nor memory contents (the profiler only observes).

use proptest::prelude::*;
use soff_datapath::{Datapath, LatencyModel};
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::machine::{run, SimConfig};
use soff_sim::{ProfileConfig, ProfileReport, SimResult};

fn compile(src: &str) -> (soff_ir::ir::Kernel, Datapath) {
    let parsed = soff_frontend::compile(src, &[]).unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = module.kernels.into_iter().next().unwrap();
    let dp = Datapath::build(&kernel, &LatencyModel::default());
    (kernel, dp)
}

/// Feature-covering kernel zoo. Each takes one int buffer (64 × i32) and
/// one scalar `n`.
const KERNELS: &[&str] = &[
    // Straight-line memory traffic.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        a[i % 64] = a[(i + 1) % 64] + n;
    }",
    // Branchy data-dependent loop.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) {
            int x = a[(i + j * 3) % 64];
            if (x > 32) s += x; else s -= x;
        }
        a[i % 64] = s;
    }",
    // Barrier + local memory.
    "__kernel void k(__global int* a, int n) {
        __local int t[8];
        int l = get_local_id(0);
        int g = get_global_id(0);
        t[l] = a[g % 64] + n;
        barrier(CLK_LOCAL_MEM_FENCE);
        a[g % 64] = t[7 - l];
    }",
    // Atomics.
    "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        atomic_add(&a[i % 8], n);
    }",
];

fn run_kernel(
    src: &str,
    nd: NdRange,
    instances: u32,
    profile: Option<ProfileConfig>,
) -> (SimResult, Vec<u8>) {
    let (kernel, dp) = compile(src);
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(64 * 4);
    for i in 0..64u64 {
        gm.buffer_mut(a)
            .write_scalar(i * 4, soff_frontend::types::Scalar::I32, i * 7 % 64);
    }
    let cfg = SimConfig { num_instances: instances, profile, ..SimConfig::default() };
    let res = run(&kernel, &dp, &cfg, nd, &[ArgValue::Buffer(a), ArgValue::Scalar(5)], &mut gm)
        .expect("profiled kernels are fault-free");
    let bytes = gm.buffer(a).bytes().to_vec();
    (res, bytes)
}

/// Every breakdown in `report` must sum to `cycles_observed`.
fn assert_conservation(report: &ProfileReport) {
    let obs = report.cycles_observed;
    for c in &report.comps {
        if c.units.is_empty() {
            assert_eq!(
                c.cycles.total(),
                obs,
                "{}: {:?} does not sum to observed cycles {obs}",
                c.label,
                c.cycles
            );
        } else {
            for u in &c.units {
                assert_eq!(
                    u.cycles.total(),
                    obs,
                    "{} unit {} ({}): {:?} does not sum to observed cycles {obs}",
                    c.label,
                    u.unit,
                    u.kind,
                    u.cycles
                );
            }
        }
    }
    for c in &report.caches {
        assert_eq!(
            c.cycles.total(),
            obs,
            "{}: {:?} does not sum to observed cycles {obs}",
            c.label,
            c.cycles
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Conservation holds for every unit of every kernel class under
    /// randomized launch geometry and replication.
    #[test]
    fn conservation_holds_for_every_unit(
        ki in 0usize..4,
        wgs in 0usize..3,
        groups in 1u64..5,
        instances in 1u32..3,
    ) {
        let wg = [4u64, 8, 16][wgs];
        // The barrier kernel's local array is sized for work-groups of 8.
        let wg = if ki == 2 { 8 } else { wg };
        let nd = NdRange::dim1(groups * wg, wg);
        let (res, _) = run_kernel(
            KERNELS[ki],
            nd,
            instances,
            Some(ProfileConfig { sample_interval: 16, ..ProfileConfig::default() }),
        );
        let report = res.profile.as_ref().expect("profiling was enabled");
        prop_assert_eq!(report.cycles_observed, res.compute_cycles + 1);
        assert_conservation(report);
    }
}

#[test]
fn profiled_runs_are_deterministic() {
    for src in KERNELS {
        let nd = NdRange::dim1(32, 8);
        let pcfg = Some(ProfileConfig { sample_interval: 8, ..ProfileConfig::default() });
        let (a, abytes) = run_kernel(src, nd, 2, pcfg);
        let (b, bbytes) = run_kernel(src, nd, 2, pcfg);
        assert_eq!(a.profile, b.profile, "profiles of identical runs differ");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(abytes, bbytes);
    }
}

#[test]
fn profiling_is_transparent() {
    for src in KERNELS {
        let nd = NdRange::dim1(32, 8);
        let (off, off_bytes) = run_kernel(src, nd, 2, None);
        let (on, on_bytes) =
            run_kernel(src, nd, 2, Some(ProfileConfig::default()));
        assert!(off.profile.is_none());
        assert!(on.profile.is_some());
        assert_eq!(off.cycles, on.cycles, "profiling changed the cycle count");
        assert_eq!(off.compute_cycles, on.compute_cycles);
        assert_eq!(off.retired, on.retired);
        assert_eq!(off.cache, on.cache);
        assert_eq!(off.per_cache, on.per_cache);
        assert_eq!(off.dram, on.dram);
        assert_eq!(off_bytes, on_bytes, "profiling changed memory contents");
    }
}

#[test]
fn trace_export_contains_spans_and_counters() {
    let nd = NdRange::dim1(64, 8);
    let (res, _) = run_kernel(
        KERNELS[2],
        nd,
        1,
        Some(ProfileConfig { sample_interval: 4, ..ProfileConfig::default() }),
    );
    let report = res.profile.expect("profiling was enabled");
    assert!(!report.spans.is_empty(), "barrier kernel should produce spans");
    assert!(!report.samples.is_empty());
    let mut buf = Vec::new();
    soff_sim::write_chrome_trace(&report, &mut buf).unwrap();
    let s = String::from_utf8(buf).unwrap();
    assert!(s.contains("\"ph\":\"X\""), "trace should contain complete events");
    assert!(s.contains("\"ph\":\"C\""), "trace should contain counter events");
    assert!(s.starts_with('{') && s.ends_with('}'));
}

#[test]
fn bottlenecks_point_at_real_components() {
    // A gather kernel whose memory unit must stall on its cache.
    let src = "__kernel void k(__global int* a, int n) {
        int i = get_global_id(0);
        int s = 0;
        for (int j = 0; j < n; j++) s += a[(i * 37 + j * 13) % 64];
        a[i % 64] = s;
    }";
    let (res, _) = run_kernel(src, NdRange::dim1(64, 16), 1, Some(ProfileConfig::default()));
    let report = res.profile.expect("profiling was enabled");
    for b in &report.bottlenecks {
        assert!(b.cycles > 0);
        assert!(!b.victim.is_empty() && !b.blocker.is_empty() && !b.reason.is_empty());
    }
}
