//! The central correctness property of the simulator: for every kernel,
//! the cycle-level simulation of the synthesized datapath must leave
//! global memory **bit-identical** to the reference interpreter.
//!
//! These tests sweep the feature space of §IV/§V: straight-line code,
//! branches, loops (with break/continue/return), nested loops, barriers,
//! local memory, atomics, private arrays, helper inlining, and multiple
//! datapath instances.

use soff_datapath::{Datapath, LatencyModel};
use soff_ir::interp;
use soff_ir::ir::NdRange;
use soff_ir::mem::{ArgValue, GlobalMemory};
use soff_sim::machine::{run, SimConfig};

/// Compiles a kernel, builds buffers from the spec, runs both the
/// interpreter and the simulator (with `instances` datapaths), and
/// compares every buffer byte-for-byte.
fn check(src: &str, nd: NdRange, instances: u32, buffers: &[Vec<u8>], scalars: &[(usize, u64)]) {
    let parsed = soff_frontend::compile(src, &[]).expect("frontend");
    let module = soff_ir::build::lower(&parsed).expect("lowering");
    let kernel = &module.kernels[0];
    soff_ir::verify::verify(kernel).expect("verifier");

    // Build the argument list: buffers first then scalars at given
    // positions.
    let n_args = kernel.params.len();
    let mut args: Vec<ArgValue> = Vec::with_capacity(n_args);
    let mut gm_i = GlobalMemory::new();
    let mut gm_s = GlobalMemory::new();
    let mut next_buf = 0usize;
    for i in 0..n_args {
        if let Some((_, v)) = scalars.iter().find(|(pos, _)| *pos == i) {
            // `__local` pointer parameters take a size, everything else a
            // scalar value.
            if matches!(kernel.params[i].kind, soff_ir::ir::ParamKind::LocalPointer { .. }) {
                args.push(ArgValue::LocalSize(*v));
            } else {
                args.push(ArgValue::Scalar(*v));
            }
        } else {
            let data = &buffers[next_buf];
            next_buf += 1;
            let a = gm_i.alloc(data.len());
            gm_i.buffer_mut(a).bytes_mut().copy_from_slice(data);
            let b = gm_s.alloc(data.len());
            gm_s.buffer_mut(b).bytes_mut().copy_from_slice(data);
            args.push(ArgValue::Buffer(a));
        }
    }

    interp::run(kernel, &nd, &args, &mut gm_i, interp::DEFAULT_BUDGET).expect("interpreter");

    let dp = Datapath::build(kernel, &LatencyModel::default());
    let cfg = SimConfig { num_instances: instances, ..SimConfig::default() };
    let res = run(kernel, &dp, &cfg, nd, &args, &mut gm_s).expect("simulator");
    assert_eq!(res.retired, nd.total_work_items());

    for b in 0..gm_i.num_buffers() {
        assert_eq!(
            gm_i.buffer(b as u32).bytes(),
            gm_s.buffer(b as u32).bytes(),
            "buffer {b} differs between interpreter and simulator"
        );
    }
}

fn f32s(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn i32s(v: &[i32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[test]
fn vadd_matches() {
    let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..64).map(|i| 2.0 * i as f32).collect();
    check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] + b[i];
        }",
        NdRange::dim1(64, 16),
        1,
        &[f32s(&a), f32s(&b), f32s(&[0.0; 64])],
        &[],
    );
}

#[test]
fn vadd_with_two_instances() {
    let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..64).map(|i| 3.0 * i as f32 - 7.0).collect();
    check(
        "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
            int i = get_global_id(0);
            c[i] = a[i] * b[i] + 1.0f;
        }",
        NdRange::dim1(64, 8),
        4,
        &[f32s(&a), f32s(&b), f32s(&[0.0; 64])],
        &[],
    );
}

#[test]
fn branches_match() {
    let a: Vec<i32> = (0..96).map(|i| (i * 37 % 19) - 9).collect();
    check(
        "__kernel void k(__global int* a) {
            int i = get_global_id(0);
            int v = a[i];
            if (v < 0) v = -v * 2;
            else if (v > 5) v = v - 5;
            a[i] = v;
        }",
        NdRange::dim1(96, 32),
        2,
        &[i32s(&a)],
        &[],
    );
}

#[test]
fn reduction_loop_matches() {
    let m: Vec<f32> = (0..16 * 16).map(|i| ((i * 7 % 13) as f32) * 0.25).collect();
    let v: Vec<f32> = (0..16).map(|i| (i as f32) - 8.0).collect();
    check(
        "__kernel void mv(__global float* m, __global float* v, __global float* o, int n) {
            int r = get_global_id(0);
            float acc = 0.0f;
            for (int j = 0; j < n; j++) acc += m[r * n + j] * v[j];
            o[r] = acc;
        }",
        NdRange::dim1(16, 4),
        1,
        &[f32s(&m), f32s(&v), f32s(&[0.0; 16])],
        &[(3, 16)],
    );
}

#[test]
fn nested_loops_match() {
    check(
        "__kernel void k(__global int* o, int n) {
            int i = get_global_id(0);
            int s = 0;
            for (int a = 0; a < n; a++)
                for (int b = 0; b <= a; b++)
                    s += a * b + i;
            o[i] = s;
        }",
        NdRange::dim1(8, 4),
        1,
        &[i32s(&[0; 8])],
        &[(1, 6)],
    );
}

#[test]
fn break_continue_return_match() {
    // Reads come from a separate read-only buffer: work-items write only
    // their own slot of `o`, so interpreter and simulator orders agree.
    let a: Vec<i32> = (0..32).map(|i| i % 11).collect();
    check(
        "__kernel void k(__global int* a, __global int* o, int n) {
            int i = get_global_id(0);
            int s = 0;
            for (int j = 0; j < n; j++) {
                if (a[(i + j) % 32] == 9) break;
                if (a[(i + j) % 32] % 2 == 0) continue;
                s += a[(i + j) % 32];
                if (s > 20) { o[i] = -1; return; }
            }
            o[i] = s;
        }",
        NdRange::dim1(32, 8),
        2,
        &[i32s(&a), i32s(&[0; 32])],
        &[(2, 20)],
    );
}

#[test]
fn do_while_matches() {
    check(
        "__kernel void k(__global int* o, int n) {
            int i = get_global_id(0);
            int s = 0;
            int j = 0;
            do { s += j * j; j++; } while (j < n);
            o[i] = s + i;
        }",
        NdRange::dim1(16, 4),
        1,
        &[i32s(&[0; 16])],
        &[(1, 5)],
    );
}

#[test]
fn barrier_local_memory_matches() {
    let a: Vec<f32> = (0..64).map(|i| i as f32 * 1.5).collect();
    check(
        "__kernel void rev(__global float* a) {
            __local float t[16];
            int l = get_local_id(0);
            int g = get_global_id(0);
            t[l] = a[g];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[g] = t[15 - l];
        }",
        NdRange::dim1(64, 16),
        2,
        &[f32s(&a)],
        &[],
    );
}

#[test]
fn barrier_in_loop_matches() {
    let a: Vec<f32> = (0..128).map(|i| (i % 17) as f32).collect();
    check(
        "__kernel void scan(__global float* a, int n) {
            __local float t[8];
            int l = get_local_id(0);
            int g = get_group_id(0);
            for (int it = 0; it < n; it++) {
                t[l] = a[g * 8 + l] + (float)it;
                barrier(CLK_LOCAL_MEM_FENCE);
                a[g * 8 + l] = t[7 - l] * 0.5f;
                barrier(CLK_LOCAL_MEM_FENCE);
            }
        }",
        NdRange::dim1(128, 8),
        2,
        &[f32s(&a)],
        &[(1, 3)],
    );
}

#[test]
fn atomics_match() {
    let d: Vec<i32> = (0..128).map(|i| i * 13 % 8).collect();
    check(
        "__kernel void hist(__global int* data, __global int* bins) {
            int i = get_global_id(0);
            atomic_add(&bins[data[i]], 1);
            atomic_max(&bins[8], data[i]);
        }",
        NdRange::dim1(128, 16),
        2,
        &[i32s(&d), i32s(&[0; 9])],
        &[],
    );
}

#[test]
fn private_array_matches() {
    check(
        "__kernel void k(__global int* o) {
            int t[6];
            int i = get_global_id(0);
            for (int j = 0; j < 6; j++) t[j] = j * 3 + i;
            int s = 0;
            for (int j = 0; j < 6; j++) s += t[5 - j] * j;
            o[i] = s;
        }",
        NdRange::dim1(16, 4),
        1,
        &[i32s(&[0; 16])],
        &[],
    );
}

#[test]
fn helper_functions_match() {
    let a: Vec<f32> = (0..32).map(|i| i as f32 - 16.0).collect();
    check(
        "float square(float x) { return x * x; }
         float dist(float x, float y) { return sqrt(square(x) + square(y)); }
         __kernel void k(__global float* a) {
            int i = get_global_id(0);
            a[i] = dist(a[i], 3.0f);
        }",
        NdRange::dim1(32, 8),
        1,
        &[f32s(&a)],
        &[],
    );
}

#[test]
fn two_dimensional_matches() {
    check(
        "__kernel void t(__global int* o) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            int w = get_global_size(0);
            o[y * w + x] = x * 1000 + y;
        }",
        NdRange::dim2([8, 8], [4, 2]),
        2,
        &[i32s(&[0; 64])],
        &[],
    );
}

#[test]
fn select_and_ternary_match() {
    let a: Vec<f32> = (0..48).map(|i| (i as f32) * 0.3 - 7.0).collect();
    check(
        "__kernel void k(__global float* a) {
            int i = get_global_id(0);
            float v = a[i];
            a[i] = v > 0.0f ? v : (v < -3.0f && i % 2 == 0 ? -v : 0.0f);
        }",
        NdRange::dim1(48, 16),
        1,
        &[f32s(&a)],
        &[],
    );
}

#[test]
fn irregular_gather_matches() {
    // Indirect accesses (spmv-style): exercises per-buffer caches with an
    // index stream.
    let idx: Vec<i32> = (0..64).map(|i| (i * 29) % 64).collect();
    let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
    check(
        "__kernel void gather(__global int* idx, __global float* x, __global float* y) {
            int i = get_global_id(0);
            y[i] = x[idx[i]] * 2.0f;
        }",
        NdRange::dim1(64, 16),
        2,
        &[i32s(&idx), f32s(&x), f32s(&[0.0; 64])],
        &[],
    );
}

#[test]
fn local_pointer_argument_matches() {
    let a: Vec<f32> = (0..32).map(|i| i as f32).collect();
    check(
        "__kernel void k(__global float* a, __local float* tmp) {
            int l = get_local_id(0);
            tmp[l] = a[get_global_id(0)] * 2.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            a[get_global_id(0)] = tmp[(l + 3) % 8];
        }",
        NdRange::dim1(32, 8),
        1,
        &[f32s(&a)],
        &[(1, 8 * 4)],
    );
}

#[test]
fn local_pointer_arg_needs_localsize_arg() {
    // The helper `check` passes LocalSize automatically? No: scalars map
    // by position; LocalSize needs its own handling — exercise directly.
    let parsed = soff_frontend::compile(
        "__kernel void k(__global float* a, __local float* t) {
            t[get_local_id(0)] = 0.0f;
            a[get_global_id(0)] = 1.0f;
        }",
        &[],
    )
    .unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = &module.kernels[0];
    let dp = Datapath::build(kernel, &LatencyModel::default());
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(16 * 4);
    let res = run(
        kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(16, 4),
        &[ArgValue::Buffer(a), ArgValue::LocalSize(16)],
        &mut gm,
    )
    .unwrap();
    assert_eq!(res.retired, 16);
}

#[test]
fn stall_statistics_are_populated() {
    // A join of a long (divide) and a short path plus global memory: both
    // Case-1 and Case-2 stall counters should move.
    let parsed = soff_frontend::compile(
        "__kernel void k(__global float* a, __global float* o, int n) {
            int i = get_global_id(0);
            float x = a[(i * 97) % n];
            o[i] = x / 3.0f + x;
        }",
        &[],
    )
    .unwrap();
    let module = soff_ir::build::lower(&parsed).unwrap();
    let kernel = &module.kernels[0];
    let dp = Datapath::build(kernel, &LatencyModel::default());
    let mut gm = GlobalMemory::new();
    let a = gm.alloc(4096 * 4);
    let o = gm.alloc(512 * 4);
    let res = run(
        kernel,
        &dp,
        &SimConfig::default(),
        NdRange::dim1(512, 64),
        &[ArgValue::Buffer(a), ArgValue::Buffer(o), ArgValue::Scalar(4096)],
        &mut gm,
    )
    .unwrap();
    assert!(res.issue_stalls > 0 || res.output_stalls > 0, "stall counters never moved");
    assert!(res.cache.misses > 0, "the strided gather should miss");
}
