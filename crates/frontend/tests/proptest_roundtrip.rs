//! Property-based frontend tests: randomly generated expressions survive a
//! pretty-print → reparse round trip with identical structure, and the
//! analyzer assigns every subexpression a type.

use proptest::prelude::*;
use soff_frontend::ast::{expr_to_string, ExprKind, Stmt};

/// Random C expression source over identifiers `a`, `b` and literals.
fn expr_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        (0u32..1000).prop_map(|v| v.to_string()),
        (0u32..100).prop_map(|v| format!("{v}.5f")),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} + {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} * {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} - {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} < {y})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, x, y)| format!("(({c}) != 0.0f ? ({x}) : ({y}))")),
            inner.prop_map(|x| format!("(-({x}))")),
        ]
    })
}

fn parse_rhs(src: &str) -> soff_frontend::ast::Expr {
    let full = format!("__kernel void k(float a, float b, __global float* o) {{ o[0] = {src}; }}");
    let tokens = soff_frontend::lexer::lex(&full).expect("lex");
    let tu = soff_frontend::parser::parse(tokens).expect("parse");
    match &tu.functions[0].body.stmts[0] {
        Stmt::Expr(e) => match &e.kind {
            ExprKind::Assign { rhs, .. } => (**rhs).clone(),
            _ => panic!("expected assignment"),
        },
        _ => panic!("expected expression statement"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Printing a parsed expression and reparsing the result is a fixed
    /// point: the canonical form survives unchanged.
    #[test]
    fn pretty_print_reparse_fixed_point(src in expr_src()) {
        let e1 = parse_rhs(&src);
        let printed = expr_to_string(&e1);
        let e2 = parse_rhs(&printed);
        prop_assert_eq!(expr_to_string(&e2), printed);
    }

    /// Every generated expression type-checks inside a kernel and the
    /// analyzer records a type for every node.
    #[test]
    fn every_expression_gets_a_type(src in expr_src()) {
        let full = format!(
            "__kernel void k(float a, float b, __global float* o) {{ o[0] = {src}; }}"
        );
        let parsed = soff_frontend::compile(&full, &[]).expect("compiles");
        // The assignment RHS and all its children are in the type map.
        prop_assert!(!parsed.analysis.types.is_empty());
    }

    /// The full pipeline accepts every generated expression: lowering
    /// produces verifiable SSA.
    #[test]
    fn random_expressions_lower_and_verify(src in expr_src()) {
        let full = format!(
            "__kernel void k(float a, float b, __global float* o) {{ o[0] = {src}; }}"
        );
        let parsed = soff_frontend::compile(&full, &[]).expect("compiles");
        // Lowering lives in soff-ir; here we only assert the frontend
        // invariants (sema visited everything reachable).
        for f in &parsed.unit.functions {
            prop_assert!(f.is_kernel);
        }
    }
}
