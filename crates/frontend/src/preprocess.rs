//! A small C-style preprocessor.
//!
//! Supports the directives that real-world OpenCL kernels commonly use:
//! object-like and function-like `#define`, `#undef`, `#ifdef` / `#ifndef` /
//! `#else` / `#endif`, `#pragma` (ignored), and backslash line continuation.
//! `#include` is rejected: OpenCL kernels are compiled from self-contained
//! source in this framework. Conditional expressions (`#if`) support only
//! `defined(X)`, integer literals, and `!`, which covers the benchmark
//! suite.
//!
//! Expansion is purely textual with identifier-boundary matching, which
//! matches how the benchmarks use macros (named constants and tiny inline
//! helpers).

use crate::error::{Diagnostic, Phase, Result};
use crate::span::Span;
use std::collections::HashMap;

/// A defined macro.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Macro {
    Object(String),
    Function { params: Vec<String>, body: String },
}

/// Runs the preprocessor over `source`, applying `defines` as if each
/// `(name, value)` pair had appeared as `#define name value` before line 1.
///
/// Returns the expanded source. Line counts are preserved (directive lines
/// become empty lines) so downstream spans still point at the original text.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for `#include`, unterminated conditionals,
/// malformed macro invocations, or unknown directives.
pub fn preprocess(source: &str, defines: &[(String, String)]) -> Result<String> {
    let mut macros: HashMap<String, Macro> = HashMap::new();
    for (k, v) in defines {
        macros.insert(k.clone(), Macro::Object(v.clone()));
    }

    // Splice continued lines, keeping a record of how many lines each
    // spliced line consumed so we can emit matching blank lines.
    let mut spliced: Vec<(String, usize, u32)> = Vec::new(); // (text, extra_lines, line_no)
    {
        let mut cur = String::new();
        let mut extra = 0usize;
        let mut start_line = 1u32;
        for (idx, line) in source.lines().enumerate() {
            if cur.is_empty() {
                start_line = idx as u32 + 1;
            }
            if let Some(stripped) = line.strip_suffix('\\') {
                cur.push_str(stripped);
                extra += 1;
            } else {
                cur.push_str(line);
                spliced.push((std::mem::take(&mut cur), extra, start_line));
                extra = 0;
            }
        }
        if !cur.is_empty() {
            spliced.push((cur, extra, start_line));
        }
    }

    let mut out = String::with_capacity(source.len());
    // Stack of (parent_active, this_branch_taken).
    let mut cond_stack: Vec<(bool, bool)> = Vec::new();
    let mut active = true;

    for (text, extra, line_no) in spliced {
        let span = Span::new(0, 0, line_no);
        let trimmed = text.trim_start();
        if let Some(directive) = trimmed.strip_prefix('#') {
            let directive = directive.trim_start();
            let (name, rest) = split_word(directive);
            match name {
                "define" if active => {
                    let (mname, after) = split_word(rest.trim_start());
                    if mname.is_empty() {
                        return Err(Diagnostic::new(Phase::Preprocess, "missing macro name", span));
                    }
                    if after.starts_with('(') {
                        let close = after.find(')').ok_or_else(|| {
                            Diagnostic::new(Phase::Preprocess, "unterminated macro parameter list", span)
                        })?;
                        let params: Vec<String> = after[1..close]
                            .split(',')
                            .map(|p| p.trim().to_owned())
                            .filter(|p| !p.is_empty())
                            .collect();
                        let body = after[close + 1..].trim().to_owned();
                        macros.insert(mname.to_owned(), Macro::Function { params, body });
                    } else {
                        macros.insert(mname.to_owned(), Macro::Object(after.trim().to_owned()));
                    }
                }
                "undef" if active => {
                    let (mname, _) = split_word(rest.trim_start());
                    macros.remove(mname);
                }
                "ifdef" | "ifndef" => {
                    let (mname, _) = split_word(rest.trim_start());
                    let defined = macros.contains_key(mname);
                    let taken = if name == "ifdef" { defined } else { !defined };
                    cond_stack.push((active, taken));
                    active = active && taken;
                }
                "if" => {
                    let taken = eval_pp_condition(rest.trim(), &macros, span)?;
                    cond_stack.push((active, taken));
                    active = active && taken;
                }
                "else" => {
                    let (parent, taken) = *cond_stack.last().ok_or_else(|| {
                        Diagnostic::new(Phase::Preprocess, "`#else` without `#if`", span)
                    })?;
                    active = parent && !taken;
                }
                "endif" => {
                    let (parent, _) = cond_stack.pop().ok_or_else(|| {
                        Diagnostic::new(Phase::Preprocess, "`#endif` without `#if`", span)
                    })?;
                    active = parent;
                }
                "pragma" => {}
                "include" => {
                    if active {
                        return Err(Diagnostic::new(
                            Phase::Preprocess,
                            "`#include` is not supported; kernels must be self-contained",
                            span,
                        ));
                    }
                }
                "define" | "undef" => {} // inactive branch
                other => {
                    if active {
                        return Err(Diagnostic::new(
                            Phase::Preprocess,
                            format!("unknown preprocessor directive `#{other}`"),
                            span,
                        ));
                    }
                }
            }
            out.push('\n');
        } else if active {
            out.push_str(&expand(&text, &macros, span, 0)?);
            out.push('\n');
        } else {
            out.push('\n');
        }
        for _ in 0..extra {
            out.push('\n');
        }
    }

    if !cond_stack.is_empty() {
        return Err(Diagnostic::new(
            Phase::Preprocess,
            "unterminated `#if`",
            Span::default(),
        ));
    }
    Ok(out)
}

fn split_word(s: &str) -> (&str, &str) {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (&s[..end], &s[end..])
}

fn eval_pp_condition(expr: &str, macros: &HashMap<String, Macro>, span: Span) -> Result<bool> {
    let e = expr.trim();
    if let Some(rest) = e.strip_prefix('!') {
        return Ok(!eval_pp_condition(rest, macros, span)?);
    }
    if let Some(rest) = e.strip_prefix("defined") {
        let inner = rest.trim().trim_start_matches('(').trim_end_matches(')').trim();
        return Ok(macros.contains_key(inner));
    }
    if let Ok(v) = e.parse::<i64>() {
        return Ok(v != 0);
    }
    if let Some(Macro::Object(body)) = macros.get(e) {
        if let Ok(v) = body.trim().parse::<i64>() {
            return Ok(v != 0);
        }
    }
    Err(Diagnostic::new(
        Phase::Preprocess,
        format!("unsupported `#if` condition `{e}`"),
        span,
    ))
}

const MAX_EXPANSION_DEPTH: usize = 32;

/// Expands macros in one line of text.
fn expand(
    line: &str,
    macros: &HashMap<String, Macro>,
    span: Span,
    depth: usize,
) -> Result<String> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(Diagnostic::new(
            Phase::Preprocess,
            "macro expansion too deep (recursive macro?)",
            span,
        ));
    }
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    let mut changed = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &line[start..i];
            match macros.get(word) {
                Some(Macro::Object(body)) => {
                    out.push_str(body);
                    changed = true;
                }
                Some(Macro::Function { params, body }) => {
                    // Find the argument list.
                    let mut j = i;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'(' {
                        let (args, after) = parse_macro_args(&line[j..], span)?;
                        if args.len() != params.len() && !(params.is_empty() && args.len() == 1 && args[0].trim().is_empty()) {
                            return Err(Diagnostic::new(
                                Phase::Preprocess,
                                format!(
                                    "macro `{word}` expects {} arguments, got {}",
                                    params.len(),
                                    args.len()
                                ),
                                span,
                            ));
                        }
                        let mut expanded = body.clone();
                        // Substitute longest parameter names first so that a
                        // parameter `xy` is not clobbered by a parameter `x`.
                        let mut order: Vec<usize> = (0..params.len()).collect();
                        order.sort_by_key(|&k| std::cmp::Reverse(params[k].len()));
                        for k in order {
                            expanded =
                                substitute_ident(&expanded, &params[k], &format!("({})", args[k].trim()));
                        }
                        out.push_str(&expanded);
                        i = j + after;
                        changed = true;
                    } else {
                        out.push_str(word);
                    }
                }
                None => out.push_str(word),
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
    if changed {
        expand(&out, macros, span, depth + 1)
    } else {
        Ok(out)
    }
}

/// Parses a parenthesized macro argument list starting at `(`.
/// Returns the arguments and the number of bytes consumed.
fn parse_macro_args(s: &str, span: Span) -> Result<(Vec<String>, usize)> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'(');
    let mut depth = 0usize;
    let mut args = Vec::new();
    let mut cur = String::new();
    for (i, &c) in bytes.iter().enumerate() {
        match c {
            b'(' => {
                depth += 1;
                if depth > 1 {
                    cur.push('(');
                }
            }
            b')' => {
                depth -= 1;
                if depth == 0 {
                    args.push(cur);
                    return Ok((args, i + 1));
                }
                cur.push(')');
            }
            b',' if depth == 1 => args.push(std::mem::take(&mut cur)),
            _ => cur.push(c as char),
        }
    }
    Err(Diagnostic::new(
        Phase::Preprocess,
        "unterminated macro argument list",
        span,
    ))
}

/// Replaces whole-identifier occurrences of `name` in `text` with `repl`.
fn substitute_ident(text: &str, name: &str, repl: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &text[start..i];
            if word == name {
                out.push_str(repl);
            } else {
                out.push_str(word);
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> String {
        preprocess(src, &[]).unwrap()
    }

    #[test]
    fn object_macro_expands() {
        assert_eq!(pp("#define N 16\nint a = N;"), "\nint a = 16;\n");
    }

    #[test]
    fn function_macro_expands() {
        let out = pp("#define SQ(x) ((x)*(x))\ny = SQ(a+1);");
        assert_eq!(out, "\ny = (((a+1))*((a+1)));\n");
    }

    #[test]
    fn nested_function_macro() {
        let out = pp("#define A(x) (x+1)\n#define B(x) A(A(x))\nv = B(2);");
        assert_eq!(out.trim(), "v = (((((2))+1))+1);");
    }

    #[test]
    fn ifdef_selects_branch() {
        let out = pp("#define FOO 1\n#ifdef FOO\nyes\n#else\nno\n#endif");
        assert!(out.contains("yes"));
        assert!(!out.contains("no"));
    }

    #[test]
    fn ifndef_selects_other_branch() {
        let out = pp("#ifndef FOO\nyes\n#else\nno\n#endif");
        assert!(out.contains("yes"));
    }

    #[test]
    fn external_defines_apply() {
        let out = preprocess("int a = N;", &[("N".into(), "42".into())]).unwrap();
        assert_eq!(out.trim(), "int a = 42;");
    }

    #[test]
    fn include_is_rejected() {
        assert!(preprocess("#include <stdio.h>", &[]).is_err());
    }

    #[test]
    fn line_count_is_preserved() {
        let out = pp("#define N 1\nline2\nline3");
        assert_eq!(out.matches('\n').count(), 3);
    }

    #[test]
    fn line_continuation() {
        let out = pp("#define N 1 + \\\n 2\nv = N;");
        assert_eq!(out.trim(), "v = 1 +  2;");
        // Blank line preserved for the continuation.
        assert_eq!(out.matches('\n').count(), 3);
    }

    #[test]
    fn recursive_macro_errors() {
        // Direct self-reference loops forever without the depth guard.
        assert!(preprocess("#define X X+1\nv = X;", &[]).is_err());
    }

    #[test]
    fn pragma_is_ignored() {
        assert_eq!(pp("#pragma unroll 4\nx").trim(), "x");
    }

    #[test]
    fn if_defined() {
        let out = pp("#if defined(FOO)\na\n#else\nb\n#endif");
        assert!(out.contains('b'));
        let out = pp("#define FOO\n#if defined(FOO)\na\n#else\nb\n#endif");
        assert!(out.contains('a'));
    }

    #[test]
    fn unterminated_if_errors() {
        assert!(preprocess("#ifdef A\nx", &[]).is_err());
    }
}
