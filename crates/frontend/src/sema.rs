//! Semantic analysis: name resolution and type checking.
//!
//! The analyzer walks the AST once, resolving every identifier, checking
//! every operator, and recording the type of every expression in a side
//! table keyed by [`NodeId`]. The result feeds IR lowering.

use crate::ast::*;
use crate::builtins::{self, Builtin};
use crate::error::{Diagnostic, Phase, Result};
use crate::span::Span;
use crate::types::{promote, AddressSpace, Scalar, Type};
use std::collections::{HashMap, HashSet};

/// What an identifier expression refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Parameter `index` of the enclosing function.
    Param(usize),
    /// A local variable, identified by its declaration's [`NodeId`].
    Var(NodeId),
}

/// Information about one declared variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Address space the variable lives in.
    pub space: AddressSpace,
}

/// Signature of a user-defined function.
#[derive(Debug, Clone)]
pub struct FuncSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Whether it is a `__kernel`.
    pub is_kernel: bool,
}

/// The result of semantic analysis over a translation unit.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Type of every expression (after array decay), keyed by node id.
    pub types: HashMap<NodeId, Type>,
    /// Resolution of every identifier expression.
    pub res: HashMap<NodeId, Resolution>,
    /// Calls that resolved to built-ins.
    pub builtins: HashMap<NodeId, Builtin>,
    /// Calls that resolved to user functions (by name).
    pub user_calls: HashMap<NodeId, String>,
    /// Every declared variable, keyed by its declaration node id.
    pub vars: HashMap<NodeId, VarInfo>,
    /// Declarations whose address is taken (these cannot be SSA-promoted).
    pub addr_taken: HashSet<NodeId>,
    /// Signatures of all functions.
    pub funcs: HashMap<String, FuncSig>,
}

impl Analysis {
    /// The type of expression `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` was not visited by the analyzer (an internal bug).
    pub fn type_of(&self, e: &Expr) -> &Type {
        self.types.get(&e.id).expect("expression not typed by sema")
    }
}

/// Runs semantic analysis over a parsed translation unit.
///
/// # Errors
///
/// Returns the first semantic error found (unknown name, type mismatch,
/// unsupported feature, recursion, ...).
pub fn analyze(tu: &TranslationUnit) -> Result<Analysis> {
    let mut a = Analysis::default();

    if tu.kernels().next().is_none() {
        return Err(Diagnostic::new(
            Phase::Sema,
            "translation unit contains no __kernel function",
            Span::default(),
        ));
    }

    for f in &tu.functions {
        if a.funcs.contains_key(&f.name) {
            return Err(err(format!("function `{}` defined twice", f.name), f.span));
        }
        check_signature(f)?;
        a.funcs.insert(
            f.name.clone(),
            FuncSig {
                ret: f.ret.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                is_kernel: f.is_kernel,
            },
        );
        let mut cx = FuncCx {
            analysis: &mut a,
            func: f,
            scopes: vec![HashMap::new()],
            loop_depth: 0,
            calls: Vec::new(),
        };
        for (i, p) in f.params.iter().enumerate() {
            cx.scopes[0].insert(p.name.clone(), Resolution::Param(i));
        }
        cx.check_block(&f.body)?;
        let calls = cx.calls;
        // Functions must be defined before use, which also rules out
        // recursion; verify explicitly for a clear error message.
        for (callee, span) in calls {
            if callee == f.name {
                return Err(err("recursive functions are not supported in OpenCL C", span));
            }
        }
    }
    Ok(a)
}

fn err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Phase::Sema, msg, span)
}

fn check_signature(f: &Function) -> Result<()> {
    if f.is_kernel && f.ret != Type::Void {
        return Err(err("__kernel functions must return void", f.span));
    }
    for p in &f.params {
        match &p.ty {
            Type::Scalar(_) => {}
            Type::Pointer { space, .. } => {
                if f.is_kernel && *space == AddressSpace::Private {
                    return Err(err(
                        format!(
                            "kernel argument `{}` must point to __global, __local, or __constant memory",
                            p.name
                        ),
                        p.span,
                    ));
                }
            }
            other => {
                return Err(err(
                    format!("unsupported parameter type `{other}` for `{}`", p.name),
                    p.span,
                ))
            }
        }
    }
    Ok(())
}

struct FuncCx<'a> {
    analysis: &'a mut Analysis,
    func: &'a Function,
    scopes: Vec<HashMap<String, Resolution>>,
    loop_depth: u32,
    calls: Vec<(String, Span)>,
}

impl<'a> FuncCx<'a> {
    fn lookup(&self, name: &str) -> Option<Resolution> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    fn check_block(&mut self, b: &Block) -> Result<()> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Decl(d) => self.check_decl(d),
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::Empty(_) => Ok(()),
            Stmt::Block(b) => self.check_block(b),
            Stmt::If { cond, then, els, span } => {
                let t = self.check_expr(cond)?;
                if !t.is_condition() {
                    return Err(err(format!("`if` condition has non-scalar type `{t}`"), *span));
                }
                self.check_stmt(then)?;
                if let Some(e) = els {
                    self.check_stmt(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, span } | Stmt::DoWhile { body, cond, span } => {
                let t = self.check_expr(cond)?;
                if !t.is_condition() {
                    return Err(err(format!("loop condition has non-scalar type `{t}`"), *span));
                }
                self.loop_depth += 1;
                self.check_stmt(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            Stmt::For { init, cond, step, body, span } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    match &**i {
                        // A multi-declarator init was wrapped in a block by
                        // the parser; its decls must scope over the loop.
                        Stmt::Block(b) => {
                            for st in &b.stmts {
                                self.check_stmt(st)?;
                            }
                        }
                        other => self.check_stmt(other)?,
                    }
                }
                if let Some(c) = cond {
                    let t = self.check_expr(c)?;
                    if !t.is_condition() {
                        return Err(err(
                            format!("`for` condition has non-scalar type `{t}`"),
                            *span,
                        ));
                    }
                }
                if let Some(st) = step {
                    self.check_expr(st)?;
                }
                self.loop_depth += 1;
                self.check_stmt(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    return Err(err("`break`/`continue` outside of a loop", *span));
                }
                Ok(())
            }
            Stmt::Return(value, span) => {
                match (value, &self.func.ret) {
                    (None, Type::Void) => Ok(()),
                    (Some(_), Type::Void) => {
                        Err(err("void function cannot return a value", *span))
                    }
                    (None, _) => Err(err("non-void function must return a value", *span)),
                    (Some(v), ret) => {
                        let t = self.check_expr(v)?;
                        if !convertible(&t, ret) {
                            return Err(err(
                                format!("cannot convert `{t}` to return type `{ret}`"),
                                *span,
                            ));
                        }
                        Ok(())
                    }
                }
            }
            Stmt::Barrier { .. } => Ok(()),
        }
    }

    fn check_decl(&mut self, d: &Decl) -> Result<()> {
        if d.space == AddressSpace::Local && !self.func.is_kernel {
            return Err(err(
                "__local variables may only be declared inside __kernel functions",
                d.span,
            ));
        }
        if d.space == AddressSpace::Constant || d.space == AddressSpace::Global {
            return Err(err(
                format!("variables cannot be declared `{}` inside a function", d.space),
                d.span,
            ));
        }
        if let Some(init) = &d.init {
            if matches!(d.ty, Type::Array { .. }) {
                return Err(err("array initializers are not supported", d.span));
            }
            if d.space == AddressSpace::Local {
                return Err(err("__local variables cannot have initializers", d.span));
            }
            let t = self.check_expr(init)?;
            let target = d.ty.decayed(d.space);
            if !convertible(&t, &target) {
                return Err(err(
                    format!("cannot initialize `{}` (`{}`) from `{t}`", d.name, d.ty),
                    d.span,
                ));
            }
        }
        self.analysis.vars.insert(
            d.id,
            VarInfo { name: d.name.clone(), ty: d.ty.clone(), space: d.space },
        );
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(d.name.clone(), Resolution::Var(d.id));
        Ok(())
    }

    fn set_type(&mut self, id: NodeId, t: Type) -> Type {
        self.analysis.types.insert(id, t.clone());
        t
    }

    /// Type-checks an expression, records and returns its (decayed) type.
    fn check_expr(&mut self, e: &Expr) -> Result<Type> {
        let t = self.check_expr_inner(e)?;
        Ok(self.set_type(e.id, t))
    }

    fn check_expr_inner(&mut self, e: &Expr) -> Result<Type> {
        match &e.kind {
            ExprKind::IntLit { value, unsigned, long } => {
                let s = match (unsigned, long) {
                    (false, false) => {
                        if *value <= i32::MAX as u64 {
                            Scalar::I32
                        } else if *value <= i64::MAX as u64 {
                            Scalar::I64
                        } else {
                            Scalar::U64
                        }
                    }
                    (true, false) => {
                        if *value <= u32::MAX as u64 {
                            Scalar::U32
                        } else {
                            Scalar::U64
                        }
                    }
                    (false, true) => Scalar::I64,
                    (true, true) => Scalar::U64,
                };
                Ok(Type::scalar(s))
            }
            ExprKind::FloatLit { is_double, .. } => Ok(Type::scalar(if *is_double {
                Scalar::F64
            } else {
                Scalar::F32
            })),
            ExprKind::Ident(name) => {
                let res = self.lookup(name).ok_or_else(|| {
                    err(format!("unknown identifier `{name}`"), e.span)
                })?;
                let t = match &res {
                    Resolution::Param(i) => self.func.params[*i].ty.clone(),
                    Resolution::Var(id) => {
                        let v = &self.analysis.vars[id];
                        v.ty.decayed(v.space)
                    }
                };
                self.analysis.res.insert(e.id, res);
                Ok(t)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                self.binary_type(*op, &lt, &rt, e.span)
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(operand)?;
                match op {
                    UnOp::LogNot => {
                        if !t.is_condition() {
                            return Err(err(format!("cannot apply `!` to `{t}`"), e.span));
                        }
                        Ok(Type::scalar(Scalar::I32))
                    }
                    UnOp::Not => match t.as_scalar() {
                        Some(s) if s.is_int() => Ok(Type::scalar(promote(s))),
                        _ => Err(err(format!("cannot apply `~` to `{t}`"), e.span)),
                    },
                    UnOp::Neg | UnOp::Plus => match t.as_scalar() {
                        Some(s) => Ok(Type::scalar(promote(s))),
                        None => Err(err(format!("cannot negate `{t}`"), e.span)),
                    },
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let lt = self.check_lvalue(lhs)?;
                let rt = self.check_expr(rhs)?;
                if let Some(op) = op {
                    // Compound assignment: the operation must type-check.
                    self.binary_type(*op, &lt, &rt, e.span)?;
                } else if !convertible(&rt, &lt) {
                    return Err(err(format!("cannot assign `{rt}` to `{lt}`"), e.span));
                }
                Ok(lt)
            }
            ExprKind::IncDec { operand, .. } => {
                let t = self.check_lvalue(operand)?;
                match &t {
                    Type::Scalar(_) | Type::Pointer { .. } => Ok(t),
                    other => Err(err(format!("cannot increment `{other}`"), e.span)),
                }
            }
            ExprKind::Conditional { cond, then, els } => {
                let ct = self.check_expr(cond)?;
                if !ct.is_condition() {
                    return Err(err(format!("`?:` condition has type `{ct}`"), e.span));
                }
                let tt = self.check_expr(then)?;
                let et = self.check_expr(els)?;
                match (&tt, &et) {
                    (Type::Scalar(a), Type::Scalar(b)) => {
                        Ok(Type::scalar(Scalar::unify(*a, *b)))
                    }
                    (Type::Pointer { .. }, Type::Pointer { .. }) if tt == et => Ok(tt),
                    _ => Err(err(
                        format!("incompatible `?:` branch types `{tt}` and `{et}`"),
                        e.span,
                    )),
                }
            }
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(index)?;
                if it.as_scalar().map(|s| s.is_int()) != Some(true) {
                    return Err(err(format!("array index has type `{it}`"), e.span));
                }
                match bt {
                    Type::Pointer { elem, space } => Ok(elem.decayed(space)),
                    other => Err(err(format!("cannot index `{other}`"), e.span)),
                }
            }
            ExprKind::Deref(p) => {
                let pt = self.check_expr(p)?;
                match pt {
                    Type::Pointer { elem, space } => Ok(elem.decayed(space)),
                    other => Err(err(format!("cannot dereference `{other}`"), e.span)),
                }
            }
            ExprKind::AddrOf(inner) => {
                let t = self.check_lvalue(inner)?;
                let space = self.lvalue_space(inner)?;
                // Mark directly-addressed variables as non-promotable.
                if let ExprKind::Ident(_) = &inner.kind {
                    if let Some(Resolution::Var(id)) = self.analysis.res.get(&inner.id) {
                        self.analysis.addr_taken.insert(*id);
                    } else {
                        return Err(err(
                            "cannot take the address of a parameter",
                            e.span,
                        ));
                    }
                }
                Ok(Type::pointer(space, t))
            }
            ExprKind::Cast { ty, operand } => {
                let from = self.check_expr(operand)?;
                let ok = match (&from, ty) {
                    (Type::Scalar(_), Type::Scalar(_)) => true,
                    (Type::Pointer { space: s1, .. }, Type::Pointer { space: s2, .. }) => {
                        s1 == s2
                    }
                    (Type::Pointer { .. }, Type::Scalar(s)) => {
                        matches!(s, Scalar::I64 | Scalar::U64)
                    }
                    (Type::Scalar(s), Type::Pointer { .. }) => s.is_int(),
                    _ => false,
                };
                if !ok {
                    return Err(err(format!("invalid cast from `{from}` to `{ty}`"), e.span));
                }
                Ok(ty.clone())
            }
            ExprKind::Call { name, args } => {
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args {
                    arg_tys.push(self.check_expr(a)?);
                }
                if let Some(r) = builtins::resolve(name, &arg_tys) {
                    let b = r.map_err(|m| err(m, e.span))?;
                    let ret = b.return_type();
                    self.analysis.builtins.insert(e.id, b);
                    return Ok(ret);
                }
                let sig = self
                    .analysis
                    .funcs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| err(format!("unknown function `{name}`"), e.span))?;
                if sig.is_kernel {
                    return Err(err(
                        format!("cannot call __kernel function `{name}` from a kernel"),
                        e.span,
                    ));
                }
                if sig.params.len() != arg_tys.len() {
                    return Err(err(
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            arg_tys.len()
                        ),
                        e.span,
                    ));
                }
                for (i, (have, want)) in arg_tys.iter().zip(&sig.params).enumerate() {
                    if !convertible(have, want) {
                        return Err(err(
                            format!("argument {} of `{name}`: cannot convert `{have}` to `{want}`", i + 1),
                            e.span,
                        ));
                    }
                }
                self.calls.push((name.clone(), e.span));
                self.analysis.user_calls.insert(e.id, name.clone());
                Ok(sig.ret)
            }
            ExprKind::SizeOf(_) => Ok(Type::scalar(Scalar::U64)),
            ExprKind::Comma { lhs, rhs } => {
                self.check_expr(lhs)?;
                self.check_expr(rhs)
            }
        }
    }

    /// Checks that `e` is an lvalue and returns its type.
    fn check_lvalue(&mut self, e: &Expr) -> Result<Type> {
        match &e.kind {
            ExprKind::Ident(_) | ExprKind::Index { .. } | ExprKind::Deref(_) => {
                let t = self.check_expr(e)?;
                Ok(t)
            }
            _ => Err(err("expression is not assignable", e.span)),
        }
    }

    /// Address space of an lvalue (for `&x`).
    fn lvalue_space(&mut self, e: &Expr) -> Result<AddressSpace> {
        match &e.kind {
            ExprKind::Ident(_) => match self.analysis.res.get(&e.id) {
                Some(Resolution::Var(id)) => Ok(self.analysis.vars[id].space),
                _ => Ok(AddressSpace::Private),
            },
            ExprKind::Index { base, .. } | ExprKind::Deref(base) => {
                match self.analysis.types.get(&base.id) {
                    Some(Type::Pointer { space, .. }) => Ok(*space),
                    _ => Ok(AddressSpace::Private),
                }
            }
            _ => Err(err("cannot take the address of this expression", e.span)),
        }
    }

    fn binary_type(&mut self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> Result<Type> {
        use BinOp::*;
        match op {
            LogAnd | LogOr => {
                if lt.is_condition() && rt.is_condition() {
                    Ok(Type::scalar(Scalar::I32))
                } else {
                    Err(err(format!("cannot apply `&&`/`||` to `{lt}` and `{rt}`"), span))
                }
            }
            Eq | Ne | Lt | Gt | Le | Ge => match (lt, rt) {
                (Type::Scalar(_), Type::Scalar(_)) => Ok(Type::scalar(Scalar::I32)),
                (Type::Pointer { .. }, Type::Pointer { .. }) => Ok(Type::scalar(Scalar::I32)),
                // Pointer vs. integer-literal-zero comparisons are common.
                (Type::Pointer { .. }, Type::Scalar(s)) | (Type::Scalar(s), Type::Pointer { .. })
                    if s.is_int() =>
                {
                    Ok(Type::scalar(Scalar::I32))
                }
                _ => Err(err(format!("cannot compare `{lt}` and `{rt}`"), span)),
            },
            Add | Sub => match (lt, rt) {
                (Type::Scalar(a), Type::Scalar(b)) => Ok(Type::scalar(Scalar::unify(*a, *b))),
                (Type::Pointer { .. }, Type::Scalar(s)) if s.is_int() => Ok(lt.clone()),
                (Type::Scalar(s), Type::Pointer { .. }) if s.is_int() && op == Add => {
                    Ok(rt.clone())
                }
                (Type::Pointer { .. }, Type::Pointer { .. }) if op == Sub && lt == rt => {
                    Ok(Type::scalar(Scalar::I64))
                }
                _ => Err(err(format!("cannot apply `{op:?}` to `{lt}` and `{rt}`"), span)),
            },
            Mul | Div => match (lt.as_scalar(), rt.as_scalar()) {
                (Some(a), Some(b)) => Ok(Type::scalar(Scalar::unify(a, b))),
                _ => Err(err(format!("cannot apply `{op:?}` to `{lt}` and `{rt}`"), span)),
            },
            Rem | And | Or | Xor | Shl | Shr => match (lt.as_scalar(), rt.as_scalar()) {
                (Some(a), Some(b)) if a.is_int() && b.is_int() => {
                    if matches!(op, Shl | Shr) {
                        Ok(Type::scalar(promote(a)))
                    } else {
                        Ok(Type::scalar(Scalar::unify(a, b)))
                    }
                }
                _ => Err(err(
                    format!("integer operator `{op:?}` applied to `{lt}` and `{rt}`"),
                    span,
                )),
            },
        }
    }
}

/// Whether a value of type `from` implicitly converts to `to`.
pub fn convertible(from: &Type, to: &Type) -> bool {
    match (from, to) {
        (Type::Scalar(_), Type::Scalar(_)) => true,
        (Type::Pointer { space: s1, elem: e1 }, Type::Pointer { space: s2, elem: e2 }) => {
            s1 == s2 && (e1 == e2 || **e2 == Type::Void || **e1 == Type::Void)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<Analysis> {
        analyze(&parse(lex(src).unwrap()).unwrap())
    }

    fn assert_sema_err(src: &str, needle: &str) {
        let e = analyze_src(src).unwrap_err();
        assert!(
            e.message.contains(needle),
            "expected error containing {needle:?}, got {:?}",
            e.message
        );
    }

    #[test]
    fn accepts_vector_add() {
        let a = analyze_src(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .unwrap();
        assert_eq!(a.funcs["vadd"].params.len(), 3);
        assert!(a.funcs["vadd"].is_kernel);
    }

    #[test]
    fn requires_a_kernel() {
        assert_sema_err("void f() { }", "no __kernel");
    }

    #[test]
    fn kernel_must_return_void() {
        assert_sema_err("__kernel int f() { return 1; }", "must return void");
    }

    #[test]
    fn unknown_identifier() {
        assert_sema_err("__kernel void f() { x = 1; }", "unknown identifier");
    }

    #[test]
    fn unknown_function() {
        assert_sema_err("__kernel void f() { int x = frob(1); }", "unknown function");
    }

    #[test]
    fn pointer_arithmetic_types() {
        let a = analyze_src(
            "__kernel void f(__global float* p, int i) {
                __global float* q = p + i;
                float v = *q;
            }",
        )
        .unwrap();
        assert!(!a.vars.is_empty());
    }

    #[test]
    fn cannot_add_two_pointers() {
        assert_sema_err(
            "__kernel void f(__global float* p) { __global float* q = p + p; }",
            "cannot apply",
        );
    }

    #[test]
    fn cannot_assign_pointer_from_other_space() {
        assert_sema_err(
            "__kernel void f(__global float* p) {
                __local float t[4];
                p = t;
            }",
            "cannot assign",
        );
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert_sema_err("__kernel void f() { break; }", "outside of a loop");
    }

    #[test]
    fn recursion_rejected() {
        assert_sema_err(
            "int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); } __kernel void k() { }",
            "recursive",
        );
    }

    #[test]
    fn addr_taken_is_recorded() {
        let src = "__kernel void f(__global int* out) {
            int x = 3;
            __private int* p = &x;
            *p = 4;
            out[0] = x;
        }";
        let a = analyze_src(src).unwrap();
        assert_eq!(a.addr_taken.len(), 1);
    }

    #[test]
    fn local_var_in_helper_rejected() {
        assert_sema_err(
            "void g() { __local float t[4]; } __kernel void k() { }",
            "__local variables may only",
        );
    }

    #[test]
    fn helper_call_typechecks() {
        let a = analyze_src(
            "float sq(float x) { return x * x; }
             __kernel void k(__global float* o) { o[0] = sq(3.0f); }",
        )
        .unwrap();
        assert_eq!(a.user_calls.len(), 1);
    }

    #[test]
    fn builtin_resolution_recorded() {
        let a = analyze_src(
            "__kernel void k(__global float* o) { o[get_global_id(0)] = sqrt(2.0f); }",
        )
        .unwrap();
        assert_eq!(a.builtins.len(), 2);
    }

    #[test]
    fn atomic_typecheck() {
        let a = analyze_src(
            "__kernel void k(__global int* h) { atomic_add(&h[0], 1); }",
        );
        // &h[0] takes the address of an Index, which is fine.
        a.unwrap();
    }

    #[test]
    fn conditional_unifies_types() {
        let a = analyze_src(
            "__kernel void k(__global double* o, int c) { o[0] = c ? 1.0f : 2.0; }",
        )
        .unwrap();
        // The `?:` has type double (F32 unified with F64).
        let cond_ty = a
            .types
            .values()
            .filter(|t| **t == Type::scalar(Scalar::F64))
            .count();
        assert!(cond_ty >= 1);
    }

    #[test]
    fn private_pointer_kernel_arg_rejected() {
        assert_sema_err(
            "__kernel void k(int* p) { }",
            "must point to __global",
        );
    }

    #[test]
    fn shift_result_keeps_lhs_type() {
        let a = analyze_src(
            "__kernel void k(__global ulong* o, ulong x) { o[0] = x << 3; }",
        )
        .unwrap();
        assert!(a.types.values().any(|t| *t == Type::scalar(Scalar::U64)));
    }

    #[test]
    fn array_decays_in_expression() {
        analyze_src(
            "__kernel void k(__global float* o) {
                float t[8];
                t[0] = 1.0f;
                o[0] = t[0];
            }",
        )
        .unwrap();
    }

    #[test]
    fn void_call_as_statement() {
        analyze_src(
            "void side(__global int* p) { p[0] = 1; }
             __kernel void k(__global int* p) { side(p); }",
        )
        .unwrap();
    }

    #[test]
    fn comparison_yields_int() {
        let a = analyze_src("__kernel void k(__global int* o, float x) { o[0] = x < 1.0f; }")
            .unwrap();
        assert!(a.types.values().any(|t| *t == Type::scalar(Scalar::I32)));
    }
}
