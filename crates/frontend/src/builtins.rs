//! OpenCL C built-in functions recognized by the frontend.

use crate::types::{AddressSpace, Scalar, Type};

/// Work-item identity queries (§II-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkItemQuery {
    /// `get_global_id(dim)`.
    GlobalId,
    /// `get_local_id(dim)`.
    LocalId,
    /// `get_group_id(dim)`.
    GroupId,
    /// `get_global_size(dim)`.
    GlobalSize,
    /// `get_local_size(dim)`.
    LocalSize,
    /// `get_num_groups(dim)`.
    NumGroups,
    /// `get_work_dim()`.
    WorkDim,
    /// `get_global_offset(dim)` — always 0 in this implementation.
    GlobalOffset,
}

/// Math built-ins mapped to dedicated functional units.
///
/// `native_*` spellings resolve to the same unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFunc {
    Sqrt,
    Rsqrt,
    Fabs,
    Exp,
    Exp2,
    Log,
    Log2,
    Log10,
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Sinh,
    Cosh,
    Tanh,
    Floor,
    Ceil,
    Round,
    Trunc,
    Pow,
    Fmin,
    Fmax,
    Fmod,
    Hypot,
    Atan2,
    Fma,
    Mad,
}

impl MathFunc {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        use MathFunc::*;
        match self {
            Sqrt | Rsqrt | Fabs | Exp | Exp2 | Log | Log2 | Log10 | Sin | Cos | Tan | Asin
            | Acos | Atan | Sinh | Cosh | Tanh | Floor | Ceil | Round | Trunc => 1,
            Pow | Fmin | Fmax | Fmod | Hypot | Atan2 => 2,
            Fma | Mad => 3,
        }
    }
}

/// Atomic read-modify-write operations (§IV-F2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    Add,
    Sub,
    Inc,
    Dec,
    Min,
    Max,
    And,
    Or,
    Xor,
    Xchg,
    CmpXchg,
}

impl AtomicOp {
    /// Number of value arguments after the pointer.
    pub fn value_args(self) -> usize {
        match self {
            AtomicOp::Inc | AtomicOp::Dec => 0,
            AtomicOp::CmpXchg => 2,
            _ => 1,
        }
    }
}

/// Integer built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntFunc {
    Min,
    Max,
    Abs,
    Clamp,
}

/// A resolved built-in call.
#[derive(Debug, Clone, PartialEq)]
pub enum Builtin {
    /// A work-item identity query; the dimension argument must be a `u32`.
    WorkItem(WorkItemQuery),
    /// A floating-point math function operating on `scalar`.
    Math(MathFunc, Scalar),
    /// An integer helper on `scalar`.
    Int(IntFunc, Scalar),
    /// An atomic op on a pointer to `scalar` in `space`.
    Atomic(AtomicOp, Scalar, AddressSpace),
}

impl Builtin {
    /// The return type of the built-in.
    pub fn return_type(&self) -> Type {
        match self {
            Builtin::WorkItem(WorkItemQuery::WorkDim) => Type::scalar(Scalar::U32),
            Builtin::WorkItem(_) => Type::scalar(Scalar::U64),
            Builtin::Math(_, s) => Type::scalar(*s),
            Builtin::Int(_, s) => Type::scalar(*s),
            Builtin::Atomic(_, s, _) => Type::scalar(*s),
        }
    }
}

/// Looks up a built-in by name and argument types.
///
/// Returns `None` when `name` is not a built-in (it may still be a
/// user-defined function). Returns `Some(Err(msg))` when the name is a
/// built-in but the arguments do not fit.
pub fn resolve(name: &str, arg_tys: &[Type]) -> Option<Result<Builtin, String>> {
    use WorkItemQuery::*;
    let wi = |q: WorkItemQuery, want_args: usize| {
        if arg_tys.len() != want_args {
            return Err(format!("`{name}` expects {want_args} argument(s)"));
        }
        if want_args == 1 && arg_tys[0].as_scalar().map(|s| s.is_int()) != Some(true) {
            return Err(format!("`{name}` dimension must be an integer"));
        }
        Ok(Builtin::WorkItem(q))
    };
    match name {
        "get_global_id" => return Some(wi(GlobalId, 1)),
        "get_local_id" => return Some(wi(LocalId, 1)),
        "get_group_id" => return Some(wi(GroupId, 1)),
        "get_global_size" => return Some(wi(GlobalSize, 1)),
        "get_local_size" => return Some(wi(LocalSize, 1)),
        "get_num_groups" => return Some(wi(NumGroups, 1)),
        "get_work_dim" => return Some(wi(WorkDim, 0)),
        "get_global_offset" => return Some(wi(GlobalOffset, 1)),
        _ => {}
    }

    // Math built-ins, including native_ spellings.
    let base = name.strip_prefix("native_").or(name.strip_prefix("half_")).unwrap_or(name);
    let math = match base {
        "sqrt" => Some(MathFunc::Sqrt),
        "rsqrt" => Some(MathFunc::Rsqrt),
        "fabs" => Some(MathFunc::Fabs),
        "exp" => Some(MathFunc::Exp),
        "exp2" => Some(MathFunc::Exp2),
        "log" => Some(MathFunc::Log),
        "log2" => Some(MathFunc::Log2),
        "log10" => Some(MathFunc::Log10),
        "sin" => Some(MathFunc::Sin),
        "cos" => Some(MathFunc::Cos),
        "tan" => Some(MathFunc::Tan),
        "asin" => Some(MathFunc::Asin),
        "acos" => Some(MathFunc::Acos),
        "atan" => Some(MathFunc::Atan),
        "sinh" => Some(MathFunc::Sinh),
        "cosh" => Some(MathFunc::Cosh),
        "tanh" => Some(MathFunc::Tanh),
        "floor" => Some(MathFunc::Floor),
        "ceil" => Some(MathFunc::Ceil),
        "round" => Some(MathFunc::Round),
        "trunc" => Some(MathFunc::Trunc),
        "pow" | "powr" => Some(MathFunc::Pow),
        "fmin" => Some(MathFunc::Fmin),
        "fmax" => Some(MathFunc::Fmax),
        "fmod" => Some(MathFunc::Fmod),
        "hypot" => Some(MathFunc::Hypot),
        "atan2" => Some(MathFunc::Atan2),
        "fma" => Some(MathFunc::Fma),
        "mad" => Some(MathFunc::Mad),
        _ => None,
    };
    if let Some(m) = math {
        if arg_tys.len() != m.arity() {
            return Some(Err(format!("`{name}` expects {} argument(s)", m.arity())));
        }
        // The result scalar is the widest float among the arguments;
        // integer arguments are accepted and converted.
        let mut scalar = Scalar::F32;
        for t in arg_tys {
            match t.as_scalar() {
                Some(Scalar::F64) => scalar = Scalar::F64,
                Some(_) => {}
                None => return Some(Err(format!("`{name}` arguments must be scalars"))),
            }
        }
        return Some(Ok(Builtin::Math(m, scalar)));
    }

    // Integer helpers. `min`/`max`/`clamp` also work on floats in OpenCL;
    // resolve those to the float units.
    let int_fn = match name {
        "min" => Some((IntFunc::Min, MathFunc::Fmin)),
        "max" => Some((IntFunc::Max, MathFunc::Fmax)),
        "abs" => Some((IntFunc::Abs, MathFunc::Fabs)),
        "clamp" => Some((IntFunc::Clamp, MathFunc::Fmin)), // float clamp handled below
        _ => None,
    };
    if let Some((f, _)) = int_fn {
        let want = match f {
            IntFunc::Clamp => 3,
            IntFunc::Abs => 1,
            _ => 2,
        };
        if arg_tys.len() != want {
            return Some(Err(format!("`{name}` expects {want} argument(s)")));
        }
        let mut scalar = Scalar::I32;
        let mut any_float = false;
        for t in arg_tys {
            match t.as_scalar() {
                Some(s) if s.is_float() => {
                    any_float = true;
                    scalar = if s == Scalar::F64 || scalar == Scalar::F64 {
                        Scalar::F64
                    } else {
                        Scalar::F32
                    };
                }
                Some(s) => {
                    if !any_float {
                        scalar = Scalar::unify(scalar, s);
                    }
                }
                None => return Some(Err(format!("`{name}` arguments must be scalars"))),
            }
        }
        return Some(Ok(Builtin::Int(f, scalar)));
    }

    // Atomics: `atomic_*` and legacy `atom_*`.
    let at = name.strip_prefix("atomic_").or(name.strip_prefix("atom_"));
    if let Some(opname) = at {
        let op = match opname {
            "add" => AtomicOp::Add,
            "sub" => AtomicOp::Sub,
            "inc" => AtomicOp::Inc,
            "dec" => AtomicOp::Dec,
            "min" => AtomicOp::Min,
            "max" => AtomicOp::Max,
            "and" => AtomicOp::And,
            "or" => AtomicOp::Or,
            "xor" => AtomicOp::Xor,
            "xchg" => AtomicOp::Xchg,
            "cmpxchg" => AtomicOp::CmpXchg,
            _ => return None,
        };
        let want = 1 + op.value_args();
        if arg_tys.len() != want {
            return Some(Err(format!("`{name}` expects {want} argument(s)")));
        }
        let (space, scalar) = match &arg_tys[0] {
            Type::Pointer { space, elem } => match elem.as_scalar() {
                Some(s @ (Scalar::I32 | Scalar::U32 | Scalar::I64 | Scalar::U64)) => (*space, s),
                _ => {
                    return Some(Err(format!(
                        "`{name}` requires a pointer to a 32- or 64-bit integer"
                    )))
                }
            },
            _ => return Some(Err(format!("first argument of `{name}` must be a pointer"))),
        };
        if space == AddressSpace::Constant || space == AddressSpace::Private {
            return Some(Err(format!(
                "`{name}` requires a __global or __local pointer"
            )));
        }
        return Some(Ok(Builtin::Atomic(op, scalar, space)));
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32ty() -> Type {
        Type::scalar(Scalar::F32)
    }

    #[test]
    fn resolves_work_item_queries() {
        let b = resolve("get_global_id", &[Type::scalar(Scalar::I32)]).unwrap().unwrap();
        assert_eq!(b, Builtin::WorkItem(WorkItemQuery::GlobalId));
        assert_eq!(b.return_type(), Type::scalar(Scalar::U64));
    }

    #[test]
    fn work_item_query_arity_checked() {
        assert!(resolve("get_global_id", &[]).unwrap().is_err());
        assert!(resolve("get_work_dim", &[]).unwrap().is_ok());
    }

    #[test]
    fn resolves_math_with_width() {
        let b = resolve("sqrt", &[f32ty()]).unwrap().unwrap();
        assert_eq!(b, Builtin::Math(MathFunc::Sqrt, Scalar::F32));
        let b = resolve("pow", &[Type::scalar(Scalar::F64), f32ty()]).unwrap().unwrap();
        assert_eq!(b, Builtin::Math(MathFunc::Pow, Scalar::F64));
    }

    #[test]
    fn native_prefix_resolves() {
        let b = resolve("native_exp", &[f32ty()]).unwrap().unwrap();
        assert_eq!(b, Builtin::Math(MathFunc::Exp, Scalar::F32));
    }

    #[test]
    fn min_max_int_vs_float() {
        let b = resolve("min", &[Type::scalar(Scalar::I32), Type::scalar(Scalar::I32)])
            .unwrap()
            .unwrap();
        assert_eq!(b, Builtin::Int(IntFunc::Min, Scalar::I32));
        let b = resolve("max", &[f32ty(), f32ty()]).unwrap().unwrap();
        assert_eq!(b, Builtin::Int(IntFunc::Max, Scalar::F32));
    }

    #[test]
    fn resolves_atomics() {
        let p = Type::pointer(AddressSpace::Global, Type::scalar(Scalar::I32));
        let b = resolve("atomic_add", &[p.clone(), Type::scalar(Scalar::I32)])
            .unwrap()
            .unwrap();
        assert_eq!(b, Builtin::Atomic(AtomicOp::Add, Scalar::I32, AddressSpace::Global));
        let b = resolve("atom_inc", &[p]).unwrap().unwrap();
        assert_eq!(b, Builtin::Atomic(AtomicOp::Inc, Scalar::I32, AddressSpace::Global));
    }

    #[test]
    fn atomic_on_float_rejected() {
        let p = Type::pointer(AddressSpace::Global, f32ty());
        assert!(resolve("atomic_add", &[p, f32ty()]).unwrap().is_err());
    }

    #[test]
    fn atomic_on_private_rejected() {
        let p = Type::pointer(AddressSpace::Private, Type::scalar(Scalar::I32));
        assert!(resolve("atomic_add", &[p, Type::scalar(Scalar::I32)]).unwrap().is_err());
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(resolve("frobnicate", &[]).is_none());
    }

    #[test]
    fn cmpxchg_takes_three_args() {
        let p = Type::pointer(AddressSpace::Local, Type::scalar(Scalar::U32));
        let i = Type::scalar(Scalar::U32);
        assert!(resolve("atomic_cmpxchg", &[p.clone(), i.clone(), i.clone()])
            .unwrap()
            .is_ok());
        assert!(resolve("atomic_cmpxchg", &[p, i]).unwrap().is_err());
    }
}
