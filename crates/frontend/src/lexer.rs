//! Hand-written lexer for the OpenCL C subset.
//!
//! The lexer operates on already-preprocessed source (see
//! [`crate::preprocess`]) and produces a flat vector of [`Token`]s ending in
//! [`TokenKind::Eof`]. Comments are stripped by the preprocessor, but the
//! lexer also tolerates them so that it can be used standalone in tests.

use crate::error::{Diagnostic, Phase, Result};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Lexes an entire source string into tokens.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for malformed literals or characters that are
/// not part of the language.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::new(start as u32, self.pos as u32, line)
    }

    fn error(&self, msg: impl Into<String>, start: usize, line: u32) -> Diagnostic {
        Diagnostic::new(Phase::Lex, msg, self.span_from(start, line))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let line = self.line;
            if self.pos >= self.src.len() {
                self.tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: self.span_from(start, line),
                });
                return Ok(self.tokens);
            }
            let c = self.peek();
            let kind = if c.is_ascii_alphabetic() || c == b'_' {
                self.lex_ident()
            } else if c.is_ascii_digit() || (c == b'.' && self.peek2().is_ascii_digit()) {
                self.lex_number(start, line)?
            } else if c == b'\'' {
                self.lex_char(start, line)?
            } else if c == b'"' {
                self.lex_string(start, line)?
            } else {
                self.lex_punct(start, line)?
            };
            self.tokens.push(Token {
                kind,
                span: self.span_from(start, line),
            });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(self.error("unterminated block comment", start, line));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match Keyword::from_str(text) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32) -> Result<TokenKind> {
        // Hex literal.
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.error("missing hex digits", start, line));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.error("hex literal too large", start, line))?;
            let (unsigned, long) = self.lex_int_suffix();
            return Ok(TokenKind::IntLit { value, unsigned, long });
        }

        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if (self.peek() == b'e' || self.peek() == b'E')
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-') && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float || matches!(self.peek(), b'f' | b'F') {
            let value: f64 = text
                .parse()
                .map_err(|_| self.error("malformed float literal", start, line))?;
            let is_double = !matches!(self.peek(), b'f' | b'F');
            if !is_double {
                self.bump();
            }
            Ok(TokenKind::FloatLit { value, is_double })
        } else {
            let value: u64 = text
                .parse()
                .map_err(|_| self.error("integer literal too large", start, line))?;
            let (unsigned, long) = self.lex_int_suffix();
            Ok(TokenKind::IntLit { value, unsigned, long })
        }
    }

    fn lex_int_suffix(&mut self) -> (bool, bool) {
        let mut unsigned = false;
        let mut long = false;
        loop {
            match self.peek() {
                b'u' | b'U' if !unsigned => {
                    unsigned = true;
                    self.bump();
                }
                b'l' | b'L' if !long => {
                    long = true;
                    self.bump();
                }
                _ => return (unsigned, long),
            }
        }
    }

    fn lex_char(&mut self, start: usize, line: u32) -> Result<TokenKind> {
        self.bump(); // opening quote
        let v = match self.bump() {
            b'\\' => match self.bump() {
                b'n' => b'\n' as i64,
                b't' => b'\t' as i64,
                b'r' => b'\r' as i64,
                b'0' => 0,
                b'\\' => b'\\' as i64,
                b'\'' => b'\'' as i64,
                other => {
                    return Err(self.error(
                        format!("unsupported escape `\\{}`", other as char),
                        start,
                        line,
                    ))
                }
            },
            0 => return Err(self.error("unterminated char literal", start, line)),
            c => c as i64,
        };
        if self.bump() != b'\'' {
            return Err(self.error("unterminated char literal", start, line));
        }
        Ok(TokenKind::CharLit(v))
    }

    fn lex_string(&mut self, start: usize, line: u32) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                0 => return Err(self.error("unterminated string literal", start, line)),
                b'"' => return Ok(TokenKind::StrLit(out)),
                b'\\' => match self.bump() {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    other => {
                        return Err(self.error(
                            format!("unsupported escape `\\{}`", other as char),
                            start,
                            line,
                        ))
                    }
                },
                c => out.push(c as char),
            }
        }
    }

    fn lex_punct(&mut self, start: usize, line: u32) -> Result<TokenKind> {
        use Punct::*;
        let c = self.bump();
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b':' => Colon,
            b'?' => Question,
            b'~' => Tilde,
            b'.' => Dot,
            b'+' => match self.peek() {
                b'+' => {
                    self.bump();
                    PlusPlus
                }
                b'=' => {
                    self.bump();
                    PlusEq
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.bump();
                    MinusMinus
                }
                b'=' => {
                    self.bump();
                    MinusEq
                }
                b'>' => {
                    self.bump();
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.bump();
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.bump();
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.bump();
                    PercentEq
                } else {
                    Percent
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.bump();
                    AmpAmp
                }
                b'=' => {
                    self.bump();
                    AmpEq
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.bump();
                    PipePipe
                }
                b'=' => {
                    self.bump();
                    PipeEq
                }
                _ => Pipe,
            },
            b'^' => {
                if self.peek() == b'=' {
                    self.bump();
                    CaretEq
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.bump();
                    Ne
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.bump();
                    EqEq
                } else {
                    Assign
                }
            }
            b'<' => match self.peek() {
                b'<' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        ShlEq
                    } else {
                        Shl
                    }
                }
                b'=' => {
                    self.bump();
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        ShrEq
                    } else {
                        Shr
                    }
                }
                b'=' => {
                    self.bump();
                    Ge
                }
                _ => Gt,
            },
            other => {
                return Err(self.error(
                    format!("unexpected character `{}`", other as char),
                    start,
                    line,
                ))
            }
        };
        Ok(TokenKind::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_kernel_header() {
        let ks = kinds("__kernel void f(__global int* a)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Kernel),
                TokenKind::Keyword(Keyword::Void),
                TokenKind::Ident("f".into()),
                TokenKind::Punct(Punct::LParen),
                TokenKind::Keyword(Keyword::Global),
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Punct(Punct::Star),
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::RParen),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 0x2A 42u 3l 1.5 1.5f 2e3 1e-2f"),
            vec![
                TokenKind::IntLit { value: 42, unsigned: false, long: false },
                TokenKind::IntLit { value: 42, unsigned: false, long: false },
                TokenKind::IntLit { value: 42, unsigned: true, long: false },
                TokenKind::IntLit { value: 3, unsigned: false, long: true },
                TokenKind::FloatLit { value: 1.5, is_double: true },
                TokenKind::FloatLit { value: 1.5, is_double: false },
                TokenKind::FloatLit { value: 2000.0, is_double: true },
                TokenKind::FloatLit { value: 0.01, is_double: false },
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_leading_dot_float() {
        assert_eq!(
            kinds(".5f"),
            vec![
                TokenKind::FloatLit { value: 0.5, is_double: false },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("<<= >>= ++ -- -> <= >= == != && ||"),
            vec![
                TokenKind::Punct(Punct::ShlEq),
                TokenKind::Punct(Punct::ShrEq),
                TokenKind::Punct(Punct::PlusPlus),
                TokenKind::Punct(Punct::MinusMinus),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Punct(Punct::Le),
                TokenKind::Punct(Punct::Ge),
                TokenKind::Punct(Punct::EqEq),
                TokenKind::Punct(Punct::Ne),
                TokenKind::Punct(Punct::AmpAmp),
                TokenKind::Punct(Punct::PipePipe),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 3);
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("int @").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds(r"'a' '\n' '\0'"),
            vec![
                TokenKind::CharLit(97),
                TokenKind::CharLit(10),
                TokenKind::CharLit(0),
                TokenKind::Eof,
            ]
        );
    }
}
