//! # soff-frontend
//!
//! The OpenCL C frontend of the SOFF high-level synthesis framework: a
//! preprocessor, lexer, recursive-descent parser, and semantic analyzer for
//! the OpenCL C subset that SOFF synthesizes to hardware.
//!
//! The subset covers the language features real-world OpenCL kernels use
//! (scalars, pointers with address-space qualifiers, arrays, full C
//! expression and control-flow syntax, work-item/math/atomic built-ins,
//! `barrier`) and deliberately excludes what the paper's pipeline excludes:
//! `goto`, recursion, function pointers, and struct/vector types.
//!
//! ## Example
//!
//! ```
//! use soff_frontend::compile;
//!
//! let src = "__kernel void vadd(__global const float* a,
//!                               __global const float* b,
//!                               __global float* c) {
//!     int i = get_global_id(0);
//!     c[i] = a[i] + b[i];
//! }";
//! let parsed = compile(src, &[]).expect("valid kernel");
//! assert_eq!(parsed.unit.kernels().count(), 1);
//! ```

pub mod ast;
pub mod builtins;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod preprocess;
pub mod sema;
pub mod span;
pub mod token;
pub mod types;

pub use error::{Diagnostic, Phase, Result};

/// A fully analyzed translation unit: the AST plus the semantic tables
/// lowering needs.
#[derive(Debug)]
pub struct Parsed {
    /// The syntax tree.
    pub unit: ast::TranslationUnit,
    /// Name resolution, expression types, and builtin bindings.
    pub analysis: sema::Analysis,
    /// The preprocessed source (spans refer to this text).
    pub source: String,
}

/// Runs the complete frontend: preprocess, lex, parse, and analyze.
///
/// `defines` are applied as `#define` pairs before the source, mirroring
/// the `-D` build options of `clBuildProgram`.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] any phase produces.
pub fn compile(source: &str, defines: &[(String, String)]) -> Result<Parsed> {
    let source = preprocess::preprocess(source, defines)?;
    let tokens = lexer::lex(&source)?;
    let unit = parser::parse(tokens)?;
    let analysis = sema::analyze(&unit)?;
    Ok(Parsed { unit, analysis, source })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let p = compile(
            "#define TILE 16\n__kernel void k(__global float* a) { a[get_global_id(0)] *= TILE; }",
            &[],
        )
        .unwrap();
        assert_eq!(p.unit.functions.len(), 1);
    }

    #[test]
    fn defines_flow_through() {
        let p = compile(
            "__kernel void k(__global float* a) { a[0] = W; }",
            &[("W".into(), "4.0f".into())],
        )
        .unwrap();
        assert!(!p.analysis.types.is_empty());
    }

    #[test]
    fn error_from_any_phase_propagates() {
        assert!(compile("#include <x>", &[]).is_err());
        assert!(compile("__kernel void k() { @ }", &[]).is_err());
        assert!(compile("__kernel void k() { x; }", &[]).is_err());
    }
}
