//! Recursive-descent parser for the OpenCL C subset.

use crate::ast::*;
use crate::error::{Diagnostic, Phase, Result};
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::{AddressSpace, Scalar, Type};

/// Parses a token stream into a [`TranslationUnit`].
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: Vec<Token>) -> Result<TranslationUnit> {
    Parser::new(tokens).run()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, next_id: 0 }
    }

    fn node_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Phase::Parse, msg, self.span())
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        if *self.peek() == TokenKind::Punct(p) {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok((s, span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn run(mut self) -> Result<TranslationUnit> {
        let mut functions = Vec::new();
        while *self.peek() != TokenKind::Eof {
            functions.push(self.parse_function()?);
        }
        Ok(TranslationUnit { functions, num_nodes: self.next_id })
    }

    // ---- Types ---------------------------------------------------------

    /// Returns whether the current token can begin a type.
    fn at_type(&self) -> bool {
        self.at_type_at(0)
    }

    fn at_type_at(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            TokenKind::Keyword(
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Uchar
                    | Keyword::Short
                    | Keyword::Ushort
                    | Keyword::Int
                    | Keyword::Uint
                    | Keyword::Long
                    | Keyword::Ulong
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Const
                    | Keyword::Volatile
                    | Keyword::Global
                    | Keyword::Local
                    | Keyword::Constant
                    | Keyword::Private
            )
        )
    }

    /// Parses qualifiers + base type + any `*`s. Returns the type and the
    /// address space the qualifiers named (for declarations).
    fn parse_type(&mut self) -> Result<(Type, Option<AddressSpace>)> {
        let mut space: Option<AddressSpace> = None;
        // Leading qualifiers.
        loop {
            match self.peek() {
                TokenKind::Keyword(Keyword::Global) => {
                    space = Some(AddressSpace::Global);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Local) => {
                    space = Some(AddressSpace::Local);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Constant) => {
                    space = Some(AddressSpace::Constant);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Private) => {
                    space = Some(AddressSpace::Private);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Const | Keyword::Volatile | Keyword::Restrict) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let base = self.parse_base_type()?;
        let mut ty = base;
        loop {
            // Trailing qualifiers may appear between stars: `int * const *`.
            if self.eat_punct(Punct::Star) {
                let sp = space.unwrap_or(AddressSpace::Private);
                ty = Type::pointer(sp, ty);
            } else if matches!(
                self.peek(),
                TokenKind::Keyword(Keyword::Const | Keyword::Volatile | Keyword::Restrict)
            ) {
                self.bump();
            } else {
                break;
            }
        }
        Ok((ty, space))
    }

    fn parse_base_type(&mut self) -> Result<Type> {
        use Keyword::*;
        let t = match self.peek().clone() {
            TokenKind::Keyword(k) => match k {
                Void => Type::Void,
                Bool => Type::scalar(Scalar::Bool),
                Char => Type::scalar(Scalar::I8),
                Uchar => Type::scalar(Scalar::U8),
                Short => Type::scalar(Scalar::I16),
                Ushort => Type::scalar(Scalar::U16),
                Int => Type::scalar(Scalar::I32),
                Uint => Type::scalar(Scalar::U32),
                Long => Type::scalar(Scalar::I64),
                Ulong => Type::scalar(Scalar::U64),
                Float => Type::scalar(Scalar::F32),
                Double => Type::scalar(Scalar::F64),
                SizeT => Type::scalar(Scalar::U64),
                Unsigned => {
                    self.bump();
                    // `unsigned int`, `unsigned long`, bare `unsigned`...
                    return Ok(match self.peek() {
                        TokenKind::Keyword(Char) => {
                            self.bump();
                            Type::scalar(Scalar::U8)
                        }
                        TokenKind::Keyword(Short) => {
                            self.bump();
                            Type::scalar(Scalar::U16)
                        }
                        TokenKind::Keyword(Int) => {
                            self.bump();
                            Type::scalar(Scalar::U32)
                        }
                        TokenKind::Keyword(Long) => {
                            self.bump();
                            Type::scalar(Scalar::U64)
                        }
                        _ => Type::scalar(Scalar::U32),
                    });
                }
                Signed => {
                    self.bump();
                    return Ok(match self.peek() {
                        TokenKind::Keyword(Char) => {
                            self.bump();
                            Type::scalar(Scalar::I8)
                        }
                        TokenKind::Keyword(Short) => {
                            self.bump();
                            Type::scalar(Scalar::I16)
                        }
                        TokenKind::Keyword(Int) => {
                            self.bump();
                            Type::scalar(Scalar::I32)
                        }
                        TokenKind::Keyword(Long) => {
                            self.bump();
                            Type::scalar(Scalar::I64)
                        }
                        _ => Type::scalar(Scalar::I32),
                    });
                }
                Struct => {
                    return Err(self.error(
                        "struct types are not supported by this OpenCL C subset",
                    ))
                }
                Goto => return Err(self.error("`goto` is not supported (kernels must be structured programs)")),
                other => return Err(self.error(format!("expected type, found keyword `{other:?}`"))),
            },
            other => return Err(self.error(format!("expected type, found {other}"))),
        };
        self.bump();
        // `long long` → long; `long int` → long, `short int` → short.
        if matches!(t, Type::Scalar(Scalar::I64)) {
            self.eat_keyword(Keyword::Long);
        }
        if matches!(t.as_scalar(), Some(s) if s.is_int()) {
            self.eat_keyword(Keyword::Int);
        }
        Ok(t)
    }

    // ---- Functions -----------------------------------------------------

    fn parse_function(&mut self) -> Result<Function> {
        let start = self.span();
        let mut is_kernel = false;
        loop {
            if self.eat_keyword(Keyword::Kernel) {
                is_kernel = true;
            } else if self.eat_keyword(Keyword::Static) || self.eat_keyword(Keyword::Inline) {
                // Accepted and ignored: helpers are always inlined anyway.
            } else if *self.peek() == TokenKind::Ident("__attribute__".to_string()) {
                self.bump();
                self.skip_attribute()?;
            } else {
                break;
            }
        }
        let (ret, _) = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                // `void` as the entire parameter list.
                if params.is_empty()
                    && *self.peek() == TokenKind::Keyword(Keyword::Void)
                    && *self.peek_at(1) == TokenKind::Punct(Punct::RParen)
                {
                    self.bump();
                    self.bump();
                    break;
                }
                let pspan = self.span();
                let (ty, space) = self.parse_type()?;
                let (pname, _) = self.expect_ident()?;
                let mut ty = ty;
                // Array parameter `float a[]` decays to a pointer.
                if self.eat_punct(Punct::LBracket) {
                    if !self.eat_punct(Punct::RBracket) {
                        // Fixed-size array parameter: size is parsed and ignored.
                        self.parse_expr()?;
                        self.expect_punct(Punct::RBracket)?;
                    }
                    ty = Type::pointer(space.unwrap_or(AddressSpace::Private), ty);
                }
                params.push(Param { name: pname, ty, span: pspan });
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        let body = self.parse_block()?;
        let span = start.merge(self.prev_span());
        Ok(Function { name, is_kernel, ret, params, body, span })
    }

    fn skip_attribute(&mut self) -> Result<()> {
        self.expect_punct(Punct::LParen)?;
        let mut depth = 1;
        while depth > 0 {
            match self.bump() {
                TokenKind::Punct(Punct::LParen) => depth += 1,
                TokenKind::Punct(Punct::RParen) => depth -= 1,
                TokenKind::Eof => return Err(self.error("unterminated `__attribute__`")),
                _ => {}
            }
        }
        Ok(())
    }

    // ---- Statements ----------------------------------------------------

    fn parse_block(&mut self) -> Result<Block> {
        let start = self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unterminated block"));
            }
            self.parse_stmt_into(&mut stmts)?;
        }
        Ok(Block { stmts, span: start.merge(self.prev_span()) })
    }

    /// Parses one statement; declarations with multiple declarators push
    /// multiple `Stmt::Decl`s.
    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<()> {
        if self.at_type() {
            self.parse_decl_into(out)?;
            return Ok(());
        }
        let stmt = self.parse_stmt()?;
        out.push(stmt);
        Ok(())
    }

    fn parse_decl_into(&mut self, out: &mut Vec<Stmt>) -> Result<()> {
        let (base, space) = self.parse_type()?;
        loop {
            let span = self.span();
            // Extra stars per declarator: `int *a, b;`
            let mut ty = base.clone();
            while self.eat_punct(Punct::Star) {
                ty = Type::pointer(space.unwrap_or(AddressSpace::Private), ty);
            }
            let (name, _) = self.expect_ident()?;
            // Array suffixes.
            let mut dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                let len_expr = self.parse_assign_expr()?;
                let len = const_eval_u64(&len_expr).ok_or_else(|| {
                    Diagnostic::new(
                        Phase::Parse,
                        "array length must be a constant expression",
                        len_expr.span,
                    )
                })?;
                self.expect_punct(Punct::RBracket)?;
                dims.push(len);
            }
            for &d in dims.iter().rev() {
                ty = Type::Array { elem: Box::new(ty), len: d };
            }
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_assign_expr()?)
            } else {
                None
            };
            // An address-space qualifier on a pointer declaration qualifies
            // the pointee (`__global float* p` is a private pointer to
            // global memory); the variable itself is then private.
            let var_space = if ty.is_pointer() {
                AddressSpace::Private
            } else {
                space.unwrap_or(AddressSpace::Private)
            };
            out.push(Stmt::Decl(Decl {
                id: self.node_id(),
                name,
                ty,
                space: var_space,
                init,
                span,
            }));
            if self.eat_punct(Punct::Semi) {
                return Ok(());
            }
            self.expect_punct(Punct::Comma)?;
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Punct(Punct::LBrace) => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty(span))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let then = Box::new(self.parse_substmt()?);
                let els = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_substmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els, span })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_substmt()?);
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.parse_substmt()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(self.error("expected `while` after `do` body"));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::DoWhile { body, cond, span })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.at_type() {
                    let mut decls = Vec::new();
                    self.parse_decl_into(&mut decls)?;
                    // Wrap multiple declarators in a block-less sequence.
                    Some(Box::new(if decls.len() == 1 {
                        decls.into_iter().next().unwrap()
                    } else {
                        Stmt::Block(Block { stmts: decls, span })
                    }))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.parse_substmt()?);
                Ok(Stmt::For { init, cond, step, body, span })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue(span))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(value, span))
            }
            TokenKind::Keyword(Keyword::Goto) => {
                Err(self.error("`goto` is not supported (kernels must be structured programs)"))
            }
            TokenKind::Keyword(Keyword::Switch) => {
                Err(self.error("`switch` is not supported; use `if`/`else` chains"))
            }
            TokenKind::Ident(name) if name == "barrier" || name == "mem_fence" => {
                // barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE)
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let flags = self.parse_fence_flags()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                if name == "mem_fence" {
                    // A mem_fence does not synchronize work-items; within a
                    // single in-order datapath it is a no-op.
                    Ok(Stmt::Empty(span))
                } else {
                    Ok(Stmt::Barrier { flags, span })
                }
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Statement in `if`/loop position; declarations are not allowed.
    fn parse_substmt(&mut self) -> Result<Stmt> {
        if self.at_type() {
            return Err(self.error("declaration must be inside a block"));
        }
        self.parse_stmt()
    }

    fn parse_fence_flags(&mut self) -> Result<u32> {
        let mut flags = 0u32;
        loop {
            match self.bump() {
                TokenKind::Ident(f) if f == "CLK_LOCAL_MEM_FENCE" => flags |= 1,
                TokenKind::Ident(f) if f == "CLK_GLOBAL_MEM_FENCE" => flags |= 2,
                TokenKind::IntLit { value, .. } => flags |= value as u32,
                other => {
                    return Err(self.error(format!("expected memory fence flag, found {other}")))
                }
            }
            if !self.eat_punct(Punct::Pipe) {
                return Ok(flags);
            }
        }
    }

    // ---- Expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        let mut e = self.parse_assign_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.parse_assign_expr()?;
            let span = e.span.merge(rhs.span);
            e = Expr {
                id: self.node_id(),
                kind: ExprKind::Comma { lhs: Box::new(e), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(e)
    }

    fn parse_assign_expr(&mut self) -> Result<Expr> {
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusEq) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarEq) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashEq) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AmpEq) => Some(Some(BinOp::And)),
            TokenKind::Punct(Punct::PipeEq) => Some(Some(BinOp::Or)),
            TokenKind::Punct(Punct::CaretEq) => Some(Some(BinOp::Xor)),
            TokenKind::Punct(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_assign_expr()?;
            let span = lhs.span.merge(rhs.span);
            Ok(Expr {
                id: self.node_id(),
                kind: ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_conditional(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.parse_assign_expr()?;
            self.expect_punct(Punct::Colon)?;
            let els = self.parse_conditional()?;
            let span = cond.span.merge(els.span);
            Ok(Expr {
                id: self.node_id(),
                kind: ExprKind::Conditional {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct(Punct::PipePipe) => (BinOp::LogOr, 1),
                TokenKind::Punct(Punct::AmpAmp) => (BinOp::LogAnd, 2),
                TokenKind::Punct(Punct::Pipe) => (BinOp::Or, 3),
                TokenKind::Punct(Punct::Caret) => (BinOp::Xor, 4),
                TokenKind::Punct(Punct::Amp) => (BinOp::And, 5),
                TokenKind::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 6),
                TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
                TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
                TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
                TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
                TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
                TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
                TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
                TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
                TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
                TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
                TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                id: self.node_id(),
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let span = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Unary { op: UnOp::Neg, operand }
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Unary { op: UnOp::Plus, operand }
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Unary { op: UnOp::Not, operand }
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Unary { op: UnOp::LogNot, operand }
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Deref(operand)
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::AddrOf(operand)
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::IncDec { inc: true, pre: true, operand }
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let operand = Box::new(self.parse_unary()?);
                ExprKind::IncDec { inc: false, pre: true, operand }
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let (ty, _) = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                ExprKind::SizeOf(ty)
            }
            // Cast: `(` type `)` unary — distinguished from parenthesized
            // expressions by whether a type follows the `(`.
            TokenKind::Punct(Punct::LParen) if self.at_type_at(1) => {
                self.bump();
                let (ty, _) = self.parse_type()?;
                self.expect_punct(Punct::RParen)?;
                let operand = Box::new(self.parse_unary()?);
                ExprKind::Cast { ty, operand }
            }
            _ => return self.parse_postfix(),
        };
        let span = span.merge(self.prev_span());
        Ok(Expr { id: self.node_id(), kind, span })
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let span = e.span;
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.parse_expr()?;
                    let end = self.expect_punct(Punct::RBracket)?;
                    e = Expr {
                        id: self.node_id(),
                        kind: ExprKind::Index { base: Box::new(e), index: Box::new(index) },
                        span: span.merge(end),
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    e = Expr {
                        id: self.node_id(),
                        kind: ExprKind::IncDec { inc: true, pre: false, operand: Box::new(e) },
                        span: span.merge(self.prev_span()),
                    };
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    e = Expr {
                        id: self.node_id(),
                        kind: ExprKind::IncDec { inc: false, pre: false, operand: Box::new(e) },
                        span: span.merge(self.prev_span()),
                    };
                }
                TokenKind::Punct(Punct::Dot) | TokenKind::Punct(Punct::Arrow) => {
                    return Err(self.error(
                        "member access is not supported (struct types are outside the subset)",
                    ));
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.span();
        let kind = match self.bump() {
            TokenKind::IntLit { value, unsigned, long } => {
                ExprKind::IntLit { value, unsigned, long }
            }
            TokenKind::FloatLit { value, is_double } => ExprKind::FloatLit { value, is_double },
            TokenKind::CharLit(v) => {
                ExprKind::IntLit { value: v as u64, unsigned: false, long: false }
            }
            TokenKind::Ident(name) => {
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assign_expr()?);
                            if self.eat_punct(Punct::RParen) {
                                break;
                            }
                            self.expect_punct(Punct::Comma)?;
                        }
                    }
                    ExprKind::Call { name, args }
                } else {
                    ExprKind::Ident(name)
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                return Ok(e);
            }
            other => return Err(self.error(format!("expected expression, found {other}"))),
        };
        let span = span.merge(self.prev_span());
        Ok(Expr { id: self.node_id(), kind, span })
    }
}

/// Best-effort constant evaluation of an expression to a `u64`, used for
/// array lengths. Supports literals and `+ - * / % << >>` over them.
pub fn const_eval_u64(e: &Expr) -> Option<u64> {
    match &e.kind {
        ExprKind::IntLit { value, .. } => Some(*value),
        ExprKind::Binary { op, lhs, rhs } => {
            let a = const_eval_u64(lhs)?;
            let b = const_eval_u64(rhs)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => a.checked_div(b)?,
                BinOp::Rem => a.checked_rem(b)?,
                BinOp::Shl => a.wrapping_shl(b as u32),
                BinOp::Shr => a.wrapping_shr(b as u32),
                _ => return None,
            })
        }
        ExprKind::Unary { op: UnOp::Plus, operand } => const_eval_u64(operand),
        ExprKind::Cast { operand, .. } => const_eval_u64(operand),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::expr_to_string;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> TranslationUnit {
        parse(lex(src).unwrap()).unwrap()
    }

    fn parse_expr_src(src: &str) -> String {
        let tu = parse_src(&format!("__kernel void k() {{ x = {src}; }}"));
        match &tu.functions[0].body.stmts[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Assign { rhs, .. } => expr_to_string(rhs),
                _ => panic!("expected assignment"),
            },
            other => panic!("expected expr stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_kernel() {
        let tu = parse_src("__kernel void f(__global float* a, int n) { }");
        assert_eq!(tu.functions.len(), 1);
        let f = &tu.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty.to_string(), "__global float*");
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(parse_expr_src("a + b * c"), "(a + (b * c))");
        assert_eq!(parse_expr_src("(a + b) * c"), "((a + b) * c)");
    }

    #[test]
    fn precedence_shift_vs_relational() {
        assert_eq!(parse_expr_src("a << 1 < b"), "((a << 1) < b)");
    }

    #[test]
    fn precedence_logical() {
        assert_eq!(parse_expr_src("a && b || c && d"), "((a && b) || (c && d))");
    }

    #[test]
    fn ternary_is_right_associative() {
        assert_eq!(
            parse_expr_src("a ? b : c ? d : e"),
            "(a ? b : (c ? d : e))"
        );
    }

    #[test]
    fn unary_and_postfix() {
        assert_eq!(parse_expr_src("-a[i]"), "(-a[i])");
        assert_eq!(parse_expr_src("*p + 1"), "((*p) + 1)");
        assert_eq!(parse_expr_src("a++ + ++b"), "((a++) + (++b))");
    }

    #[test]
    fn cast_vs_paren() {
        assert_eq!(parse_expr_src("(float)a"), "((float)a)");
        assert_eq!(parse_expr_src("(a)"), "a");
        assert_eq!(parse_expr_src("(int)(a + b)"), "((int)(a + b))");
    }

    #[test]
    fn call_with_args() {
        assert_eq!(parse_expr_src("fmax(a, b + 1)"), "fmax(a, (b + 1))");
        assert_eq!(parse_expr_src("get_global_id(0)"), "get_global_id(0)");
    }

    #[test]
    fn multi_declarator_splits() {
        let tu = parse_src("__kernel void f() { int a = 1, b, *c; }");
        let decls: Vec<_> = tu.functions[0]
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Decl(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(decls.len(), 3);
        assert!(decls[0].init.is_some());
        assert!(decls[2].ty.is_pointer());
    }

    #[test]
    fn local_array_declaration() {
        let tu = parse_src("__kernel void f() { __local float tile[16][17]; }");
        match &tu.functions[0].body.stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.space, crate::types::AddressSpace::Local);
                assert_eq!(d.ty.size(), 16 * 17 * 4);
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn constant_array_length_expression() {
        let tu = parse_src("__kernel void f() { float t[4*4+2]; }");
        match &tu.functions[0].body.stmts[0] {
            Stmt::Decl(d) => assert_eq!(d.ty.size(), 18 * 4),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn for_loop_with_decl_init() {
        let tu = parse_src("__kernel void f() { for (int i = 0; i < 10; i++) { } }");
        match &tu.functions[0].body.stmts[0] {
            Stmt::For { init, cond, step, .. } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn barrier_becomes_barrier_stmt() {
        let tu = parse_src("__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE); }");
        assert!(matches!(tu.functions[0].body.stmts[0], Stmt::Barrier { flags: 1, .. }));
        let tu = parse_src(
            "__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE); }",
        );
        assert!(matches!(tu.functions[0].body.stmts[0], Stmt::Barrier { flags: 3, .. }));
    }

    #[test]
    fn goto_rejected() {
        let toks = lex("__kernel void f() { goto done; }").unwrap();
        let err = parse(toks).unwrap_err();
        assert!(err.message.contains("goto"));
    }

    #[test]
    fn struct_rejected() {
        let toks = lex("struct S { int a; };").unwrap();
        assert!(parse(toks).is_err());
    }

    #[test]
    fn dangling_else_binds_to_nearest_if() {
        let tu = parse_src("__kernel void f() { if (a) if (b) x = 1; else x = 2; }");
        match &tu.functions[0].body.stmts[0] {
            Stmt::If { els, then, .. } => {
                assert!(els.is_none());
                assert!(matches!(**then, Stmt::If { els: Some(_), .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn comma_in_for_step() {
        let tu = parse_src("__kernel void f() { for (i = 0, j = 9; i < j; i++, j--) { } }");
        assert!(matches!(tu.functions[0].body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn helper_function_parses() {
        let tu = parse_src("float sq(float x) { return x * x; } __kernel void k() { }");
        assert_eq!(tu.functions.len(), 2);
        assert!(!tu.functions[0].is_kernel);
        assert!(tu.functions[1].is_kernel);
    }

    #[test]
    fn attribute_is_skipped() {
        let tu = parse_src(
            "__kernel __attribute__((reqd_work_group_size(64,1,1))) void k() { }",
        );
        assert!(tu.functions[0].is_kernel);
    }

    #[test]
    fn sizeof_type() {
        assert_eq!(parse_expr_src("sizeof(float)"), "sizeof(float)");
    }

    #[test]
    fn unsigned_int_spelling() {
        let tu = parse_src("__kernel void f(unsigned int n) { }");
        assert_eq!(tu.functions[0].params[0].ty, Type::scalar(Scalar::U32));
    }
}
