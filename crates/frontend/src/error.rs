//! Diagnostic errors produced by the frontend.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// The phase of the frontend that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The preprocessor (`#define`, `#ifdef`, ...).
    Preprocess,
    /// The lexer.
    Lex,
    /// The parser.
    Parse,
    /// Semantic analysis (type checking).
    Sema,
    /// IR lowering (performed by `soff-ir`, reported with the same
    /// diagnostic type).
    Lower,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Preprocess => "preprocess",
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
            Phase::Lower => "lower",
        };
        f.write_str(s)
    }
}

/// A frontend diagnostic: a message anchored at a source span.
///
/// This is the error type returned by every fallible public function of
/// `soff-frontend`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
    /// Location of the problem.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a new diagnostic.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            phase,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for Diagnostic {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, Diagnostic>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diagnostic::new(Phase::Parse, "expected `;`", Span::new(0, 1, 3));
        assert_eq!(d.to_string(), "parse error at line 3: expected `;`");
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(Diagnostic::new(Phase::Lex, "x", Span::default()));
    }
}
