//! The type system of the supported OpenCL C subset.

use std::fmt;

/// OpenCL address spaces (§II-B2 of the paper).
///
/// `Constant` is treated as read-only global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// `__global`: shared by the host and all work-items; backed by the
    /// FPGA's external memory through caches.
    Global,
    /// `__local`: shared by work-items of one work-group; backed by
    /// embedded memory blocks.
    Local,
    /// `__private`: private to a work-item.
    Private,
    /// `__constant`: read-only global memory.
    Constant,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Private => "__private",
            AddressSpace::Constant => "__constant",
        };
        f.write_str(s)
    }
}

/// Scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    Bool,
    I8,
    U8,
    I16,
    U16,
    I32,
    U32,
    I64,
    U64,
    F32,
    F64,
}

impl Scalar {
    /// Size of the scalar in bytes.
    pub fn size(self) -> u32 {
        match self {
            Scalar::Bool | Scalar::I8 | Scalar::U8 => 1,
            Scalar::I16 | Scalar::U16 => 2,
            Scalar::I32 | Scalar::U32 | Scalar::F32 => 4,
            Scalar::I64 | Scalar::U64 | Scalar::F64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32 | Scalar::F64)
    }

    /// Whether this is an integer (or bool) type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Whether this is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(self, Scalar::I8 | Scalar::I16 | Scalar::I32 | Scalar::I64)
    }

    /// The usual-arithmetic-conversions rank, mirroring C integer
    /// promotion rules (floats rank above all integers).
    pub fn rank(self) -> u32 {
        match self {
            Scalar::Bool => 0,
            Scalar::I8 | Scalar::U8 => 1,
            Scalar::I16 | Scalar::U16 => 2,
            Scalar::I32 | Scalar::U32 => 3,
            Scalar::I64 | Scalar::U64 => 4,
            Scalar::F32 => 5,
            Scalar::F64 => 6,
        }
    }

    /// Result type of a binary arithmetic operation between two scalars,
    /// following C's usual arithmetic conversions (with everything below
    /// `int` promoted to `int`).
    pub fn unify(a: Scalar, b: Scalar) -> Scalar {
        if a == b {
            return promote(a);
        }
        let (hi, lo) = if a.rank() >= b.rank() { (a, b) } else { (b, a) };
        if hi.is_float() {
            return hi;
        }
        let hi = promote(hi);
        let lo = promote(lo);
        if hi.rank() == lo.rank() {
            // Same rank, mixed signedness: unsigned wins.
            if !hi.is_signed() || !lo.is_signed() {
                return if hi.is_signed() { lo } else { hi };
            }
        }
        hi
    }
}

/// C integer promotion: anything smaller than `int` becomes `int`.
pub fn promote(s: Scalar) -> Scalar {
    match s {
        Scalar::Bool | Scalar::I8 | Scalar::I16 => Scalar::I32,
        Scalar::U8 | Scalar::U16 => Scalar::I32,
        other => other,
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scalar::Bool => "bool",
            Scalar::I8 => "char",
            Scalar::U8 => "uchar",
            Scalar::I16 => "short",
            Scalar::U16 => "ushort",
            Scalar::I32 => "int",
            Scalar::U32 => "uint",
            Scalar::I64 => "long",
            Scalar::U64 => "ulong",
            Scalar::F32 => "float",
            Scalar::F64 => "double",
        };
        f.write_str(s)
    }
}

/// A type in the OpenCL C subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` (function return only).
    Void,
    /// A scalar value.
    Scalar(Scalar),
    /// A pointer to `elem` in `space`.
    Pointer {
        /// Address space of the pointee.
        space: AddressSpace,
        /// Pointee type.
        elem: Box<Type>,
    },
    /// A fixed-size array (only as a declared variable type, it decays to a
    /// pointer in expressions).
    Array {
        /// Element type.
        elem: Box<Type>,
        /// Number of elements.
        len: u64,
    },
}

impl Type {
    /// Shorthand for a scalar type.
    pub fn scalar(s: Scalar) -> Type {
        Type::Scalar(s)
    }

    /// Shorthand for a pointer type.
    pub fn pointer(space: AddressSpace, elem: Type) -> Type {
        Type::Pointer { space, elem: Box::new(elem) }
    }

    /// Size of a value of this type in bytes.
    ///
    /// Pointers are 8 bytes (addresses are 64-bit in the simulated
    /// machine). `void` has size 0.
    pub fn size(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Scalar(s) => s.size() as u64,
            Type::Pointer { .. } => 8,
            Type::Array { elem, len } => elem.size() * len,
        }
    }

    /// Returns the scalar kind if this is a scalar type.
    pub fn as_scalar(&self) -> Option<Scalar> {
        match self {
            Type::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether this type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer { .. })
    }

    /// Whether this type can appear in a boolean context.
    pub fn is_condition(&self) -> bool {
        matches!(self, Type::Scalar(_) | Type::Pointer { .. })
    }

    /// The type this decays to when used as an expression: arrays decay to
    /// pointers to their element type. The caller supplies the address
    /// space the array lives in.
    pub fn decayed(&self, space: AddressSpace) -> Type {
        match self {
            Type::Array { elem, .. } => Type::pointer(space, (**elem).clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Pointer { space, elem } => write!(f, "{space} {elem}*"),
            Type::Array { elem, len } => write!(f, "{elem}[{len}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Scalar::I32.size(), 4);
        assert_eq!(Scalar::F64.size(), 8);
        assert_eq!(Type::pointer(AddressSpace::Global, Type::scalar(Scalar::F32)).size(), 8);
        assert_eq!(
            Type::Array { elem: Box::new(Type::scalar(Scalar::I16)), len: 10 }.size(),
            20
        );
    }

    #[test]
    fn unify_promotes_small_ints() {
        assert_eq!(Scalar::unify(Scalar::I8, Scalar::I8), Scalar::I32);
        assert_eq!(Scalar::unify(Scalar::U16, Scalar::I16), Scalar::I32);
    }

    #[test]
    fn unify_prefers_float() {
        assert_eq!(Scalar::unify(Scalar::I64, Scalar::F32), Scalar::F32);
        assert_eq!(Scalar::unify(Scalar::F32, Scalar::F64), Scalar::F64);
    }

    #[test]
    fn unify_mixed_signedness_same_rank() {
        assert_eq!(Scalar::unify(Scalar::I32, Scalar::U32), Scalar::U32);
        assert_eq!(Scalar::unify(Scalar::U64, Scalar::I64), Scalar::U64);
    }

    #[test]
    fn array_decays_to_pointer() {
        let arr = Type::Array { elem: Box::new(Type::scalar(Scalar::F32)), len: 8 };
        let dec = arr.decayed(AddressSpace::Local);
        assert_eq!(dec, Type::pointer(AddressSpace::Local, Type::scalar(Scalar::F32)));
        // Non-arrays are unchanged.
        assert_eq!(Type::scalar(Scalar::I32).decayed(AddressSpace::Private), Type::scalar(Scalar::I32));
    }

    #[test]
    fn display() {
        assert_eq!(
            Type::pointer(AddressSpace::Global, Type::scalar(Scalar::F32)).to_string(),
            "__global float*"
        );
    }
}
