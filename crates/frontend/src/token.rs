//! Token definitions for the OpenCL C lexer.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or a keyword that is not reserved by the subset
    /// (keywords are distinguished in [`Keyword`]).
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer literal, already folded to its value, plus a flag for
    /// whether a `u`/`U` suffix or `l`/`L` suffix appeared.
    IntLit { value: u64, unsigned: bool, long: bool },
    /// A floating-point literal. `is_double` is false when an `f`/`F`
    /// suffix appeared.
    FloatLit { value: f64, is_double: bool },
    /// A character literal, as its integer value.
    CharLit(i64),
    /// A string literal (only used in diagnostics; kernels cannot use them).
    StrLit(String),
    /// A punctuator or operator, e.g. `+=`, `<<`, `(`.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved keywords of the supported OpenCL C subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Void,
    Bool,
    Char,
    Uchar,
    Short,
    Ushort,
    Int,
    Uint,
    Long,
    Ulong,
    Float,
    Double,
    SizeT,
    If,
    Else,
    For,
    While,
    Do,
    Break,
    Continue,
    Return,
    Kernel,
    Global,
    Local,
    Constant,
    Private,
    Const,
    Restrict,
    Volatile,
    Unsigned,
    Signed,
    Sizeof,
    Struct,
    Typedef,
    Goto,
    Switch,
    Case,
    Default,
    Static,
    Inline,
}

impl Keyword {
    /// Looks up a keyword from its identifier spelling, including the
    /// double-underscore OpenCL qualifier spellings (`__kernel` etc.).
    // Not `FromStr`: lookup failure is ordinary (any identifier), not an error.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "void" => Void,
            "bool" => Bool,
            "char" => Char,
            "uchar" => Uchar,
            "short" => Short,
            "ushort" => Ushort,
            "int" => Int,
            "uint" => Uint,
            "long" => Long,
            "ulong" => Ulong,
            "float" => Float,
            "double" => Double,
            "size_t" => SizeT,
            "if" => If,
            "else" => Else,
            "for" => For,
            "while" => While,
            "do" => Do,
            "break" => Break,
            "continue" => Continue,
            "return" => Return,
            "kernel" | "__kernel" => Kernel,
            "global" | "__global" => Global,
            "local" | "__local" => Local,
            "constant" | "__constant" => Constant,
            "private" | "__private" => Private,
            "const" => Const,
            "restrict" | "__restrict" => Restrict,
            "volatile" => Volatile,
            "unsigned" => Unsigned,
            "signed" => Signed,
            "sizeof" => Sizeof,
            "struct" => Struct,
            "typedef" => Typedef,
            "goto" => Goto,
            "switch" => Switch,
            "case" => Case,
            "default" => Default,
            "static" => Static,
            "inline" | "__inline" => Inline,
            _ => return None,
        })
    }
}

/// Punctuators and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Dot,
    Arrow,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Punct::*;
        let s = match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Shl => "<<",
            Shr => ">>",
            Assign => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            PlusPlus => "++",
            MinusMinus => "--",
            Dot => ".",
            Arrow => "->",
        };
        f.write_str(s)
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::IntLit { value, .. } => write!(f, "integer literal `{value}`"),
            TokenKind::FloatLit { value, .. } => write!(f, "float literal `{value}`"),
            TokenKind::CharLit(v) => write!(f, "char literal `{v}`"),
            TokenKind::StrLit(s) => write!(f, "string literal {s:?}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_handles_opencl_spellings() {
        assert_eq!(Keyword::from_str("__kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_str("kernel"), Some(Keyword::Kernel));
        assert_eq!(Keyword::from_str("__global"), Some(Keyword::Global));
        assert_eq!(Keyword::from_str("nonsense"), None);
    }

    #[test]
    fn punct_display_roundtrip() {
        assert_eq!(Punct::ShlEq.to_string(), "<<=");
        assert_eq!(Punct::Arrow.to_string(), "->");
    }

    #[test]
    fn token_kind_display() {
        let t = TokenKind::Ident("foo".into());
        assert_eq!(t.to_string(), "identifier `foo`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
