//! Source locations and spans used by the lexer, parser, and diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into the preprocessed source text,
/// together with the 1-based line number of its start.
///
/// Spans are attached to every token and AST node so that semantic errors
/// can point back at the offending source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span { start, end, line }
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line number is taken from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (start, line) = if self.start <= other.start {
            (self.start, self.line)
        } else {
            (other.start, other.line)
        };
        Span {
            start,
            end: self.end.max(other.end),
            line,
        }
    }

    /// Extracts the source text this span covers.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start as usize..(self.end as usize).min(source.len())]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_start() {
        let a = Span::new(10, 20, 2);
        let b = Span::new(5, 12, 1);
        let m = a.merge(b);
        assert_eq!(m, Span::new(5, 20, 1));
        let m2 = b.merge(a);
        assert_eq!(m2, Span::new(5, 20, 1));
    }

    #[test]
    fn text_slices_source() {
        let src = "hello world";
        let s = Span::new(6, 11, 1);
        assert_eq!(s.text(src), "world");
    }

    #[test]
    fn display_shows_line() {
        assert_eq!(Span::new(0, 1, 7).to_string(), "line 7");
    }
}
