//! Abstract syntax tree for the OpenCL C subset.
//!
//! Every expression node carries a unique [`NodeId`] assigned by the parser;
//! semantic analysis records the computed type of each expression in a side
//! table keyed by that id (see `crate::sema::Analysis::types`).

use crate::span::Span;
use crate::types::{AddressSpace, Type};

/// Unique id of an expression node within one translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A whole translation unit: the functions defined in the kernel source.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    /// All function definitions, kernels and helpers alike, in source order.
    pub functions: Vec<Function>,
    /// Number of expression ids handed out (the capacity the type map needs).
    pub num_nodes: u32,
}

impl TranslationUnit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Iterates over the `__kernel` functions.
    pub fn kernels(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.is_kernel)
    }
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Whether it was declared `__kernel`.
    pub is_kernel: bool,
    /// Return type (always `void` for kernels).
    pub ret: Type,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// The body.
    pub body: Block,
    /// Span of the function header.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (after array-to-pointer decay).
    pub ty: Type,
    /// Span of the declaration.
    pub span: Span,
}

/// A brace-delimited block of statements.
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span of the whole block.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A local variable declaration.
    Decl(Decl),
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// An empty statement (`;`).
    Empty(Span),
    /// A nested block.
    Block(Block),
    /// `if (cond) then else els`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken when the condition is non-zero.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
        /// Span of the `if` keyword.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Span of the `while` keyword.
        span: Span,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition, evaluated after the body.
        cond: Expr,
        /// Span of the `do` keyword.
        span: Span,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init clause (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Optional condition; absent means `true`.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
        /// Span of the `for` keyword.
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return expr?;`
    Return(Option<Expr>, Span),
    /// A `barrier(flags)` call; recognized specially because it affects
    /// basic-block construction (§III-C2: a barrier is a block leader).
    Barrier {
        /// The `CLK_*_MEM_FENCE` flag bits.
        flags: u32,
        /// Span of the call.
        span: Span,
    },
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl(d) => d.span,
            Stmt::Expr(e) => e.span,
            Stmt::Empty(s) => *s,
            Stmt::Block(b) => b.span,
            Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::For { span, .. } => *span,
            Stmt::Break(s) | Stmt::Continue(s) => *s,
            Stmt::Return(_, s) => *s,
            Stmt::Barrier { span, .. } => *span,
        }
    }
}

/// A local variable declaration. One `Decl` per declarator, so
/// `int a, b;` parses into two `Decl`s.
#[derive(Debug, Clone)]
pub struct Decl {
    /// Unique node id (shared id space with expressions), used to key
    /// resolution tables.
    pub id: NodeId,
    /// Variable name.
    pub name: String,
    /// Declared type (arrays keep their array type here).
    pub ty: Type,
    /// Address space (`__local` or `__private`).
    pub space: AddressSpace,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Span of the declarator.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Whether the operator yields a boolean-ish `int` result.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Bitwise complement `~x`.
    Not,
    /// Logical negation `!x`.
    LogNot,
    /// Unary plus `+x` (no-op, kept for fidelity).
    Plus,
}

/// An expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// Unique id for the side type table.
    pub id: NodeId,
    /// The expression itself.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal (value, suffix-derived signedness/width hints).
    IntLit { value: u64, unsigned: bool, long: bool },
    /// Floating literal.
    FloatLit { value: f64, is_double: bool },
    /// Named variable or parameter reference.
    Ident(String),
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Assignment `lhs = rhs` or compound `lhs op= rhs` (`op` is `Some`).
    Assign { op: Option<BinOp>, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Pre/post increment/decrement.
    IncDec { inc: bool, pre: bool, operand: Box<Expr> },
    /// Ternary conditional `c ? t : e`.
    Conditional { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// Array indexing `base[index]`.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Pointer dereference `*ptr`.
    Deref(Box<Expr>),
    /// Address-of `&lvalue`.
    AddrOf(Box<Expr>),
    /// Explicit cast `(type)expr`.
    Cast { ty: Type, operand: Box<Expr> },
    /// A function call, either a user function or a builtin.
    Call { name: String, args: Vec<Expr> },
    /// `sizeof(type)`.
    SizeOf(Type),
    /// Comma operator `a, b`.
    Comma { lhs: Box<Expr>, rhs: Box<Expr> },
}

/// Pretty-prints an expression back to (parenthesized) source form.
///
/// Used by tests to check parser shapes and by diagnostics.
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit { value, .. } => value.to_string(),
        ExprKind::FloatLit { value, .. } => format!("{value:?}"),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr_to_string(lhs), binop_str(*op), expr_to_string(rhs))
        }
        ExprKind::Unary { op, operand } => {
            let s = match op {
                UnOp::Neg => "-",
                UnOp::Not => "~",
                UnOp::LogNot => "!",
                UnOp::Plus => "+",
            };
            format!("({s}{})", expr_to_string(operand))
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let opstr = op.map(|o| format!("{}=", binop_str(o))).unwrap_or_else(|| "=".into());
            format!("({} {} {})", expr_to_string(lhs), opstr, expr_to_string(rhs))
        }
        ExprKind::IncDec { inc, pre, operand } => {
            let s = if *inc { "++" } else { "--" };
            if *pre {
                format!("({s}{})", expr_to_string(operand))
            } else {
                format!("({}{s})", expr_to_string(operand))
            }
        }
        ExprKind::Conditional { cond, then, els } => format!(
            "({} ? {} : {})",
            expr_to_string(cond),
            expr_to_string(then),
            expr_to_string(els)
        ),
        ExprKind::Index { base, index } => {
            format!("{}[{}]", expr_to_string(base), expr_to_string(index))
        }
        ExprKind::Deref(p) => format!("(*{})", expr_to_string(p)),
        ExprKind::AddrOf(p) => format!("(&{})", expr_to_string(p)),
        ExprKind::Cast { ty, operand } => format!("(({ty}){})", expr_to_string(operand)),
        ExprKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", args.join(", "))
        }
        ExprKind::SizeOf(ty) => format!("sizeof({ty})"),
        ExprKind::Comma { lhs, rhs } => {
            format!("({}, {})", expr_to_string(lhs), expr_to_string(rhs))
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}
