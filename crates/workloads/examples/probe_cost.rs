use soff_datapath::{resource, Datapath, LatencyModel};
fn main() {
    for app in soff_workloads::all_apps() {
        if !["122.cfd", "128.heartwall", "140.bplustree"].contains(&app.name) { continue; }
        let parsed = soff_frontend::compile(app.source, &[]).unwrap();
        let module = soff_ir::build::lower(&parsed).unwrap();
        for k in &module.kernels {
            let dp = Datapath::build(k, &LatencyModel::default());
            let cost = resource::datapath_cost_full(&dp, 2, k.local_vars.iter().map(|v| v.size).sum(), dp.wg_slots, k.private_bytes);
            println!("{} / {}: priv={}B l_datapath={} cost = {} (cap A membits = {:.1}Mb)",
                app.name, k.name, k.private_bytes, dp.l_datapath, cost, resource::SYSTEM_A.capacity.membits/1e6);
        }
    }
}
