//! The parallel sweep driver: fans app × framework cells across the
//! `soff-exec` work-stealing pool and reassembles results in
//! deterministic input order.
//!
//! Every cell is an independent simulation — it builds (or fetches from
//! the compile cache) its own program, allocates its own context and
//! global memory, and verifies its own outputs — so cells can run on
//! any thread in any order without observable effect. The driver adds
//! two optimizations on top of the raw pool:
//!
//! * **Identical-cell memoization** ([`SweepOptions::dedup`]): the §VI
//!   evaluation re-runs the same (app, framework, scale) cell in
//!   several tables/figures (Table II, Fig. 11, and Fig. 12 all execute
//!   the SOFF column). Cells are deterministic (seeded inputs, exact
//!   simulation), so duplicates of an executed cell can share its
//!   result. The differential tests pin this soundness claim down: a
//!   deduplicated parallel sweep digests byte-identically to the plain
//!   sequential one.
//! * **Panic containment**: a pool-level task panic (i.e. a bug that
//!   escapes [`execute`]'s own `catch_unwind`) becomes a per-cell
//!   failure row with the panic message attached, never a torn-down
//!   sweep.
//!
//! `jobs = 1` with `dedup` off executes the cells in input order on the
//! calling thread — exactly the sequential loop the bench bins used to
//! contain.

use crate::data::Scale;
use crate::journal::{self, Journal, JournalError, Record};
use crate::{execute, App, AppResult};
use soff_baseline::{Framework, Outcome};
use soff_exec::{CancelFlag, RetryPolicy, TaskCtx, TaskError, TaskOptions};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One sweep cell: run `app` on `fw` at `scale`.
#[derive(Clone, Copy)]
pub struct Cell {
    /// The application.
    pub app: App,
    /// The framework executing it.
    pub fw: Framework,
    /// The problem size.
    pub scale: Scale,
}

impl Cell {
    /// Builds a cell.
    pub fn new(app: App, fw: Framework, scale: Scale) -> Cell {
        Cell { app, fw, scale }
    }

    /// The memoization identity of this cell. Apps are identified by
    /// their (unique, static) name; the host program and source are
    /// functions of it. Defines are not part of a [`Cell`] — cells
    /// always build with the app's source verbatim.
    fn key(&self) -> (&'static str, Framework, Scale) {
        (self.app.name, self.fw, self.scale)
    }
}

/// The outcome of one cell, tagged with enough identity to print a row.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Application name.
    pub app: &'static str,
    /// Framework the cell ran on.
    pub fw: Framework,
    /// The execution result (a failure row if the task panicked).
    pub result: AppResult,
    /// The panic message, when the pool had to contain a task panic.
    pub panic: Option<String>,
    /// `Some(i)` when this cell's result was shared from the identical
    /// cell at input index `i` instead of being re-executed.
    pub memo_of: Option<usize>,
    /// Attempts the cell took under [`SweepOptions::retry`] (1 = first
    /// try, whether fresh or replayed).
    pub attempts: u32,
    /// The result was replayed from the resume journal instead of
    /// executed (its `wall_seconds` is zero).
    pub from_journal: bool,
    /// The cell never ran: the sweep was cancelled before it started.
    /// Its row is a placeholder and the sweep output is partial.
    pub cancelled: bool,
}

/// How to run a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; 1 runs sequentially on the caller's thread.
    pub jobs: usize,
    /// Share results between identical cells instead of re-executing.
    pub dedup: bool,
    /// Crash-recovery journal: completed cells are durably appended to
    /// this file, and an existing file (from a killed run of the *same*
    /// sweep) is replayed first, skipping its cells. Only honored by the
    /// fallible entry points ([`run_cells_resumable`],
    /// [`run_suite_resumable`]).
    pub journal: Option<PathBuf>,
    /// Pool-wide cooperative cancellation: raised mid-sweep, cells that
    /// have not started come back as `cancelled` placeholder rows.
    pub cancel: Option<CancelFlag>,
    /// Retry cells whose outcome is transient (`RE`/`H` — e.g. wedged by
    /// an injected fault window) with bounded deterministic backoff.
    pub retry: Option<RetryPolicy>,
    /// Wall-clock budget per cell, bounding retries.
    pub task_deadline: Option<Duration>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            jobs: soff_exec::default_jobs(),
            dedup: true,
            journal: None,
            cancel: None,
            retry: None,
            task_deadline: None,
        }
    }
}

impl SweepOptions {
    /// The exact legacy path: one cell after another, every duplicate
    /// re-executed.
    pub fn sequential() -> SweepOptions {
        SweepOptions { jobs: 1, dedup: false, ..SweepOptions::default() }
    }
}

/// The journal/replay key of a cell (`Debug` renderings are stable for
/// these field-less enums).
fn key_strings(cell: &Cell) -> (String, String, String) {
    (cell.app.name.to_string(), format!("{:?}", cell.fw), format!("{:?}", cell.scale))
}

/// The identity of a sweep: the FNV-1a hash of its ordered cell keys. A
/// resume journal must carry this exact identity — a journal from a
/// different sweep (different cells or a different order) is stale.
///
/// **What is deliberately *excluded*:** run-control knobs — the
/// simulator scheduler ([`soff_sim::Scheduler`]) and the preemption
/// checkpoint interval (`Context::checkpoint_interval`), and with them
/// the serve layer's slice length. The determinism contract (enforced by
/// the `checkpoint_apps` and serve test suites) makes every digest-
/// visible field of an [`AppResult`] invariant under those knobs, so a
/// journal written under one configuration is *valid* to resume under
/// another: rows replayed from the journal and rows recomputed under the
/// new knobs combine into the same digest an uninterrupted run produces.
/// Keying them would needlessly strand journals across a knob change;
/// the `resume_across_run_control_knob_change` regression test pins this
/// invariant. Anything that *does* change results (app set, framework,
/// scale, cell order) must go through [`Cell::key`] and therefore this
/// hash.
pub fn sweep_identity(cells: &[Cell]) -> u64 {
    let mut desc = String::new();
    for cell in cells {
        let (app, fw, scale) = key_strings(cell);
        writeln!(desc, "{app}|{fw}|{scale}").expect("writing to a String cannot fail");
    }
    journal::fnv1a(desc.as_bytes())
}

/// The placeholder row for a cell that produced no value (contained
/// panic, or cancelled before it started).
fn failure_row() -> AppResult {
    AppResult {
        outcome: Outcome::RuntimeError,
        seconds: 0.0,
        cycles: 0,
        launches: 0,
        replication: 0,
        wall_seconds: 0.0,
    }
}

/// A sweep cell's transient-failure predicate for the retry policy:
/// wedges and runtime errors can be injected-fault artifacts a later
/// attempt dodges; compile errors, wrong answers, and capacity failures
/// are deterministic and retrying them is wasted work.
fn transient(r: &AppResult) -> bool {
    matches!(r.outcome, Outcome::RuntimeError | Outcome::Hang)
}

/// Runs every cell and returns results **in input order**, honoring
/// every [`SweepOptions`] knob except the journal (see
/// [`run_cells_resumable`]). Infallible, like the sequential loop it
/// replaces: failures become per-cell rows.
pub fn run_cells(cells: &[Cell], opts: &SweepOptions) -> Vec<CellResult> {
    let opts = SweepOptions { journal: None, ..opts.clone() };
    run_cells_with(cells, &opts, |cell, _| execute(&cell.app, cell.fw, cell.scale))
        .expect("a journal-free sweep cannot fail")
}

/// [`run_cells`] with crash recovery: when [`SweepOptions::journal`] is
/// set, completed cells are durably appended to the journal as they
/// finish, and an existing journal from a killed run of the same sweep
/// is replayed first (its cells are skipped, byte-identically). The
/// executor is [`execute`]; tests inject their own via
/// [`run_cells_with`].
///
/// # Errors
///
/// [`JournalError`] when the journal cannot be written, belongs to a
/// different sweep, or is damaged beyond a torn tail.
pub fn run_cells_resumable(
    cells: &[Cell],
    opts: &SweepOptions,
) -> Result<Vec<CellResult>, JournalError> {
    run_cells_with(cells, opts, |cell, _| execute(&cell.app, cell.fw, cell.scale))
}

/// The sweep engine, generic over the per-cell executor (the injection
/// point for the crash-recovery tests). The executor receives the cell
/// and the pool's [`TaskCtx`] (attempt number, cancel flag, deadline).
///
/// # Errors
///
/// [`JournalError`] — only when [`SweepOptions::journal`] is set.
pub fn run_cells_with<F>(
    cells: &[Cell],
    opts: &SweepOptions,
    exec: F,
) -> Result<Vec<CellResult>, JournalError>
where
    F: Fn(&Cell, &TaskCtx) -> AppResult + Sync,
{
    // Pick the representative (first occurrence) of each identity.
    let mut rep_of_key: HashMap<(&'static str, Framework, Scale), usize> = HashMap::new();
    let mut rep_index: Vec<usize> = Vec::with_capacity(cells.len()); // cell -> representative cell
    let mut unique: Vec<usize> = Vec::with_capacity(cells.len()); // representative cells, input order
    for (i, cell) in cells.iter().enumerate() {
        if opts.dedup {
            let rep = *rep_of_key.entry(cell.key()).or_insert_with(|| {
                unique.push(i);
                i
            });
            rep_index.push(rep);
        } else {
            unique.push(i);
            rep_index.push(i);
        }
    }

    // Crash recovery: replay an existing journal (same sweep identity),
    // truncate any torn tail, then open it for appending; or start a
    // fresh one. `Journal::recover` does all three — appending directly
    // after a torn tail would merge the next record into the partial
    // line and poison a later resume. Replayed representatives are
    // skipped below.
    let mut replayed: HashMap<(String, String, String), Record> = HashMap::new();
    let journal = match &opts.journal {
        Some(path) => {
            let (records, journal) = Journal::recover(path, sweep_identity(cells))?;
            for r in records {
                // Last record wins: duplicate appends (e.g. a retry
                // race at a kill point) are harmless.
                replayed.insert(r.key(), r);
            }
            Some(journal)
        }
        None => None,
    };

    let todo: Vec<usize> = unique
        .iter()
        .copied()
        .filter(|&i| !replayed.contains_key(&key_strings(&cells[i])))
        .collect();
    let work: Vec<Cell> = todo.iter().map(|&i| cells[i]).collect();

    let topts = TaskOptions {
        cancel: opts.cancel.clone(),
        task_deadline: opts.task_deadline,
        retry: opts.retry,
    };
    // A journal append failing mid-sweep must surface as a typed error,
    // not silently downgrade durability; the first failure wins.
    let append_error: Mutex<Option<JournalError>> = Mutex::new(None);
    let retry = opts.retry;
    let executed = soff_exec::run_tasks_ctl(
        opts.jobs,
        &work,
        &topts,
        |_, cell, ctx| {
            let r = exec(cell, ctx);
            if let Some(j) = &journal {
                // Journal only final attempts: if the pool is about to
                // retry this transient value, the cell has not completed.
                // (The pool re-checks deadline/cancel after us; if it
                // settles where we predicted a retry, the cell is merely
                // missing from the journal and re-runs on resume — safe.)
                let max_attempts = retry.map_or(1, |p| p.max_attempts.max(1));
                let will_retry = ctx.attempt < max_attempts
                    && transient(&r)
                    && !ctx.is_cancelled()
                    && ctx.deadline.is_none_or(|d| Instant::now() < d);
                if !will_retry {
                    let (app, fw, scale) = key_strings(cell);
                    let rec = Record {
                        app,
                        fw,
                        scale,
                        result: r,
                        panicked: false,
                        attempts: ctx.attempt,
                    };
                    if let Err(e) = j.append(&rec) {
                        let mut slot = append_error.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(e);
                    }
                }
            }
            r
        },
        transient,
    );
    if let Some(e) = append_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(e);
    }

    enum Settled {
        Ran(AppResult, u32),
        Panicked(String),
        Cancelled,
    }
    let mut by_rep: HashMap<usize, Settled> = HashMap::with_capacity(unique.len());
    for (slot, &cell_index) in todo.iter().enumerate() {
        let settled = match &executed[slot] {
            Ok(c) => Settled::Ran(c.value, c.attempts),
            Err(TaskError::Panicked { message }) => {
                if let Some(j) = &journal {
                    // A contained panic is still a completed (failed)
                    // cell: journal it post-hoc so a resume does not
                    // re-run a deterministic crash. Best-effort ordering
                    // (the sweep is already past its kill window here).
                    let (app, fw, scale) = key_strings(&cells[cell_index]);
                    let rec = Record {
                        app,
                        fw,
                        scale,
                        result: failure_row(),
                        panicked: true,
                        attempts: 1,
                    };
                    j.append(&rec)?;
                }
                Settled::Panicked(message.clone())
            }
            Err(TaskError::Cancelled) => Settled::Cancelled,
        };
        by_rep.insert(cell_index, settled);
    }

    let rows: Vec<CellResult> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let rep = rep_index[i];
            let memo_of = (rep != i).then_some(rep);
            if let Some(rec) = replayed.get(&key_strings(cell)) {
                return CellResult {
                    app: cell.app.name,
                    fw: cell.fw,
                    result: rec.result,
                    panic: rec.panicked.then(|| "(panic replayed from journal)".to_string()),
                    memo_of,
                    attempts: rec.attempts,
                    from_journal: true,
                    cancelled: false,
                };
            }
            let (result, panic, attempts, cancelled) = match &by_rep[&rep] {
                Settled::Ran(r, attempts) => (*r, None, *attempts, false),
                // A contained pool-level panic: the sweep keeps going,
                // this cell becomes a runtime-error row.
                Settled::Panicked(message) => (failure_row(), Some(message.clone()), 1, false),
                Settled::Cancelled => (failure_row(), None, 0, true),
            };
            CellResult {
                app: cell.app.name,
                fw: cell.fw,
                result,
                panic,
                memo_of,
                attempts,
                from_journal: false,
                cancelled,
            }
        })
        .collect();
    record_sweep_metrics(&rows);
    Ok(rows)
}

/// Folds one finished sweep into the global `soff-obs` counters: cells
/// that produced a row (done), cells that needed more than one attempt
/// (retried), and cells served from a resume journal instead of
/// re-executing (resumed).
fn record_sweep_metrics(rows: &[CellResult]) {
    let r = soff_obs::global();
    let done = rows.iter().filter(|c| !c.cancelled).count() as u64;
    let retried = rows.iter().filter(|c| c.attempts > 1).count() as u64;
    let resumed = rows.iter().filter(|c| c.from_journal).count() as u64;
    r.counter("soff_sweep_cells_done_total", &[]).add(done);
    r.counter("soff_sweep_cells_retried_total", &[]).add(retried);
    r.counter("soff_sweep_cells_resumed_total", &[]).add(resumed);
}

/// Runs the full `apps` × `frameworks` grid (app-major, matching the
/// Table II row order) and returns one [`CellResult`] per cell in that
/// order.
pub fn run_suite_parallel(
    apps: &[App],
    frameworks: &[Framework],
    scale: Scale,
    opts: &SweepOptions,
) -> Vec<CellResult> {
    let cells: Vec<Cell> = apps
        .iter()
        .flat_map(|app| frameworks.iter().map(|&fw| Cell::new(*app, fw, scale)))
        .collect();
    run_cells(&cells, opts)
}

/// [`run_suite_parallel`] with crash recovery: honors
/// [`SweepOptions::journal`] (see [`run_cells_resumable`]).
///
/// # Errors
///
/// [`JournalError`] when the resume journal is unwritable, stale, or
/// damaged beyond a torn tail.
pub fn run_suite_resumable(
    apps: &[App],
    frameworks: &[Framework],
    scale: Scale,
    opts: &SweepOptions,
) -> Result<Vec<CellResult>, JournalError> {
    let cells: Vec<Cell> = apps
        .iter()
        .flat_map(|app| frameworks.iter().map(|&fw| Cell::new(*app, fw, scale)))
        .collect();
    run_cells_resumable(&cells, opts)
}

/// Canonical rendering of a sweep's *deterministic* content: one JSON
/// line per cell covering every field two runs of the same cell must
/// agree on (outcome, device seconds/cycles, launches, replication,
/// whether the cell panicked). Host wall time, panic messages, and
/// memoization provenance are excluded — they legitimately vary between
/// runs. Two sweeps over the same cells are correct iff their digests
/// are byte-identical, which is exactly what the differential tests and
/// the `sweep_speed` bench assert.
pub fn digest(results: &[CellResult]) -> String {
    let mut out = String::new();
    for r in results {
        // f64 `{}` formatting is Rust's shortest round-trip form:
        // deterministic for a deterministic value.
        writeln!(
            out,
            "{{\"app\":\"{}\",\"fw\":\"{}\",\"outcome\":\"{}\",\"seconds\":{},\
             \"cycles\":{},\"launches\":{},\"replication\":{},\"panicked\":{}}}",
            r.app,
            r.fw,
            r.result.outcome.code(),
            r.result.seconds,
            r.result.cycles,
            r.result.launches,
            r.result.replication,
            r.panic.is_some(),
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// The FNV-1a hash of [`digest`] — the one-line fingerprint the bench
/// bins print (`--digest`) so the CI crash-recovery smoke can compare a
/// killed-and-resumed sweep against an uninterrupted one with `grep`.
pub fn digest_fingerprint(results: &[CellResult]) -> u64 {
    journal::fnv1a(digest(results).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn polybench_pair() -> Vec<App> {
        all_apps().into_iter().filter(|a| a.name == "atax" || a.name == "bicg").collect()
    }

    #[test]
    fn dedup_shares_results_between_identical_cells() {
        let apps = polybench_pair();
        let cells = vec![
            Cell::new(apps[0], Framework::Soff, Scale::Small),
            Cell::new(apps[1], Framework::Soff, Scale::Small),
            Cell::new(apps[0], Framework::Soff, Scale::Small), // dup of 0
        ];
        let results =
            run_cells(&cells, &SweepOptions { jobs: 2, dedup: true, ..SweepOptions::default() });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].memo_of, None);
        assert_eq!(results[2].memo_of, Some(0), "third cell shares the first's result");
        assert!(results[0].result.det_eq(&results[2].result));
    }

    #[test]
    fn sequential_and_parallel_digests_agree() {
        let apps = polybench_pair();
        let fws = [Framework::Soff, Framework::IntelLike];
        let seq = run_suite_parallel(&apps, &fws, Scale::Small, &SweepOptions::sequential());
        let par = run_suite_parallel(
            &apps,
            &fws,
            Scale::Small,
            &SweepOptions { jobs: 4, dedup: true, ..SweepOptions::default() },
        );
        assert_eq!(digest(&seq), digest(&par));
    }
}
