//! The parallel sweep driver: fans app × framework cells across the
//! `soff-exec` work-stealing pool and reassembles results in
//! deterministic input order.
//!
//! Every cell is an independent simulation — it builds (or fetches from
//! the compile cache) its own program, allocates its own context and
//! global memory, and verifies its own outputs — so cells can run on
//! any thread in any order without observable effect. The driver adds
//! two optimizations on top of the raw pool:
//!
//! * **Identical-cell memoization** ([`SweepOptions::dedup`]): the §VI
//!   evaluation re-runs the same (app, framework, scale) cell in
//!   several tables/figures (Table II, Fig. 11, and Fig. 12 all execute
//!   the SOFF column). Cells are deterministic (seeded inputs, exact
//!   simulation), so duplicates of an executed cell can share its
//!   result. The differential tests pin this soundness claim down: a
//!   deduplicated parallel sweep digests byte-identically to the plain
//!   sequential one.
//! * **Panic containment**: a pool-level task panic (i.e. a bug that
//!   escapes [`execute`]'s own `catch_unwind`) becomes a per-cell
//!   failure row with the panic message attached, never a torn-down
//!   sweep.
//!
//! `jobs = 1` with `dedup` off executes the cells in input order on the
//! calling thread — exactly the sequential loop the bench bins used to
//! contain.

use crate::data::Scale;
use crate::{execute, App, AppResult};
use soff_baseline::{Framework, Outcome};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One sweep cell: run `app` on `fw` at `scale`.
#[derive(Clone, Copy)]
pub struct Cell {
    /// The application.
    pub app: App,
    /// The framework executing it.
    pub fw: Framework,
    /// The problem size.
    pub scale: Scale,
}

impl Cell {
    /// Builds a cell.
    pub fn new(app: App, fw: Framework, scale: Scale) -> Cell {
        Cell { app, fw, scale }
    }

    /// The memoization identity of this cell. Apps are identified by
    /// their (unique, static) name; the host program and source are
    /// functions of it. Defines are not part of a [`Cell`] — cells
    /// always build with the app's source verbatim.
    fn key(&self) -> (&'static str, Framework, Scale) {
        (self.app.name, self.fw, self.scale)
    }
}

/// The outcome of one cell, tagged with enough identity to print a row.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Application name.
    pub app: &'static str,
    /// Framework the cell ran on.
    pub fw: Framework,
    /// The execution result (a failure row if the task panicked).
    pub result: AppResult,
    /// The panic message, when the pool had to contain a task panic.
    pub panic: Option<String>,
    /// `Some(i)` when this cell's result was shared from the identical
    /// cell at input index `i` instead of being re-executed.
    pub memo_of: Option<usize>,
}

/// How to run a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads; 1 runs sequentially on the caller's thread.
    pub jobs: usize,
    /// Share results between identical cells instead of re-executing.
    pub dedup: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions { jobs: soff_exec::default_jobs(), dedup: true }
    }
}

impl SweepOptions {
    /// The exact legacy path: one cell after another, every duplicate
    /// re-executed.
    pub fn sequential() -> SweepOptions {
        SweepOptions { jobs: 1, dedup: false }
    }
}

/// Runs every cell and returns results **in input order**.
pub fn run_cells(cells: &[Cell], opts: &SweepOptions) -> Vec<CellResult> {
    // Pick the representative (first occurrence) of each identity.
    let mut rep_of_key: HashMap<(&'static str, Framework, Scale), usize> = HashMap::new();
    let mut rep_index: Vec<usize> = Vec::with_capacity(cells.len()); // cell -> representative cell
    let mut unique: Vec<usize> = Vec::with_capacity(cells.len()); // representative cells, input order
    for (i, cell) in cells.iter().enumerate() {
        if opts.dedup {
            let rep = *rep_of_key.entry(cell.key()).or_insert_with(|| {
                unique.push(i);
                i
            });
            rep_index.push(rep);
        } else {
            unique.push(i);
            rep_index.push(i);
        }
    }

    let work: Vec<Cell> = unique.iter().map(|&i| cells[i]).collect();
    let executed = soff_exec::run_tasks(opts.jobs, work, |_, cell: Cell| {
        execute(&cell.app, cell.fw, cell.scale)
    });
    let mut by_rep: HashMap<usize, &Result<AppResult, soff_exec::TaskError>> =
        HashMap::with_capacity(unique.len());
    for (slot, &cell_index) in unique.iter().enumerate() {
        by_rep.insert(cell_index, &executed[slot]);
    }

    cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let rep = rep_index[i];
            let (result, panic) = match by_rep[&rep] {
                Ok(r) => (*r, None),
                // A contained pool-level panic: the sweep keeps going,
                // this cell becomes a runtime-error row.
                Err(soff_exec::TaskError::Panicked { message }) => (
                    AppResult {
                        outcome: Outcome::RuntimeError,
                        seconds: 0.0,
                        cycles: 0,
                        launches: 0,
                        replication: 0,
                        wall_seconds: 0.0,
                    },
                    Some(message.clone()),
                ),
            };
            CellResult {
                app: cell.app.name,
                fw: cell.fw,
                result,
                panic,
                memo_of: (rep != i).then_some(rep),
            }
        })
        .collect()
}

/// Runs the full `apps` × `frameworks` grid (app-major, matching the
/// Table II row order) and returns one [`CellResult`] per cell in that
/// order.
pub fn run_suite_parallel(
    apps: &[App],
    frameworks: &[Framework],
    scale: Scale,
    opts: &SweepOptions,
) -> Vec<CellResult> {
    let cells: Vec<Cell> = apps
        .iter()
        .flat_map(|app| frameworks.iter().map(|&fw| Cell::new(*app, fw, scale)))
        .collect();
    run_cells(&cells, opts)
}

/// Canonical rendering of a sweep's *deterministic* content: one JSON
/// line per cell covering every field two runs of the same cell must
/// agree on (outcome, device seconds/cycles, launches, replication,
/// whether the cell panicked). Host wall time, panic messages, and
/// memoization provenance are excluded — they legitimately vary between
/// runs. Two sweeps over the same cells are correct iff their digests
/// are byte-identical, which is exactly what the differential tests and
/// the `sweep_speed` bench assert.
pub fn digest(results: &[CellResult]) -> String {
    let mut out = String::new();
    for r in results {
        // f64 `{}` formatting is Rust's shortest round-trip form:
        // deterministic for a deterministic value.
        writeln!(
            out,
            "{{\"app\":\"{}\",\"fw\":\"{}\",\"outcome\":\"{}\",\"seconds\":{},\
             \"cycles\":{},\"launches\":{},\"replication\":{},\"panicked\":{}}}",
            r.app,
            r.fw,
            r.result.outcome.code(),
            r.result.seconds,
            r.result.cycles,
            r.result.launches,
            r.result.replication,
            r.panic.is_some(),
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn polybench_pair() -> Vec<App> {
        all_apps().into_iter().filter(|a| a.name == "atax" || a.name == "bicg").collect()
    }

    #[test]
    fn dedup_shares_results_between_identical_cells() {
        let apps = polybench_pair();
        let cells = vec![
            Cell::new(apps[0], Framework::Soff, Scale::Small),
            Cell::new(apps[1], Framework::Soff, Scale::Small),
            Cell::new(apps[0], Framework::Soff, Scale::Small), // dup of 0
        ];
        let results = run_cells(&cells, &SweepOptions { jobs: 2, dedup: true });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].memo_of, None);
        assert_eq!(results[2].memo_of, Some(0), "third cell shares the first's result");
        assert!(results[0].result.det_eq(&results[2].result));
    }

    #[test]
    fn sequential_and_parallel_digests_agree() {
        let apps = polybench_pair();
        let fws = [Framework::Soff, Framework::IntelLike];
        let seq = run_suite_parallel(&apps, &fws, Scale::Small, &SweepOptions::sequential());
        let par =
            run_suite_parallel(&apps, &fws, Scale::Small, &SweepOptions { jobs: 4, dedup: true });
        assert_eq!(digest(&seq), digest(&par));
    }
}
