//! The temporally-blocked stencil family (DESIGN.md §13).
//!
//! Five applications exercising the sliding-window line-buffer path: a
//! plain 5-point `jacobi` smoother plus temporally-blocked variants of
//! the PolyBench stencils (`2dconv`, `3dconv`, `fdtd-2d`, `jacobi`). A
//! blocked kernel applies *t* time steps in a single launch by
//! recomputing the intermediate neighbourhood values instead of storing
//! them — the input is streamed once per *t* steps instead of once per
//! step, which is exactly the access shape the line buffer rewards. The
//! recomputation uses the same f32 expressions and guards as the plain
//! kernels, so every blocked variant is verified against *t* plain
//! host-reference passes.
//!
//! The conv variants' sources are generated (a degree-2 blocked 2D
//! convolution unrolls to 81 guarded loads); the generators emit the
//! same term order as the plain kernels so results stay comparable at
//! the plain apps' tolerances.

use crate::data::{DataGen, Scale};
use crate::runner::{alloc_f32, floats_close, read_f32, Arg, RunError, Runner, SimRunner};
use crate::{App, Features, Suite};
use soff_baseline::{Framework, Outcome};
use soff_ir::NdRange;
use std::sync::OnceLock;

/// All 5 stencil-family applications.
pub fn apps() -> Vec<App> {
    vec![
        app_jacobi(),
        app_jacobi_blocked(),
        app_2dconv_blocked(),
        app_3dconv_blocked(),
        app_fdtd_2d_blocked(),
    ]
}

fn feats() -> Features {
    Features { local: false, barrier: false, atomics: false, window: true }
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// `v`, `(v + k)`, or `(v - k)` — the index style of the plain kernels.
fn idx(v: &str, off: i64) -> String {
    match off {
        0 => v.to_string(),
        o if o > 0 => format!("({v} + {o})"),
        o => format!("({v} - {})", -o),
    }
}

/// A float literal the frontend parses in any operand position.
fn lit(c: f32) -> String {
    if c < 0.0 {
        format!("(-{:?}f)", -c)
    } else {
        format!("{:?}f", c)
    }
}

// ---- jacobi ---------------------------------------------------------------
//
// The 5-point smoother: interior cells average their von Neumann
// neighbourhood, boundary cells copy through (so ping-ponged time steps
// are well defined everywhere).

const JACOBI_SRC: &str = r#"
__kernel void jacobi(__global const float* in, __global float* out, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    float v = in[i * n + j];
    if (i > 0 && i < n - 1 && j > 0 && j < n - 1)
        v = 0.2f * (in[i * n + j] + in[i * n + (j - 1)] + in[i * n + (j + 1)]
                    + in[(i - 1) * n + j] + in[(i + 1) * n + j]);
    out[i * n + j] = v;
}
"#;

/// One host-side jacobi step with the kernel's exact f32 term order.
fn jacobi_ref(input: &[f32], n: usize) -> Vec<f32> {
    let mut out = input.to_vec();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            out[i * n + j] = 0.2
                * (input[i * n + j]
                    + input[i * n + j - 1]
                    + input[i * n + j + 1]
                    + input[(i - 1) * n + j]
                    + input[(i + 1) * n + j]);
        }
    }
    out
}

fn app_jacobi() -> App {
    fn run(r: &mut dyn Runner, scale: Scale) -> Result<bool, RunError> {
        let n = scale.pick(16, 48);
        let t_steps = scale.pick(2, 4);
        let mut g = DataGen::new(0x1acb);
        let input = g.f32s(n * n, -1.0, 1.0);
        let bufs = [alloc_f32(r, &input), alloc_f32(r, &vec![0.0; n * n])];
        let nd = NdRange::dim2([n as u64, n as u64], [8, 8]);
        let mut cur = 0;
        for _ in 0..t_steps {
            r.launch(
                "jacobi",
                &[Arg::Buf(bufs[cur]), Arg::Buf(bufs[1 - cur]), Arg::I32(n as i32)],
                nd,
            )?;
            cur = 1 - cur;
        }
        let got = read_f32(r, bufs[cur]);
        let mut want = input;
        for _ in 0..t_steps {
            want = jacobi_ref(&want, n);
        }
        Ok(floats_close(&got, &want, 1e-4))
    }
    App { name: "jacobi", suite: Suite::Stencil, features: feats(), source: JACOBI_SRC, run }
}

// ---- jacobi-blocked -------------------------------------------------------
//
// Degree-2 temporal blocking: one launch computes two jacobi steps by
// recomputing the step-1 value at the centre and its four neighbours
// (the 13-point diamond of radius 2), each with the plain kernel's
// interior guard and boundary-copy fallback.

fn jacobi5(di: i64, dj: i64) -> String {
    let taps = [(0i64, 0i64), (0, -1), (0, 1), (-1, 0), (1, 0)];
    let terms: Vec<String> = taps
        .iter()
        .map(|&(a, b)| format!("in[{} * n + {}]", idx("i", di + a), idx("j", dj + b)))
        .collect();
    format!("0.2f * ({})", terms.join("\n                      + "))
}

fn interior(di: i64, dj: i64) -> String {
    format!(
        "{0} > 0 && {0} < n - 1 && {1} > 0 && {1} < n - 1",
        idx("i", di),
        idx("j", dj)
    )
}

fn gen_jacobi_blocked() -> String {
    let mut s = String::from(
        "__kernel void jacobi2(__global const float* in, __global float* out, int n) {\n\
         \x20   int i = get_global_id(0);\n\
         \x20   int j = get_global_id(1);\n\
         \x20   float r = in[i * n + j];\n\
         \x20   if (i > 0 && i < n - 1 && j > 0 && j < n - 1) {\n",
    );
    let name = |d: i64| match d {
        -1 => "m",
        0 => "z",
        _ => "p",
    };
    let taps = [(0i64, 0i64), (0, -1), (0, 1), (-1, 0), (1, 0)];
    let mut sum = Vec::new();
    for &(a, b) in &taps {
        let t = format!("t_{}{}", name(a), name(b));
        s += &format!(
            "        float {t} = in[{} * n + {}];\n\
             \x20       if ({}) {t} = {};\n",
            idx("i", a),
            idx("j", b),
            interior(a, b),
            jacobi5(a, b),
        );
        sum.push(t);
    }
    s += &format!("        r = 0.2f * ({});\n    }}\n    out[i * n + j] = r;\n}}\n", sum.join(" + "));
    s
}

fn jacobi_blocked_src() -> &'static str {
    static SRC: OnceLock<&'static str> = OnceLock::new();
    SRC.get_or_init(|| leak(gen_jacobi_blocked()))
}

fn app_jacobi_blocked() -> App {
    fn run(r: &mut dyn Runner, scale: Scale) -> Result<bool, RunError> {
        let n = scale.pick(16, 48);
        let t_steps = scale.pick(2, 4);
        let mut g = DataGen::new(0x1acb);
        let input = g.f32s(n * n, -1.0, 1.0);
        let bufs = [alloc_f32(r, &input), alloc_f32(r, &vec![0.0; n * n])];
        let nd = NdRange::dim2([n as u64, n as u64], [8, 8]);
        let mut cur = 0;
        for _ in 0..t_steps / 2 {
            r.launch(
                "jacobi2",
                &[Arg::Buf(bufs[cur]), Arg::Buf(bufs[1 - cur]), Arg::I32(n as i32)],
                nd,
            )?;
            cur = 1 - cur;
        }
        let got = read_f32(r, bufs[cur]);
        let mut want = input;
        for _ in 0..t_steps {
            want = jacobi_ref(&want, n);
        }
        Ok(floats_close(&got, &want, 1e-4))
    }
    App {
        name: "jacobi-blocked",
        suite: Suite::Stencil,
        features: feats(),
        source: jacobi_blocked_src(),
        run,
    }
}

// ---- 2dconv-blocked -------------------------------------------------------
//
// conv(conv(in)) in one launch: the step-1 value at each of the nine
// neighbours is recomputed with the plain 9-tap formula (zero outside
// the interior — the plain app leaves its zero-initialised output
// untouched there), then combined with the same coefficients. 81 loads,
// 25 distinct taps — a 5×5 sliding window.

const C2: [[f32; 3]; 3] = [[0.2, -0.3, 0.4], [0.5, 0.6, -0.7], [-0.8, -0.9, 0.1]];

fn conv9(di: i64, dj: i64) -> String {
    let mut terms = Vec::new();
    for (a, row) in C2.iter().enumerate() {
        for (b, &c) in row.iter().enumerate() {
            terms.push(format!(
                "{} * in[{} * n + {}]",
                lit(c),
                idx("i", di + a as i64 - 1),
                idx("j", dj + b as i64 - 1)
            ));
        }
    }
    terms.join("\n                + ")
}

fn gen_conv2d_blocked() -> String {
    let mut s = String::from(
        "__kernel void conv2d2(__global const float* in, __global float* out, int n) {\n\
         \x20   int i = get_global_id(0);\n\
         \x20   int j = get_global_id(1);\n\
         \x20   if (i > 0 && i < n - 1 && j > 0 && j < n - 1) {\n",
    );
    let name = |d: i64| match d {
        -1 => "m",
        0 => "z",
        _ => "p",
    };
    let mut combine = Vec::new();
    for a in -1..=1i64 {
        for b in -1..=1i64 {
            let t = format!("t_{}{}", name(a), name(b));
            s += &format!(
                "        float {t} = 0.0f;\n\
                 \x20       if ({}) {{\n            {t} = {};\n        }}\n",
                interior(a, b),
                conv9(a, b),
            );
            combine.push(format!("{} * {t}", lit(C2[(a + 1) as usize][(b + 1) as usize])));
        }
    }
    s += &format!(
        "        out[i * n + j] = {};\n    }}\n}}\n",
        combine.join("\n            + ")
    );
    s
}

fn conv2d_blocked_src() -> &'static str {
    static SRC: OnceLock<&'static str> = OnceLock::new();
    SRC.get_or_init(|| leak(gen_conv2d_blocked()))
}

/// One host-side 2D convolution pass with the kernel's f32 term order.
fn conv2d_ref(input: &[f32], n: usize) -> Vec<f32> {
    let mut want = vec![0.0f32; n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let mut acc = 0.0f32;
            for (a, row) in C2.iter().enumerate() {
                for (b, &c) in row.iter().enumerate() {
                    let term = c * input[(i + a - 1) * n + (j + b - 1)];
                    acc = if a == 0 && b == 0 { term } else { acc + term };
                }
            }
            want[i * n + j] = acc;
        }
    }
    want
}

fn app_2dconv_blocked() -> App {
    fn run(r: &mut dyn Runner, scale: Scale) -> Result<bool, RunError> {
        let n = scale.pick(24, 96);
        let mut g = DataGen::new(0x2dc0);
        let input = g.f32s(n * n, -1.0, 1.0);
        let bin = alloc_f32(r, &input);
        let bout = alloc_f32(r, &vec![0.0; n * n]);
        r.launch(
            "conv2d2",
            &[Arg::Buf(bin), Arg::Buf(bout), Arg::I32(n as i32)],
            NdRange::dim2([n as u64, n as u64], [8, 8]),
        )?;
        let got = read_f32(r, bout);
        let want = conv2d_ref(&conv2d_ref(&input, n), n);
        Ok(floats_close(&got, &want, 1e-4))
    }
    App {
        name: "2dconv-blocked",
        suite: Suite::Stencil,
        features: feats(),
        source: conv2d_blocked_src(),
        run,
    }
}

// ---- 3dconv-blocked -------------------------------------------------------
//
// The 7-point star applied twice in one launch: 49 loads, 25 distinct
// taps spanning five planes.

const C3: [(i64, i64, i64, f32); 7] = [
    (-1, 0, 0, 0.5),
    (1, 0, 0, 0.7),
    (0, -1, 0, 0.9),
    (0, 1, 0, 1.1),
    (0, 0, -1, 1.3),
    (0, 0, 1, 1.5),
    (0, 0, 0, -6.0),
];

fn star7(di: i64, dj: i64, dk: i64) -> String {
    let terms: Vec<String> = C3
        .iter()
        .map(|&(a, b, c, w)| {
            format!(
                "{} * in[({} * n + {}) * n + {}]",
                lit(w),
                idx("i", di + a),
                idx("j", dj + b),
                idx("k", dk + c)
            )
        })
        .collect();
    terms.join("\n                + ")
}

fn interior3(di: i64, dj: i64, dk: i64) -> String {
    format!(
        "{0} > 0 && {0} < n - 1 && {1} > 0 && {1} < n - 1 && {2} > 0 && {2} < n - 1",
        idx("i", di),
        idx("j", dj),
        idx("k", dk)
    )
}

fn gen_conv3d_blocked() -> String {
    let mut s = String::from(
        "__kernel void conv3d2(__global const float* in, __global float* out, int n) {\n\
         \x20   int i = get_global_id(0);\n\
         \x20   int j = get_global_id(1);\n\
         \x20   int k = get_global_id(2);\n\
         \x20   if (i > 0 && i < n - 1 && j > 0 && j < n - 1 && k > 0 && k < n - 1) {\n",
    );
    let mut combine = Vec::new();
    for (t_i, &(a, b, c, w)) in C3.iter().enumerate() {
        let t = format!("t{t_i}");
        s += &format!(
            "        float {t} = 0.0f;\n\
             \x20       if ({}) {{\n            {t} = {};\n        }}\n",
            interior3(a, b, c),
            star7(a, b, c),
        );
        combine.push(format!("{} * {t}", lit(w)));
    }
    s += &format!(
        "        out[(i * n + j) * n + k] = {};\n    }}\n}}\n",
        combine.join("\n            + ")
    );
    s
}

fn conv3d_blocked_src() -> &'static str {
    static SRC: OnceLock<&'static str> = OnceLock::new();
    SRC.get_or_init(|| leak(gen_conv3d_blocked()))
}

/// One host-side 7-point star pass with the kernel's f32 term order.
fn conv3d_ref(input: &[f32], n: usize) -> Vec<f32> {
    let mut want = vec![0.0f32; n * n * n];
    let at = |i: i64, j: i64, k: i64| ((i * n as i64 + j) * n as i64 + k) as usize;
    for i in 1..n as i64 - 1 {
        for j in 1..n as i64 - 1 {
            for k in 1..n as i64 - 1 {
                let mut acc = 0.0f32;
                for (t_i, &(a, b, c, w)) in C3.iter().enumerate() {
                    let term = w * input[at(i + a, j + b, k + c)];
                    acc = if t_i == 0 { term } else { acc + term };
                }
                want[at(i, j, k)] = acc;
            }
        }
    }
    want
}

fn app_3dconv_blocked() -> App {
    fn run(r: &mut dyn Runner, scale: Scale) -> Result<bool, RunError> {
        let n = scale.pick(8, 16);
        let mut g = DataGen::new(0x3dc0);
        let input = g.f32s(n * n * n, -1.0, 1.0);
        let bin = alloc_f32(r, &input);
        let bout = alloc_f32(r, &vec![0.0; n * n * n]);
        r.launch(
            "conv3d2",
            &[Arg::Buf(bin), Arg::Buf(bout), Arg::I32(n as i32)],
            NdRange::dim3([n as u64, n as u64, n as u64], [4, 4, 4]),
        )?;
        let got = read_f32(r, bout);
        let want = conv3d_ref(&conv3d_ref(&input, n), n);
        Ok(floats_close(&got, &want, 1e-3))
    }
    App {
        name: "3dconv-blocked",
        suite: Suite::Stencil,
        features: feats(),
        source: conv3d_blocked_src(),
        run,
    }
}

// ---- fdtd-2d-blocked ------------------------------------------------------
//
// The three FDTD field updates of one time step fused into a single
// launch: the hz update needs the *new* ex/ey at its east and south
// neighbours, which other work-items compute — so the fused kernel
// recomputes them from the old fields with the same f32 expressions,
// writing all three new fields to separate ping-pong buffers. One
// streaming pass over hz per step instead of three.

const FDTD2D_BLOCKED_SRC: &str = r#"
__kernel void fdtd_step(__global const float* ex, __global const float* ey,
                        __global const float* hz, __global const float* fict,
                        __global float* ex2, __global float* ey2,
                        __global float* hz2, int t, int n) {
    int i = get_global_id(0);
    int j = get_global_id(1);
    float eyc = ey[i * n + j];
    if (i == 0) eyc = fict[t];
    else eyc = eyc - 0.5f * (hz[i * n + j] - hz[(i - 1) * n + j]);
    float exc = ex[i * n + j];
    if (j > 0) exc = exc - 0.5f * (hz[i * n + j] - hz[i * n + (j - 1)]);
    ey2[i * n + j] = eyc;
    ex2[i * n + j] = exc;
    float hzc = hz[i * n + j];
    if (i < n - 1 && j < n - 1) {
        float eyd = ey[(i + 1) * n + j] - 0.5f * (hz[(i + 1) * n + j] - hz[i * n + j]);
        float exr = ex[i * n + (j + 1)] - 0.5f * (hz[i * n + (j + 1)] - hz[i * n + j]);
        hzc = hzc - 0.7f * (exr - exc + eyd - eyc);
    }
    hz2[i * n + j] = hzc;
}
"#;

fn app_fdtd_2d_blocked() -> App {
    fn run(r: &mut dyn Runner, scale: Scale) -> Result<bool, RunError> {
        let n = scale.pick(16, 32);
        let t_steps = scale.pick(2, 4);
        let mut g = DataGen::new(0xfd7d);
        let mut ex = g.f32s(n * n, -1.0, 1.0);
        let mut ey = g.f32s(n * n, -1.0, 1.0);
        let mut hz = g.f32s(n * n, -1.0, 1.0);
        let fict: Vec<f32> = (0..t_steps).map(|t| t as f32).collect();
        let exs = [alloc_f32(r, &ex), alloc_f32(r, &vec![0.0; n * n])];
        let eys = [alloc_f32(r, &ey), alloc_f32(r, &vec![0.0; n * n])];
        let hzs = [alloc_f32(r, &hz), alloc_f32(r, &vec![0.0; n * n])];
        let bfict = alloc_f32(r, &fict);
        let nd = NdRange::dim2([n as u64, n as u64], [8, 8]);
        let mut cur = 0;
        for t in 0..t_steps {
            r.launch(
                "fdtd_step",
                &[
                    Arg::Buf(exs[cur]),
                    Arg::Buf(eys[cur]),
                    Arg::Buf(hzs[cur]),
                    Arg::Buf(bfict),
                    Arg::Buf(exs[1 - cur]),
                    Arg::Buf(eys[1 - cur]),
                    Arg::Buf(hzs[1 - cur]),
                    Arg::I32(t as i32),
                    Arg::I32(n as i32),
                ],
                nd,
            )?;
            cur = 1 - cur;
        }
        let ghz = read_f32(r, hzs[cur]);

        // The plain app's reference, verbatim: in-place sequential field
        // updates — the fused kernel's recomputation matches it term for
        // term.
        for &f in fict.iter().take(t_steps) {
            ey[..n].fill(f);
            for i in 1..n {
                for j in 0..n {
                    ey[i * n + j] -= 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
                }
            }
            for i in 0..n {
                for j in 1..n {
                    ex[i * n + j] -= 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
                }
            }
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    hz[i * n + j] -= 0.7
                        * (ex[i * n + j + 1] - ex[i * n + j] + ey[(i + 1) * n + j]
                            - ey[i * n + j]);
                }
            }
        }
        Ok(floats_close(&ghz, &hz, 1e-2))
    }
    App {
        name: "fdtd-2d-blocked",
        suite: Suite::Stencil,
        features: feats(),
        source: FDTD2D_BLOCKED_SRC,
        run,
    }
}

// ---- the measurement harness ----------------------------------------------

/// The stencil applications the line-buffer differential tests and the
/// `stencil_speed` bench run: the blocked family plus the plain
/// PolyBench stencils they derive from.
pub fn stencil_app_names() -> Vec<&'static str> {
    vec![
        "2dconv",
        "3dconv",
        "fdtd-2d",
        "jacobi",
        "2dconv-blocked",
        "3dconv-blocked",
        "fdtd-2d-blocked",
        "jacobi-blocked",
    ]
}

/// One SOFF execution of a stencil app under an explicit scheduler and
/// line-buffer mode: the byte-level witness the differential tests
/// compare, and the measurement unit of the `stencil_speed` bench.
#[derive(Debug, Clone)]
pub struct StencilRun {
    /// Did the device output match the host reference?
    pub correct: bool,
    /// Every buffer the host program allocated, in allocation order.
    pub buffers: Vec<Vec<u8>>,
    /// Device cycles summed over all launches.
    pub cycles: u64,
    /// Line-buffer statistics summed over all launches.
    pub line_buf: soff_sim::LineBufStats,
    /// Cache accesses summed over all launches.
    pub cache_accesses: u64,
    /// Cache misses summed over all launches.
    pub cache_misses: u64,
    /// DRAM lines transferred (reads + writes) over all launches.
    pub dram_lines: u64,
}

/// Runs `app` on SOFF with the given scheduler and line-buffer mode.
///
/// # Errors
///
/// The Table II outcome when the build or a launch fails.
pub fn run_stencil(
    app: &App,
    scale: Scale,
    sched: soff_sim::Scheduler,
    line_buffer: bool,
) -> Result<StencilRun, Outcome> {
    let mut r = SimRunner::new(Framework::Soff, app.source, &[])?;
    r.set_scheduler(sched);
    r.set_line_buffer(line_buffer);
    let correct = (app.run)(&mut r, scale).map_err(|e| match e {
        RunError::Outcome(o) => o,
        RunError::MissingKernel(_) => Outcome::CompileError,
    })?;
    let mut line_buf = soff_sim::LineBufStats::default();
    let (mut cache_accesses, mut cache_misses, mut dram_lines) = (0, 0, 0);
    for res in &r.launch_results {
        line_buf.merge(&res.line_buf);
        cache_accesses += res.cache.accesses;
        cache_misses += res.cache.misses;
        dram_lines += res.dram.reads + res.dram.writes;
    }
    Ok(StencilRun {
        correct,
        buffers: r.dump_buffers(),
        cycles: r.total_cycles,
        line_buf,
        cache_accesses,
        cache_misses,
        dram_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sources_compile_and_have_windows() {
        for (name, src) in [
            ("jacobi2", jacobi_blocked_src()),
            ("conv2d2", conv2d_blocked_src()),
            ("conv3d2", conv3d_blocked_src()),
        ] {
            let module = crate::lower_app(src, &[])
                .unwrap_or_else(|o| panic!("{name}: generated source fails to compile ({o:?})"));
            let k = &module.kernels[0];
            let windows = soff_ir::window::detect(k);
            assert!(
                !windows.is_empty(),
                "{name}: the blocked kernel must expose a sliding window"
            );
        }
    }

    #[test]
    fn blocked_conv2d_has_a_25_tap_window() {
        let module = crate::lower_app(conv2d_blocked_src(), &[]).unwrap();
        let windows = soff_ir::window::detect(&module.kernels[0]);
        let w = windows.iter().max_by_key(|w| w.loads.len()).unwrap();
        assert_eq!(w.loads.len(), 81, "9 recomputed neighbours x 9 taps");
    }

    #[test]
    fn linebuf_activity_reaches_the_metrics_registry() {
        let apps = crate::all_apps();
        let app = apps.iter().find(|a| a.name == "jacobi-blocked").unwrap();
        let before =
            soff_obs::global().counter("soff_sim_linebuf_window_hits_total", &[]).get();
        let run = run_stencil(app, crate::data::Scale::Small, soff_sim::Scheduler::Dense, true)
            .expect("jacobi-blocked runs");
        assert!(run.correct);
        let after =
            soff_obs::global().counter("soff_sim_linebuf_window_hits_total", &[]).get();
        assert!(after >= before + run.line_buf.window_hits, "counters must accumulate");
    }
}
